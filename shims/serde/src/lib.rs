//! Vendored API-subset stand-in for `serde`.
//!
//! The workspace only uses serde as `#[derive(Serialize, Deserialize)]`
//! markers on its data types — nothing serializes at runtime yet. Because the
//! build environment has no access to crates.io, this shim supplies the two
//! trait names with blanket implementations so that derive bounds and
//! `use serde::{Deserialize, Serialize}` imports compile unchanged. When a
//! future PR needs real (de)serialization, point `[workspace.dependencies]`
//! at the registry crate; no source edits are required.

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented for all
/// types, so the no-op derive in the `serde_derive` shim is sufficient.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`. Blanket-implemented for
/// all types, so the no-op derive in the `serde_derive` shim is sufficient.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
