//! Vendored API-subset stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of the criterion API the workspace's benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros (both the plain and the
//! `name = ..; config = ..; targets = ..` forms).
//!
//! Timing model: each benchmark is warmed up once, then run for
//! `sample_size` samples of one iteration each; the mean, minimum and maximum
//! wall-clock times are printed. There is no statistical analysis, HTML
//! report, or baseline comparison — this is a smoke-and-rough-numbers
//! harness that keeps `cargo bench` working offline. Swap
//! `[workspace.dependencies]` to the registry crate for real measurements.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Mirror of `criterion::Criterion`, reduced to the workspace's usage.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Mirror of `criterion::Bencher`: collects one timing sample per `iter` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up sample, discarded.
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    let mut line = format!("bench {id}: ");
    if samples.is_empty() {
        line.push_str("no samples (routine never called iter)");
    } else {
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        let _ = write!(
            line,
            "mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            samples.len()
        );
    }
    println!("{line}");
}

/// Mirror of `criterion_group!`, supporting both the plain and the
/// `name = ..; config = ..; targets = ..` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("iterations", 3);
        assert_eq!(id.label, "iterations/3");
        let id = BenchmarkId::from_parameter(0.5);
        assert_eq!(id.label, "0.5");
    }
}
