//! Vendored no-op stand-in for `serde_derive`.
//!
//! The workspace builds in an offline environment, so the real `serde_derive`
//! cannot be fetched. The sibling `serde` shim provides blanket
//! implementations of `Serialize` / `Deserialize` for every type, which makes
//! these derives pure markers: they expand to nothing and exist only so that
//! `#[derive(Serialize, Deserialize)]` on the workspace's types keeps
//! compiling unchanged. Swapping the real serde back in requires no source
//! changes — only the `[workspace.dependencies]` entry.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
