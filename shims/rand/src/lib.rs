//! Vendored API-subset stand-in for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so this shim implements
//! exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer and
//! float ranges, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! The generator is SplitMix64: deterministic for a given seed, statistically
//! solid for synthetic-dataset generation, and dependency-free. Note the
//! streams differ from the real `rand::rngs::StdRng` (ChaCha12), so datasets
//! are reproducible *within* this workspace but not bit-identical to runs
//! against the registry crate. Swap `[workspace.dependencies]` to the real
//! crate if cross-implementation reproducibility ever matters.

/// A seedable RNG, as `rand::RngCore` + `SeedableRng` would provide.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Mirror of `rand::SeedableRng`, reduced to the constructor the workspace
/// uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a range can draw uniformly; mirror of
/// `rand::distributions::uniform::SampleUniform` reduced to this shim's
/// needs. `sample_half_open` draws from `[lo, hi)`, `sample_inclusive` from
/// `[lo, hi]`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $ty
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($ty:ty => ($shift:expr, $denom:expr)),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> $shift) as $ty / $denom;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // For floats the closed/half-open distinction is immaterial
                // at this shim's precision.
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> $shift) as $ty / $denom;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_uniform!(
    f64 => (11, (1u64 << 53) as f64),
    f32 => (40, (1u32 << 24) as f32)
);

/// Ranges that can be sampled; mirror of
/// `rand::distributions::uniform::SampleRange`. Blanket impls over
/// [`SampleUniform`] keep type inference identical to the real crate
/// (`rng.gen_range(1..5)` infers `i32`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Mirror of `rand::Rng`, reduced to the methods the workspace uses.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable RNG standing in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
    /// generators", OOPSLA 2014): one u64 of state, full 2^64 period.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirror of `rand::seq::SliceRandom`, reduced to the methods the
    /// workspace uses.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [1, 2, 3, 4];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
