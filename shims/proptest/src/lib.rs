//! Vendored API-subset stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! * range strategies over integers and floats (`0u32..10`, `0.1f64..3.0`),
//! * tuple strategies up to arity four,
//! * [`collection::vec`] with a `Range<usize>` size,
//! * `&str` strategies for the `[chars]{m,n}` regex shape (and plain
//!   literals),
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and
//!   `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! seeded deterministically (identical failures on every run — good for CI),
//! and there is **no shrinking**: a failing case reports the panic from the
//! offending inputs as-is. Swap `[workspace.dependencies]` to the registry
//! crate to regain shrinking.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies by the `proptest!` runner.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic per-case seed; `case` varies the stream across
        /// iterations of one test while keeping runs reproducible.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(
                    0x51D3_CAFE_F00D_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Mirror of `proptest::test_runner::Config`, reduced to the fields the
    /// workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::strategy::Strategy`: something that can produce
    /// values of an output type from a random stream. No shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Mirror of `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + draw) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + draw) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
            self.start + unit * (self.end - self.start)
        }
    }

    /// `&str` strategies: the `[chars]{m}` / `[chars]{m,n}` regex shape used
    /// by the workspace's tests, or a plain literal for anything without
    /// regex metacharacters.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_char_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    assert!(!chars.is_empty(), "empty character class in {self:?}");
                    let span = (hi - lo + 1) as u64;
                    let len = lo + (rng.next_u64() % span) as usize;
                    (0..len)
                        .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                        .collect()
                }
                None => {
                    assert!(
                        !self.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')', '\\']),
                        "unsupported regex pattern {self:?}: the vendored proptest shim only \
                         supports `[chars]{{m,n}}` patterns and plain literals"
                    );
                    (*self).to_string()
                }
            }
        }
    }

    /// Parse `[abc]{m}` or `[abc]{m,n}` (ranges like `a-d` allowed inside the
    /// class). Returns the expanded alphabet and the length bounds.
    fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;

        let mut chars = Vec::new();
        let class: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                chars.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }

        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((chars, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::collection::SizeRange`, reduced to the shapes the
    /// workspace uses.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Mirror of `prop_assert!`: panics (rather than returning `Err`) on failure,
/// which fails the surrounding `#[test]` identically.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Mirror of the `proptest!` macro: expands each `fn name(arg in strategy)`
/// item into a plain `#[test]` that loops `config.cases` times over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::deterministic(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
