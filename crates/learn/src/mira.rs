//! The MIRA association-cost learner.

use serde::{Deserialize, Serialize};

use q_graph::{EdgeId, FeatureVector, SearchGraph, SteinerTree, WeightVector};

/// Learner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiraConfig {
    /// Maximum number of cyclic passes over the constraint set per update.
    pub max_passes: usize,
    /// Optional aggressiveness cap `C` on each constraint's step size
    /// (PA-I style). `None` reproduces the unbounded MIRA update.
    pub aggressiveness: Option<f64>,
    /// Violations smaller than this are considered satisfied.
    pub tolerance: f64,
}

impl Default for MiraConfig {
    fn default() -> Self {
        MiraConfig {
            max_passes: 25,
            aggressiveness: None,
            tolerance: 1e-9,
        }
    }
}

/// One ranking constraint: `w · phi_diff ≥ loss`, where
/// `phi_diff = Φ(T) − Φ(T_r)` for a candidate tree `T` and the feedback
/// target tree `T_r`, and `loss = L(T_r, T)` (Equation 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConstraint {
    /// Feature-vector difference between the candidate and the target tree.
    pub phi_diff: FeatureVector,
    /// Required margin.
    pub loss: f64,
}

/// What an update did.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MiraUpdateSummary {
    /// Constraints that were violated when the update began.
    pub initially_violated: usize,
    /// Constraints still violated (beyond tolerance) when the update stopped.
    pub remaining_violations: usize,
    /// Number of cyclic passes performed.
    pub passes: usize,
    /// Total squared norm of the applied weight change.
    pub update_norm_sq: f64,
}

/// The Margin Infused Relaxed Algorithm, adapted as in the paper to
/// real-valued (binned) features and fixed zero-cost edges.
#[derive(Debug, Clone, Default)]
pub struct Mira {
    config: MiraConfig,
}

impl Mira {
    /// Learner with default configuration.
    pub fn new() -> Self {
        Mira {
            config: MiraConfig::default(),
        }
    }

    /// Learner with custom configuration.
    pub fn with_config(config: MiraConfig) -> Self {
        Mira { config }
    }

    /// Current configuration.
    pub fn config(&self) -> &MiraConfig {
        &self.config
    }

    /// Apply one online update: change `weights` as little as possible so
    /// every constraint `w · phi_diff ≥ loss` is (approximately) satisfied.
    ///
    /// Constraints whose `phi_diff` is empty (the candidate equals the
    /// target) are trivially satisfied because their loss is zero.
    pub fn update(
        &self,
        weights: &mut WeightVector,
        constraints: &[TreeConstraint],
    ) -> MiraUpdateSummary {
        let mut summary = MiraUpdateSummary {
            initially_violated: constraints
                .iter()
                .filter(|c| self.violation(weights, c) > self.config.tolerance)
                .count(),
            ..MiraUpdateSummary::default()
        };
        if summary.initially_violated == 0 {
            return summary;
        }

        for pass in 0..self.config.max_passes {
            summary.passes = pass + 1;
            let mut any_violated = false;
            for c in constraints {
                let v = self.violation(weights, c);
                if v <= self.config.tolerance {
                    continue;
                }
                let norm_sq = c.phi_diff.norm_sq();
                if norm_sq <= 0.0 {
                    // Loss demanded on an identical tree: unsatisfiable,
                    // skip (L(T_r, T_r) = 0 so this only happens with a
                    // degenerate loss function).
                    continue;
                }
                let mut tau = v / norm_sq;
                if let Some(c_cap) = self.config.aggressiveness {
                    tau = tau.min(c_cap);
                }
                weights.add_scaled(&c.phi_diff, tau);
                summary.update_norm_sq += tau * tau * norm_sq;
                any_violated = true;
            }
            if !any_violated {
                break;
            }
        }
        summary.remaining_violations = constraints
            .iter()
            .filter(|c| self.violation(weights, c) > self.config.tolerance)
            .count();
        summary
    }

    fn violation(&self, weights: &WeightVector, c: &TreeConstraint) -> f64 {
        c.loss - c.phi_diff.dot(weights)
    }
}

/// Accumulate the feature vectors of a tree's edges: `Φ(T) = Σ_{e ∈ T} f(e)`.
pub fn tree_feature_vector<F>(tree: &SteinerTree, mut edge_features: F) -> FeatureVector
where
    F: FnMut(EdgeId) -> FeatureVector,
{
    let mut phi = FeatureVector::empty();
    for e in &tree.edges {
        let fv = edge_features(*e);
        phi.add_assign(&fv);
    }
    phi
}

/// Build the MIRA constraints for one feedback interaction: the target tree
/// must beat every candidate tree by the symmetric edge loss (Equation 2).
pub fn constraints_from_candidates<F>(
    target: &SteinerTree,
    candidates: &[SteinerTree],
    mut edge_features: F,
) -> Vec<TreeConstraint>
where
    F: FnMut(EdgeId) -> FeatureVector,
{
    let phi_target = tree_feature_vector(target, &mut edge_features);
    candidates
        .iter()
        .map(|t| {
            let mut phi_diff = tree_feature_vector(t, &mut edge_features);
            phi_diff.sub_assign(&phi_target);
            TreeConstraint {
                phi_diff,
                loss: target.symmetric_loss(t),
            }
        })
        .collect()
}

/// Keep every learnable edge cost at or above `min_cost` by raising the
/// shared `default` feature weight (the uniform cost offset of Section 4).
///
/// Returns the amount added to the default weight (0 if nothing changed).
pub fn enforce_positive_costs(graph: &mut SearchGraph, min_cost: f64) -> f64 {
    let Some(current_min) = graph.min_learnable_edge_cost() else {
        return 0.0;
    };
    if current_min >= min_cost {
        return 0.0;
    }
    let bump = min_cost - current_min;
    let default_feature = graph
        .feature_space()
        .get("default")
        .expect("search graph has a default feature");
    let mut weights = graph.weights().clone();
    weights.set(default_feature, weights.get(default_feature) + bump);
    graph.set_weights(weights);
    bump
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_graph::{FeatureId, NodeId};

    fn tree(edges: &[u32]) -> SteinerTree {
        SteinerTree {
            edges: edges.iter().map(|e| EdgeId(*e)).collect(),
            nodes: vec![NodeId(0)],
            cost: 0.0,
        }
    }

    /// Edge e gets a single indicator feature with id e.
    fn indicator(edge: EdgeId) -> FeatureVector {
        FeatureVector::from_pairs([(FeatureId(edge.0), 1.0)])
    }

    #[test]
    fn satisfied_constraints_leave_weights_untouched() {
        let mira = Mira::new();
        let mut w = WeightVector::default();
        w.set(FeatureId(1), 10.0); // candidate-only edge already very costly
        let target = tree(&[0]);
        let candidate = tree(&[1]);
        let constraints = constraints_from_candidates(&target, &[candidate], indicator);
        let before = w.clone();
        let summary = mira.update(&mut w, &constraints);
        assert_eq!(summary.initially_violated, 0);
        assert_eq!(w, before);
    }

    #[test]
    fn violated_constraint_is_repaired() {
        let mira = Mira::new();
        let mut w = WeightVector::default();
        let target = tree(&[0]);
        let candidate = tree(&[1]);
        let constraints = constraints_from_candidates(&target, &[candidate], indicator);
        // Loss is |{0}| + |{1}| = 2; initially both trees cost 0, so the
        // constraint is violated by 2.
        let summary = mira.update(&mut w, &constraints);
        assert_eq!(summary.initially_violated, 1);
        assert_eq!(summary.remaining_violations, 0);
        // After the update the candidate must cost at least `loss` more than
        // the target.
        let phi_diff = &constraints[0].phi_diff;
        assert!(phi_diff.dot(&w) >= constraints[0].loss - 1e-9);
        // The update pushes the candidate's edge weight up and the target's
        // edge weight down.
        assert!(w.get(FeatureId(1)) > 0.0);
        assert!(w.get(FeatureId(0)) < 0.0);
    }

    #[test]
    fn identical_target_candidate_is_trivially_satisfied() {
        let mira = Mira::new();
        let mut w = WeightVector::default();
        let target = tree(&[0, 1]);
        let constraints = constraints_from_candidates(&target, &[tree(&[0, 1])], indicator);
        assert_eq!(constraints[0].loss, 0.0);
        let summary = mira.update(&mut w, &constraints);
        assert_eq!(summary.initially_violated, 0);
    }

    #[test]
    fn multiple_constraints_are_all_satisfied() {
        let mira = Mira::new();
        let mut w = WeightVector::default();
        let target = tree(&[0]);
        let candidates = vec![tree(&[1]), tree(&[2]), tree(&[1, 2])];
        let constraints = constraints_from_candidates(&target, &candidates, indicator);
        mira.update(&mut w, &constraints);
        for c in &constraints {
            assert!(c.phi_diff.dot(&w) >= c.loss - 1e-6);
        }
    }

    #[test]
    fn aggressiveness_caps_the_step_size() {
        let capped = Mira::with_config(MiraConfig {
            aggressiveness: Some(0.01),
            max_passes: 1,
            ..MiraConfig::default()
        });
        let mut w = WeightVector::default();
        let target = tree(&[0]);
        let candidate = tree(&[1]);
        let constraints = constraints_from_candidates(&target, &[candidate], indicator);
        let summary = capped.update(&mut w, &constraints);
        // One pass with tau <= 0.01 over a norm-2 direction cannot fix a
        // violation of 2.
        assert!(summary.remaining_violations > 0);
        assert!(w.get(FeatureId(1)) <= 0.01 + 1e-12);
    }

    #[test]
    fn tree_feature_vector_sums_edge_features() {
        let t = tree(&[0, 2]);
        let phi = tree_feature_vector(&t, indicator);
        assert_eq!(phi.get(FeatureId(0)), 1.0);
        assert_eq!(phi.get(FeatureId(2)), 1.0);
        assert_eq!(phi.get(FeatureId(1)), 0.0);
    }

    #[test]
    fn update_moves_weights_minimally_in_direction_of_constraint() {
        // With a single constraint the MIRA step is the analytic
        // passive-aggressive update: tau = violation / ||phi_diff||^2.
        let mira = Mira::new();
        let mut w = WeightVector::default();
        let target = tree(&[0]);
        let candidate = tree(&[1, 2]);
        let constraints = constraints_from_candidates(&target, &[candidate], indicator);
        let loss = constraints[0].loss; // 3
        let norm_sq = constraints[0].phi_diff.norm_sq(); // 3 (1,1,-1)
        mira.update(&mut w, &constraints);
        let expected_tau = loss / norm_sq;
        assert!((w.get(FeatureId(1)) - expected_tau).abs() < 1e-9);
        assert!((w.get(FeatureId(2)) - expected_tau).abs() < 1e-9);
        assert!((w.get(FeatureId(0)) + expected_tau).abs() < 1e-9);
    }

    #[test]
    fn learner_weight_updates_bump_the_graph_weight_epoch() {
        use q_storage::{Catalog, RelationSpec, SourceSpec};
        let mut cat = Catalog::new();
        SourceSpec::new("a")
            .relation(RelationSpec::new("r1", &["x"]))
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("b")
            .relation(RelationSpec::new("r2", &["y"]))
            .load_into(&mut cat)
            .unwrap();
        let mut graph = SearchGraph::from_catalog(&cat);
        let x = cat.resolve_qualified("r1.x").unwrap();
        let y = cat.resolve_qualified("r2.y").unwrap();
        graph.add_association(x, y, "mad", 0.9);

        // The learner's write path is `set_weights` — every MIRA re-pricing
        // goes through it and must advance the epoch so caches keyed on it
        // drop their stale answers.
        let before = graph.weight_epoch();
        let mut w = graph.weights().clone();
        let default = graph.feature_space().get("default").unwrap();
        w.set(default, -5.0);
        graph.set_weights(w);
        assert!(graph.weight_epoch() > before, "set_weights must bump");

        // `enforce_positive_costs` re-prices (it raises the default weight
        // here), so it must bump too.
        let before = graph.weight_epoch();
        assert!(enforce_positive_costs(&mut graph, 0.05) > 0.0);
        assert!(graph.weight_epoch() > before, "positivity repair must bump");

        // A no-op repair changes no cost and must leave the epoch alone.
        let before = graph.weight_epoch();
        assert_eq!(enforce_positive_costs(&mut graph, 0.05), 0.0);
        assert_eq!(graph.weight_epoch(), before, "no-op must not bump");
    }

    #[test]
    fn enforce_positive_costs_raises_default_weight() {
        use q_storage::{Catalog, RelationSpec, SourceSpec};
        let mut cat = Catalog::new();
        SourceSpec::new("a")
            .relation(RelationSpec::new("r1", &["x"]))
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("b")
            .relation(RelationSpec::new("r2", &["y"]))
            .load_into(&mut cat)
            .unwrap();
        let mut graph = SearchGraph::from_catalog(&cat);
        let x = cat.resolve_qualified("r1.x").unwrap();
        let y = cat.resolve_qualified("r2.y").unwrap();
        let edge = graph.add_association(x, y, "mad", 0.9);
        // Push the association edge cost negative by sabotaging the weights.
        let mut w = graph.weights().clone();
        let default = graph.feature_space().get("default").unwrap();
        w.set(default, -5.0);
        graph.set_weights(w);
        assert!(graph.edge_cost(edge) < 0.0);
        let bump = enforce_positive_costs(&mut graph, 0.05);
        assert!(bump > 0.0);
        assert!(graph.edge_cost(edge) >= 0.05 - 1e-9);
        assert!(graph.min_learnable_edge_cost().unwrap() >= 0.05 - 1e-9);
        // Second call is a no-op.
        assert_eq!(enforce_positive_costs(&mut graph, 0.05), 0.0);
    }
}
