//! Online learning of association costs from user feedback (Section 4,
//! Algorithm 4).
//!
//! Q converts each piece of feedback on query answers into ranking
//! constraints over the Steiner trees that produced them: the tree the user
//! endorsed must cost less than every other candidate tree by a margin equal
//! to their edge-set difference (Equation 2). The [`Mira`] learner performs
//! the margin-infused update — the minimal change to the weight vector that
//! satisfies those constraints — using cyclic Hildreth projections, the
//! standard way MIRA handles multiple constraints per example.
//!
//! Zero-cost edges (attribute–relation and value–attribute edges) carry no
//! features, so the equality constraints `w · f_ij = 0` of Algorithm 4 hold
//! by construction; positivity of the remaining edge costs is maintained by
//! [`enforce_positive_costs`], which raises the shared default-feature weight
//! — exactly the uniform cost offset the paper describes.

pub mod mira;

pub use mira::{
    constraints_from_candidates, enforce_positive_costs, tree_feature_vector, Mira, MiraConfig,
    MiraUpdateSummary, TreeConstraint,
};
