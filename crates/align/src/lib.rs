//! Alignment search strategies (Section 3.3 of the paper).
//!
//! When a new source is registered, Q must decide *which existing relations*
//! to run the (expensive, at-least-quadratic) schema matcher against. This
//! crate implements the three strategies compared in Figures 6–8:
//!
//! * [`ExhaustiveAligner`] — match the new source against every existing
//!   relation.
//! * [`ViewBasedAligner`] — Algorithm 2: match only against relations inside
//!   the α-cost neighbourhood of the current view's keyword-matched nodes,
//!   where α is the cost of the view's k-th best answer. This pruning is
//!   guaranteed to preserve the view's top-k results.
//! * [`PreferentialAligner`] — Algorithm 3: order existing relations by a
//!   vertex prior (e.g. authoritativeness learned from feedback) and match
//!   only against the most-preferred ones.
//!
//! Each run returns the proposed [`AttributeAlignment`]s together with
//! [`AlignmentStats`] — wall-clock time, matcher calls and pairwise attribute
//! comparisons with and without the value-overlap filter — which are exactly
//! the quantities plotted in the paper's Figures 6, 7 and 8.

pub mod aligner;
pub mod stats;

pub use aligner::{
    AlignerConfig, AlignmentOutcome, ExhaustiveAligner, PreferentialAligner, ViewBasedAligner,
};
pub use stats::AlignmentStats;

pub use q_matchers::AttributeAlignment;
