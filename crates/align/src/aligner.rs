//! The three alignment search strategies: Exhaustive, ViewBasedAligner
//! (Algorithm 2) and PreferentialAligner (Algorithm 3).

use std::collections::HashSet;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use q_graph::{NodeId, SearchGraph};
use q_matchers::{keep_top_y_per_attribute, AttributeAlignment, SchemaMatcher};
use q_storage::{Catalog, RelationId, SourceId, ValueIndex};

use crate::stats::AlignmentStats;

pub use q_matchers::matcher::keep_top_y_per_attribute as keep_top_y;

/// Shared aligner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlignerConfig {
    /// How many candidate alignments to keep per new-source attribute
    /// (`Y`, typically 2 or 3).
    pub top_y: usize,
    /// If true, only attribute pairs that share at least one data value are
    /// compared (requires a [`ValueIndex`]); otherwise every pair is compared.
    pub use_value_overlap_filter: bool,
    /// If true, count comparisons but skip the actual matcher invocation.
    /// Used by the scaling experiment of Figure 8, whose synthetic relations
    /// have no realistic labels to match on.
    pub count_only: bool,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        AlignerConfig {
            top_y: 2,
            use_value_overlap_filter: false,
            count_only: false,
        }
    }
}

/// Result of aligning one new source.
#[derive(Debug, Clone, Default)]
pub struct AlignmentOutcome {
    /// Proposed alignments (top-Y per new attribute).
    pub alignments: Vec<AttributeAlignment>,
    /// Cost accounting for the run.
    pub stats: AlignmentStats,
}

/// Shared pairwise-matching loop: compare each relation of `new_source`
/// against each candidate relation, counting comparisons and collecting
/// alignments.
fn align_against_candidates(
    catalog: &Catalog,
    matcher: &dyn SchemaMatcher,
    new_source: SourceId,
    candidates: &[RelationId],
    value_index: Option<&ValueIndex>,
    config: &AlignerConfig,
) -> AlignmentOutcome {
    let start = Instant::now();
    let mut stats = AlignmentStats {
        candidate_relations: candidates.len(),
        ..AlignmentStats::default()
    };
    let mut alignments: Vec<AttributeAlignment> = Vec::new();

    let new_relations: Vec<RelationId> = catalog
        .source(new_source)
        .map(|s| s.relations.clone())
        .unwrap_or_default();
    let new_relation_set: HashSet<RelationId> = new_relations.iter().copied().collect();

    for new_rel in &new_relations {
        let new_arity = catalog.relation(*new_rel).map(|r| r.arity()).unwrap_or(0);
        for candidate in candidates {
            if new_relation_set.contains(candidate) {
                continue;
            }
            let cand_arity = catalog.relation(*candidate).map(|r| r.arity()).unwrap_or(0);
            stats.matcher_calls += 1;
            stats.attribute_comparisons += new_arity * cand_arity;
            if let Some(index) = value_index {
                let new_attrs = &catalog.relation(*new_rel).unwrap().attributes;
                let cand_attrs = &catalog.relation(*candidate).unwrap().attributes;
                for a in new_attrs {
                    for b in cand_attrs {
                        if index.overlaps(*a, *b) {
                            stats.filtered_comparisons += 1;
                        }
                    }
                }
            } else {
                stats.filtered_comparisons += new_arity * cand_arity;
            }
            if !config.count_only {
                let found = matcher.match_relations(catalog, *new_rel, *candidate, config.top_y);
                stats.alignments_proposed += found.len();
                alignments.extend(found);
            }
        }
    }

    let alignments = keep_top_y_per_attribute(alignments, config.top_y);
    stats.elapsed = start.elapsed();
    AlignmentOutcome { alignments, stats }
}

/// EXHAUSTIVE: match the new source against every existing relation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveAligner;

impl ExhaustiveAligner {
    /// Align `new_source` against every relation of every other source.
    pub fn align(
        &self,
        catalog: &Catalog,
        matcher: &dyn SchemaMatcher,
        new_source: SourceId,
        value_index: Option<&ValueIndex>,
        config: &AlignerConfig,
    ) -> AlignmentOutcome {
        let candidates: Vec<RelationId> = catalog
            .relations()
            .iter()
            .filter(|r| r.source != new_source)
            .map(|r| r.id)
            .collect();
        align_against_candidates(
            catalog,
            matcher,
            new_source,
            &candidates,
            value_index,
            config,
        )
    }
}

/// VIEWBASEDALIGNER (Algorithm 2): restrict candidates to relations inside
/// the α-cost neighbourhood of the view's keyword-matched nodes.
///
/// `alpha` is the cost of the view's k-th best answer; because edge costs are
/// non-negative, a new source can only affect the top-k answers by attaching
/// inside this neighbourhood, so the pruning preserves the view's results
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewBasedAligner {
    /// Cost threshold α (the k-th best answer's cost).
    pub alpha: f64,
}

impl ViewBasedAligner {
    /// Construct with the given cost threshold.
    pub fn new(alpha: f64) -> Self {
        ViewBasedAligner { alpha }
    }

    /// Candidate existing relations: those whose nodes lie within cost
    /// `alpha` of any of the view's keyword-matched nodes.
    pub fn candidate_relations(
        &self,
        graph: &SearchGraph,
        view_nodes: &[NodeId],
        new_source: SourceId,
        catalog: &Catalog,
    ) -> Vec<RelationId> {
        let neighborhood = graph.cost_neighborhood(view_nodes, self.alpha);
        graph
            .relations_in(&neighborhood)
            .into_iter()
            .filter(|r| {
                catalog
                    .relation(*r)
                    .map(|rel| rel.source != new_source)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Align `new_source` against the α-cost neighbourhood of `view_nodes`.
    #[allow(clippy::too_many_arguments)]
    pub fn align(
        &self,
        catalog: &Catalog,
        graph: &SearchGraph,
        matcher: &dyn SchemaMatcher,
        new_source: SourceId,
        view_nodes: &[NodeId],
        value_index: Option<&ValueIndex>,
        config: &AlignerConfig,
    ) -> AlignmentOutcome {
        let candidates = self.candidate_relations(graph, view_nodes, new_source, catalog);
        align_against_candidates(
            catalog,
            matcher,
            new_source,
            &candidates,
            value_index,
            config,
        )
    }
}

/// PREFERENTIALALIGNER (Algorithm 3): order existing relations by a vertex
/// prior and only match against the most-preferred `limit` relations.
///
/// The prior is a cost (lower = more preferred); in the experiments it is
/// estimated from the learned relation-authoritativeness feature weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreferentialAligner {
    /// Number of top-priority relations to compare against.
    pub limit: usize,
}

impl PreferentialAligner {
    /// Construct with the given candidate limit.
    pub fn new(limit: usize) -> Self {
        PreferentialAligner { limit }
    }

    /// Candidate relations in prior order (ties broken by relation id for
    /// determinism), truncated to `limit`.
    pub fn candidate_relations<P>(
        &self,
        catalog: &Catalog,
        new_source: SourceId,
        prior: P,
    ) -> Vec<RelationId>
    where
        P: Fn(RelationId) -> f64,
    {
        let mut rels: Vec<(RelationId, f64)> = catalog
            .relations()
            .iter()
            .filter(|r| r.source != new_source)
            .map(|r| (r.id, prior(r.id)))
            .collect();
        rels.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        rels.truncate(self.limit);
        rels.into_iter().map(|(r, _)| r).collect()
    }

    /// Align `new_source` against the `limit` most-preferred relations.
    #[allow(clippy::too_many_arguments)]
    pub fn align<P>(
        &self,
        catalog: &Catalog,
        matcher: &dyn SchemaMatcher,
        new_source: SourceId,
        prior: P,
        value_index: Option<&ValueIndex>,
        config: &AlignerConfig,
    ) -> AlignmentOutcome
    where
        P: Fn(RelationId) -> f64,
    {
        let candidates = self.candidate_relations(catalog, new_source, prior);
        align_against_candidates(
            catalog,
            matcher,
            new_source,
            &candidates,
            value_index,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_matchers::MetadataMatcher;
    use q_storage::{RelationSpec, SourceSpec};

    /// Three existing sources plus a new source whose attributes align with
    /// the first one.
    fn setup() -> (Catalog, SourceId) {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro_entry", &["entry_ac", "name"])
                    .row(["IPR01", "Kringle"]),
            )
            .relation(
                RelationSpec::new("interpro_pub", &["pub_id", "title"]).row(["P1", "Some paper"]),
            )
            .load_into(&mut cat)
            .unwrap();
        let new_source = SourceSpec::new("new_go_annotations")
            .relation(
                RelationSpec::new("go_annotation", &["go_acc", "annotation"])
                    .row(["GO:1", "annotated in liver"])
                    .row(["GO:3", "annotated in brain"]),
            )
            .load_into(&mut cat)
            .unwrap();
        (cat, new_source)
    }

    #[test]
    fn exhaustive_considers_every_other_relation() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let outcome =
            ExhaustiveAligner.align(&cat, &matcher, new_source, None, &AlignerConfig::default());
        // 1 new relation x 3 existing relations.
        assert_eq!(outcome.stats.matcher_calls, 3);
        assert_eq!(outcome.stats.candidate_relations, 3);
        // 2 attributes x (2 + 2 + 2) attributes.
        assert_eq!(outcome.stats.attribute_comparisons, 12);
        // Unfiltered comparisons equal filtered when no index is supplied.
        assert_eq!(outcome.stats.filtered_comparisons, 12);
    }

    #[test]
    fn value_overlap_filter_reduces_comparisons() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let index = ValueIndex::build(&cat);
        let outcome = ExhaustiveAligner.align(
            &cat,
            &matcher,
            new_source,
            Some(&index),
            &AlignerConfig {
                use_value_overlap_filter: true,
                ..AlignerConfig::default()
            },
        );
        // Only go_annotation.go_acc shares values (GO:1 with go_term.acc).
        assert!(outcome.stats.filtered_comparisons < outcome.stats.attribute_comparisons);
        assert_eq!(outcome.stats.filtered_comparisons, 1);
    }

    #[test]
    fn view_based_restricts_to_cost_neighborhood() {
        let (cat, new_source) = setup();
        let graph = SearchGraph::from_catalog(&cat);
        let matcher = MetadataMatcher::new();
        // The view's keywords matched only go_term.name.
        let name = cat.resolve_qualified("go_term.name").unwrap();
        let view_nodes = vec![graph.attribute_node(name).unwrap()];
        let aligner = ViewBasedAligner::new(0.5);
        let outcome = aligner.align(
            &cat,
            &graph,
            &matcher,
            new_source,
            &view_nodes,
            None,
            &AlignerConfig::default(),
        );
        // Only go_term is inside the neighbourhood (no FK edges connect it to
        // the interpro relations in this catalog).
        assert_eq!(outcome.stats.candidate_relations, 1);
        assert_eq!(outcome.stats.matcher_calls, 1);
        assert!(outcome.stats.attribute_comparisons < 12);
    }

    #[test]
    fn view_based_with_large_alpha_degenerates_to_connected_component() {
        let (cat, new_source) = setup();
        let mut graph = SearchGraph::from_catalog(&cat);
        // Connect go_term to interpro_entry with an association so the
        // neighbourhood can spread across sources.
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let entry_ac = cat.resolve_qualified("interpro_entry.entry_ac").unwrap();
        graph.add_association(acc, entry_ac, "manual", 0.9);
        let name = cat.resolve_qualified("go_term.name").unwrap();
        let view_nodes = vec![graph.attribute_node(name).unwrap()];
        let matcher = MetadataMatcher::new();
        let small = ViewBasedAligner::new(0.5).align(
            &cat,
            &graph,
            &matcher,
            new_source,
            &view_nodes,
            None,
            &AlignerConfig::default(),
        );
        let large = ViewBasedAligner::new(100.0).align(
            &cat,
            &graph,
            &matcher,
            new_source,
            &view_nodes,
            None,
            &AlignerConfig::default(),
        );
        assert!(large.stats.candidate_relations > small.stats.candidate_relations);
        assert_eq!(large.stats.candidate_relations, 2); // go_term + interpro_entry
    }

    #[test]
    fn preferential_orders_by_prior_and_truncates() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let go_term = cat.relation_by_name("go_term").unwrap().id;
        // Prior: go_term most preferred.
        let prior = |r: RelationId| if r == go_term { 0.0 } else { 1.0 };
        let aligner = PreferentialAligner::new(1);
        let candidates = aligner.candidate_relations(&cat, new_source, prior);
        assert_eq!(candidates, vec![go_term]);
        let outcome = aligner.align(
            &cat,
            &matcher,
            new_source,
            prior,
            None,
            &AlignerConfig::default(),
        );
        assert_eq!(outcome.stats.matcher_calls, 1);
    }

    #[test]
    fn count_only_mode_skips_matcher_invocation() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let outcome = ExhaustiveAligner.align(
            &cat,
            &matcher,
            new_source,
            None,
            &AlignerConfig {
                count_only: true,
                ..AlignerConfig::default()
            },
        );
        assert!(outcome.alignments.is_empty());
        assert_eq!(outcome.stats.alignments_proposed, 0);
        assert_eq!(outcome.stats.attribute_comparisons, 12);
    }

    #[test]
    fn top_y_bounds_alignments_per_new_attribute() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let outcome = ExhaustiveAligner.align(
            &cat,
            &matcher,
            new_source,
            None,
            &AlignerConfig {
                top_y: 1,
                ..AlignerConfig::default()
            },
        );
        let mut counts: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for a in &outcome.alignments {
            *counts.entry(a.new_attribute).or_default() += 1;
        }
        for (_, c) in counts {
            assert!(c <= 1);
        }
    }

    #[test]
    fn exhaustive_finds_the_expected_alignment() {
        let (cat, new_source) = setup();
        let matcher = MetadataMatcher::new();
        let outcome =
            ExhaustiveAligner.align(&cat, &matcher, new_source, None, &AlignerConfig::default());
        let go_acc = cat.resolve_qualified("go_annotation.go_acc").unwrap();
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        assert!(outcome
            .alignments
            .iter()
            .any(|a| a.new_attribute == go_acc && a.existing_attribute == acc));
    }
}
