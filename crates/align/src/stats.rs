//! Alignment cost accounting (the quantities of Figures 6, 7 and 8).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Statistics collected while aligning one new source against the existing
/// search graph.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AlignmentStats {
    /// Number of relation-pair matcher invocations (`BASEMATCHER` calls).
    pub matcher_calls: usize,
    /// Number of existing relations considered as candidates.
    pub candidate_relations: usize,
    /// Pairwise attribute comparisons with no additional filter
    /// (the "No Additional Filter" series of Figure 7, and the
    /// "pairwise column comparisons" of Figure 8).
    pub attribute_comparisons: usize,
    /// Pairwise attribute comparisons remaining when only value-overlapping
    /// pairs are compared (the "Value Overlap Filter" series of Figure 7).
    pub filtered_comparisons: usize,
    /// Number of alignments proposed by the matcher.
    pub alignments_proposed: usize,
    /// Wall-clock time spent in the alignment run (Figure 6).
    pub elapsed: Duration,
}

impl AlignmentStats {
    /// Merge another run's statistics into this one (used when a source has
    /// several relations, or to accumulate across repeated trials).
    pub fn merge(&mut self, other: &AlignmentStats) {
        self.matcher_calls += other.matcher_calls;
        self.candidate_relations += other.candidate_relations;
        self.attribute_comparisons += other.attribute_comparisons;
        self.filtered_comparisons += other.filtered_comparisons;
        self.alignments_proposed += other.alignments_proposed;
        self.elapsed += other.elapsed;
    }

    /// Average of a collection of runs (per-trial averaging used in the
    /// paper's "averaged over introduction of 40 sources" figures).
    pub fn mean(stats: &[AlignmentStats]) -> AlignmentStats {
        if stats.is_empty() {
            return AlignmentStats::default();
        }
        let n = stats.len();
        let mut total = AlignmentStats::default();
        for s in stats {
            total.merge(s);
        }
        AlignmentStats {
            matcher_calls: total.matcher_calls / n,
            candidate_relations: total.candidate_relations / n,
            attribute_comparisons: total.attribute_comparisons / n,
            filtered_comparisons: total.filtered_comparisons / n,
            alignments_proposed: total.alignments_proposed / n,
            elapsed: total.elapsed / n as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = AlignmentStats {
            matcher_calls: 1,
            candidate_relations: 2,
            attribute_comparisons: 10,
            filtered_comparisons: 4,
            alignments_proposed: 3,
            elapsed: Duration::from_millis(5),
        };
        let b = AlignmentStats {
            matcher_calls: 2,
            candidate_relations: 1,
            attribute_comparisons: 20,
            filtered_comparisons: 6,
            alignments_proposed: 1,
            elapsed: Duration::from_millis(10),
        };
        a.merge(&b);
        assert_eq!(a.matcher_calls, 3);
        assert_eq!(a.attribute_comparisons, 30);
        assert_eq!(a.filtered_comparisons, 10);
        assert_eq!(a.alignments_proposed, 4);
        assert_eq!(a.elapsed, Duration::from_millis(15));
    }

    #[test]
    fn mean_averages_counters() {
        let runs = vec![
            AlignmentStats {
                attribute_comparisons: 10,
                ..Default::default()
            },
            AlignmentStats {
                attribute_comparisons: 30,
                ..Default::default()
            },
        ];
        assert_eq!(AlignmentStats::mean(&runs).attribute_comparisons, 20);
        assert_eq!(AlignmentStats::mean(&[]).attribute_comparisons, 0);
    }
}
