//! Figure 8: pairwise column comparisons as the search graph grows from 18 to
//! 100 to 500 sources.
//!
//! The paper grows the calibrated GBCO graph with synthetic two-attribute
//! sources and, because the synthetic relations have no realistic labels,
//! measures only the number of pairwise column comparisons each strategy
//! would issue (`count_only` mode here).

use serde::{Deserialize, Serialize};

use q_align::{AlignerConfig, ExhaustiveAligner, PreferentialAligner, ViewBasedAligner};
use q_core::{QConfig, QSystem};
use q_datasets::gbco::{
    declare_foreign_keys, gbco_foreign_keys, gbco_source_specs, gbco_trials, GbcoConfig,
};
use q_datasets::scaling::{expand_with_synthetic_sources, ScalingConfig};
use q_matchers::MetadataMatcher;
use q_storage::SourceSpec;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingExperimentConfig {
    /// GBCO generator configuration.
    pub gbco: GbcoConfig,
    /// Synthetic-source expansion configuration.
    pub scaling: ScalingConfig,
    /// Total source counts to measure (the paper uses 18, 100, 500).
    pub graph_sizes: Vec<usize>,
    /// Number of new-source introductions to average over (the paper uses
    /// the 40 introductions of the 16 trials).
    pub max_introductions: usize,
    /// Preferential aligner candidate limit.
    pub preferential_limit: usize,
}

impl Default for ScalingExperimentConfig {
    fn default() -> Self {
        ScalingExperimentConfig {
            gbco: GbcoConfig {
                rows_per_table: 20,
                ..GbcoConfig::default()
            },
            scaling: ScalingConfig::default(),
            graph_sizes: vec![18, 100, 500],
            max_introductions: 40,
            preferential_limit: 4,
        }
    }
}

/// Comparisons at one graph size (one x position of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of sources in the search graph before the new source arrives.
    pub existing_sources: usize,
    /// Mean pairwise column comparisons for EXHAUSTIVE.
    pub exhaustive: usize,
    /// Mean pairwise column comparisons for VIEWBASEDALIGNER.
    pub view_based: usize,
    /// Mean pairwise column comparisons for PREFERENTIALALIGNER.
    pub preferential: usize,
}

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScalingResult {
    /// One point per requested graph size.
    pub points: Vec<ScalingPoint>,
}

/// Run the Figure 8 experiment.
pub fn run_scaling_experiment(config: &ScalingExperimentConfig) -> ScalingResult {
    let all_specs = gbco_source_specs(&config.gbco);
    let fks = gbco_foreign_keys();
    let matcher = MetadataMatcher::new();
    let trials = gbco_trials();
    let mut points = Vec::new();

    for target_sources in &config.graph_sizes {
        // Base: the full 18-source GBCO catalog + graph, expanded with
        // synthetic sources up to the target size.
        let mut catalog = q_storage::loader::load_catalog(&all_specs).expect("gbco specs load");
        declare_foreign_keys(&mut catalog, &fks);
        let mut q = QSystem::new(catalog.clone(), QConfig::default());
        // The user's view (first trial's keywords) provides the α bound. As
        // in the paper, the edge costs are first calibrated by feedback that
        // keeps the base query on top; α is then the cost of the view's k-th
        // top-scoring result.
        let trial = &trials[0];
        let keywords: Vec<&str> = trial.keywords.iter().map(String::as_str).collect();
        let view_id = q.create_view(&keywords).expect("view creation succeeds");
        for _ in 0..3 {
            if q.view(view_id)
                .map(|v| v.answers.is_empty())
                .unwrap_or(true)
            {
                break;
            }
            let _ = q.feedback(view_id, q_core::Feedback::Correct { answer: 0 });
        }
        let alpha = q
            .view(view_id)
            .and_then(|v| {
                let k = q.config().top_k;
                let answers = &v.answers;
                if answers.is_empty() {
                    v.alpha()
                } else {
                    Some(answers[(k - 1).min(answers.len() - 1)].cost)
                }
            })
            .unwrap_or(f64::INFINITY);
        let view_nodes = q.view_nodes(view_id);

        let mut graph = q.graph().clone();
        if *target_sources > catalog.sources().len() {
            let additional = target_sources - catalog.sources().len();
            expand_with_synthetic_sources(&mut catalog, &mut graph, additional, &config.scaling);
        }

        // Introduce new sources (cycling through the trials' new sources) and
        // count comparisons only.
        let mut exhaustive_total = 0usize;
        let mut view_total = 0usize;
        let mut pref_total = 0usize;
        let mut introductions = 0usize;
        let aligner_config = AlignerConfig {
            count_only: true,
            ..AlignerConfig::default()
        };

        'outer: for trial in &trials {
            for name in &trial.new_sources {
                if introductions >= config.max_introductions {
                    break 'outer;
                }
                // Register a fresh copy of the relation as a brand-new source.
                let spec = all_specs
                    .iter()
                    .find(|s| &s.name == name)
                    .expect("trial source exists");
                let renamed = rename_spec(spec, introductions);
                let mut catalog = catalog.clone();
                let source = renamed.load_into(&mut catalog).expect("renamed spec loads");

                let outcome =
                    ExhaustiveAligner.align(&catalog, &matcher, source, None, &aligner_config);
                exhaustive_total += outcome.stats.attribute_comparisons;

                let outcome = ViewBasedAligner::new(alpha).align(
                    &catalog,
                    &graph,
                    &matcher,
                    source,
                    &view_nodes,
                    None,
                    &aligner_config,
                );
                view_total += outcome.stats.attribute_comparisons;

                let outcome = PreferentialAligner::new(config.preferential_limit).align(
                    &catalog,
                    &matcher,
                    source,
                    |r| graph.relation_feature_weight(r),
                    None,
                    &aligner_config,
                );
                pref_total += outcome.stats.attribute_comparisons;

                introductions += 1;
            }
        }
        let denom = introductions.max(1);
        points.push(ScalingPoint {
            existing_sources: catalog.sources().len(),
            exhaustive: exhaustive_total / denom,
            view_based: view_total / denom,
            preferential: pref_total / denom,
        });
    }
    ScalingResult { points }
}

/// Clone a source spec under a fresh name so it can be registered even when
/// the original relation is already present.
fn rename_spec(spec: &SourceSpec, index: usize) -> SourceSpec {
    let mut renamed = SourceSpec::new(&format!("{}_new_{index}", spec.name));
    for rel in &spec.relations {
        let mut r = q_storage::RelationSpec::new(
            &format!("{}_new_{index}", rel.name),
            &rel.attributes
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );
        r.rows = rel.rows.clone();
        renamed = renamed.relation(r);
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_grows_with_graph_size_but_pruned_strategies_do_not() {
        let result = run_scaling_experiment(&ScalingExperimentConfig {
            gbco: GbcoConfig {
                rows_per_table: 10,
                seed: 2,
            },
            graph_sizes: vec![18, 60],
            max_introductions: 6,
            ..ScalingExperimentConfig::default()
        });
        assert_eq!(result.points.len(), 2);
        let small = &result.points[0];
        let large = &result.points[1];
        // Exhaustive comparisons grow roughly with the number of sources.
        assert!(large.exhaustive > small.exhaustive);
        // The pruned strategies never exceed exhaustive at either size, and
        // the prior-bounded preferential aligner stays flat as the graph
        // grows (the Figure 8 claim that survives the tiny test configuration;
        // run the `experiments` binary for the full-size behaviour).
        assert!(small.view_based <= small.exhaustive);
        assert!(large.view_based <= large.exhaustive);
        assert!(small.preferential <= small.exhaustive);
        let pref_growth = large.preferential.saturating_sub(small.preferential);
        assert!(pref_growth <= small.preferential / 2 + 8);
    }
}
