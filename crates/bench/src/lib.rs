//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 5).
//!
//! Each experiment is a library function returning a plain result struct so
//! that both the `experiments` binary (which prints the paper-style rows) and
//! the Criterion benches can drive it. See DESIGN.md for the per-experiment
//! index; the `experiments` binary prints the paper-vs-measured numbers.

pub mod aligners;
pub mod boot;
pub mod learning;
pub mod live_ingest;
pub mod matchers;
pub mod scale;
pub mod scaling;
pub mod search_latency;
pub mod throughput;

pub use aligners::{
    run_aligner_experiment, AlignerExperimentConfig, AlignerExperimentResult, StrategyMeasurement,
};
pub use boot::{run_boot_experiment, BootConfig, BootResult, BootTier};
pub use learning::{run_learning_experiment, LearningConfig, LearningResult};
pub use live_ingest::{run_live_ingest_experiment, LiveIngestConfig, LiveIngestResult};
pub use matchers::{
    run_matcher_quality, MatcherQualityConfig, MatcherQualityResult, MatcherQualityRow,
};
pub use scale::{run_scale_experiment, ScaleConfig, ScaleResult, ScaleTier};
pub use scaling::{run_scaling_experiment, ScalingExperimentConfig, ScalingPoint, ScalingResult};
pub use search_latency::{
    run_search_latency_experiment, LatencyStats, SearchLatencyConfig, SearchLatencyResult,
};
pub use throughput::{run_throughput_experiment, ThroughputConfig, ThroughputResult};
