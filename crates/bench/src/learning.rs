//! Figures 10–12 and Table 2: combining matchers and correcting alignments
//! from feedback on query answers (Section 5.2.2).
//!
//! Setup: the InterPro-GO search graph is populated with the top-2
//! alignments per attribute from both matchers; the 10 documentation-derived
//! keyword queries become views; simulated domain-expert feedback marks, for
//! each query, one answer whose tree uses only gold association edges; the
//! feedback log is replayed up to three times (40 steps total). After each
//! step the experiment records the gold vs non-gold average edge cost
//! (Figure 12) and precision/recall snapshots (Figures 10–11, Table 2).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use q_core::evaluation::{
    average_edge_costs, gold_target_query, pr_curve_from_alignments, pr_curve_from_graph, AttrPair,
    EdgeCostSummary, PrPoint,
};
use q_core::{Feedback, QConfig, QSystem};
use q_datasets::{interpro_go_catalog, interpro_go_gold, interpro_go_queries, InterproGoConfig};

use crate::matchers::{mad_alignments, metadata_alignments};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningConfig {
    /// InterPro-GO generator configuration.
    pub dataset: InterproGoConfig,
    /// Candidate alignments per attribute added to the graph (the paper uses
    /// Y = 2, the smallest setting with 100% recall).
    pub top_y: usize,
    /// Number of ranked queries per view (`k` of Algorithm 4; the paper uses
    /// 5).
    pub top_k: usize,
    /// How many times the 10-query feedback log is replayed (the paper's
    /// 10×4 setting replays it three times after the first pass).
    pub passes: usize,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            dataset: InterproGoConfig::default(),
            top_y: 2,
            top_k: 5,
            passes: 4,
        }
    }
}

/// Result of the learning experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LearningResult {
    /// PR curve of the metadata matcher alone (Figure 10, "COMA++").
    pub metadata_pr: Vec<PrPoint>,
    /// PR curve of MAD alone (Figure 10, "MAD").
    pub mad_pr: Vec<PrPoint>,
    /// PR curve of the combined graph before any feedback (Figure 11's
    /// "Average(COMA++, MAD)" baseline).
    pub baseline_pr: Vec<PrPoint>,
    /// PR snapshot after 1 feedback step (Figure 11, "Q (1 x 1)").
    pub q_pr_after_1: Vec<PrPoint>,
    /// PR snapshot after one full pass (Figure 11, "Q (10 x 1)").
    pub q_pr_after_pass_1: Vec<PrPoint>,
    /// PR snapshot after two passes (Figure 11, "Q (10 x 2)").
    pub q_pr_after_pass_2: Vec<PrPoint>,
    /// PR snapshot after all passes (Figures 10 and 11, "Q" / "Q (10 x 4)").
    pub q_pr_final: Vec<PrPoint>,
    /// Gold vs non-gold average edge cost after every feedback step
    /// (Figure 12).
    pub edge_cost_trajectory: Vec<EdgeCostSummary>,
    /// For each recall level (%), the first feedback step at which precision
    /// 1.0 was achievable at that recall (Table 2). `None` = never reached.
    pub steps_to_perfect_precision: Vec<(f64, Option<usize>)>,
    /// Total feedback steps actually applied.
    pub feedback_steps: usize,
}

/// Best F-measure over a PR curve (convenience for comparisons).
pub fn best_f_measure(curve: &[PrPoint]) -> f64 {
    curve
        .iter()
        .map(|p| {
            if p.precision + p.recall > 0.0 {
                2.0 * p.precision * p.recall / (p.precision + p.recall)
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// Run the Figures 10–12 / Table 2 experiment.
pub fn run_learning_experiment(config: &LearningConfig) -> LearningResult {
    let catalog = interpro_go_catalog(&config.dataset);
    let gold: HashSet<AttrPair> = interpro_go_gold().resolved_set(&catalog);

    // ---------------- matcher-only curves ----------------
    let metadata = metadata_alignments(&catalog, config.top_y);
    let mad = mad_alignments(&catalog, config.top_y);
    let metadata_pr = pr_curve_from_alignments(&metadata, &gold, config.top_y);
    let mad_pr = pr_curve_from_alignments(&mad, &gold, config.top_y);

    // ---------------- combined graph + views ----------------
    let mut q = QSystem::new(
        catalog,
        QConfig {
            top_k: config.top_k,
            top_y: config.top_y,
            ..QConfig::default()
        },
    );
    q.add_alignments(&metadata, "metadata");
    q.add_alignments(&mad, "mad");
    let baseline_pr = pr_curve_from_graph(q.graph(), &gold, config.top_y);

    let queries = interpro_go_queries();
    let mut view_ids = Vec::new();
    for query in &queries {
        let keywords = query.keyword_refs();
        view_ids.push(q.create_view(&keywords).expect("view creation succeeds"));
    }

    // ---------------- feedback loop ----------------
    let recall_levels = [12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0];
    let mut steps_to_precision: Vec<(f64, Option<usize>)> =
        recall_levels.iter().map(|r| (*r, None)).collect();
    let mut edge_cost_trajectory = Vec::new();
    let mut q_pr_after_1 = Vec::new();
    let mut q_pr_after_pass_1 = Vec::new();
    let mut q_pr_after_pass_2 = Vec::new();
    let mut steps = 0usize;

    for pass in 0..config.passes {
        for view_id in &view_ids {
            let Some(view) = q.view(*view_id) else {
                continue;
            };
            // Simulated expert: endorse an answer whose tree only uses gold
            // association edges.
            let Some(target_query) = gold_target_query(view, q.graph(), &gold) else {
                continue;
            };
            let Some(answer_idx) = view
                .answers
                .iter()
                .position(|a| a.query_index == target_query)
            else {
                continue;
            };
            if q.feedback(*view_id, Feedback::Correct { answer: answer_idx })
                .is_err()
            {
                continue;
            }
            steps += 1;

            edge_cost_trajectory.push(average_edge_costs(q.graph(), &gold));
            let curve = pr_curve_from_graph(q.graph(), &gold, config.top_y);
            for (level, first_step) in steps_to_precision.iter_mut() {
                if first_step.is_none()
                    && curve
                        .iter()
                        .any(|p| p.precision >= 1.0 - 1e-9 && p.recall * 100.0 >= *level - 1e-9)
                {
                    *first_step = Some(steps);
                }
            }
            if steps == 1 {
                q_pr_after_1 = curve;
            }
        }
        let snapshot = pr_curve_from_graph(q.graph(), &gold, config.top_y);
        if pass == 0 {
            q_pr_after_pass_1 = snapshot;
        } else if pass == 1 {
            q_pr_after_pass_2 = snapshot;
        }
    }

    let q_pr_final = pr_curve_from_graph(q.graph(), &gold, config.top_y);
    LearningResult {
        metadata_pr,
        mad_pr,
        baseline_pr,
        q_pr_after_1,
        q_pr_after_pass_1,
        q_pr_after_pass_2,
        q_pr_final,
        edge_cost_trajectory,
        steps_to_perfect_precision: steps_to_precision,
        feedback_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_widens_the_gold_vs_non_gold_cost_gap_and_lifts_quality() {
        let result = run_learning_experiment(&LearningConfig {
            dataset: InterproGoConfig {
                rows_per_table: 60,
                seed: 42,
            },
            passes: 2,
            ..LearningConfig::default()
        });
        assert!(result.feedback_steps > 0, "no feedback could be applied");
        // Figure 12 shape: after feedback, gold edges are cheaper on average
        // than non-gold edges.
        let last = result.edge_cost_trajectory.last().unwrap();
        assert!(
            last.gold_mean < last.non_gold_mean,
            "gold {} vs non-gold {}",
            last.gold_mean,
            last.non_gold_mean
        );
        // Figure 10/11 shape: learned Q is at least as good (best F) as the
        // unfedback baseline, and at least as good as either matcher alone.
        let q_f = best_f_measure(&result.q_pr_final);
        assert!(q_f >= best_f_measure(&result.baseline_pr) - 1e-9);
        assert!(q_f >= best_f_measure(&result.metadata_pr) - 1e-9);
        // Full recall is reachable in the combined graph (MAD contributes all
        // gold edges at Y = 2).
        assert!(result
            .q_pr_final
            .iter()
            .any(|p| (p.recall - 1.0).abs() < 1e-9));
        // Table 2 bookkeeping covers all recall levels.
        assert_eq!(result.steps_to_perfect_precision.len(), 8);
    }
}
