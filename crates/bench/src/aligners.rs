//! Figures 6 and 7: cost of aligning newly registered GBCO sources under the
//! three alignment strategies, with the metadata (COMA++-substitute) matcher
//! as the base matcher.
//!
//! Setup (Section 5.1): for each trial mined from the query log, the catalog
//! starts with every source except the trial's new ones; a keyword view is
//! created over the base relations; then each new source is registered and
//! aligned with EXHAUSTIVE, VIEWBASEDALIGNER (α = the view's k-th best cost)
//! and PREFERENTIALALIGNER, recording wall-clock time and pairwise attribute
//! comparisons with and without the value-overlap filter.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use q_align::{
    AlignerConfig, AlignmentStats, ExhaustiveAligner, PreferentialAligner, ViewBasedAligner,
};
use q_core::{AlignmentStrategy, QConfig, QSystem};
use q_datasets::gbco::{
    declare_foreign_keys, gbco_foreign_keys, gbco_source_specs, gbco_trials, GbcoConfig,
};
use q_matchers::MetadataMatcher;
use q_storage::{SourceSpec, ValueIndex};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlignerExperimentConfig {
    /// GBCO generator configuration.
    pub gbco: GbcoConfig,
    /// Candidate alignments kept per attribute.
    pub top_y: usize,
    /// Relations the preferential aligner is allowed to compare against.
    pub preferential_limit: usize,
    /// Limit on the number of trials (0 = all 16).
    pub max_trials: usize,
}

impl Default for AlignerExperimentConfig {
    fn default() -> Self {
        AlignerExperimentConfig {
            gbco: GbcoConfig::default(),
            top_y: 2,
            preferential_limit: 4,
            max_trials: 0,
        }
    }
}

/// Per-strategy averages (one bar of Figure 6 / one bar group of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StrategyMeasurement {
    /// Mean wall-clock time per new-source introduction (Figure 6).
    pub mean_elapsed: Duration,
    /// Mean pairwise attribute comparisons, no filter (Figure 7).
    pub mean_comparisons: usize,
    /// Mean pairwise attribute comparisons with the value-overlap filter
    /// (Figure 7).
    pub mean_filtered_comparisons: usize,
    /// Mean number of relation-pair matcher calls.
    pub mean_matcher_calls: usize,
}

impl StrategyMeasurement {
    fn from_stats(stats: &[AlignmentStats]) -> Self {
        let mean = AlignmentStats::mean(stats);
        StrategyMeasurement {
            mean_elapsed: mean.elapsed,
            mean_comparisons: mean.attribute_comparisons,
            mean_filtered_comparisons: mean.filtered_comparisons,
            mean_matcher_calls: mean.matcher_calls,
        }
    }
}

/// Result of the Figures 6/7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AlignerExperimentResult {
    /// EXHAUSTIVE strategy.
    pub exhaustive: StrategyMeasurement,
    /// VIEWBASEDALIGNER strategy.
    pub view_based: StrategyMeasurement,
    /// PREFERENTIALALIGNER strategy.
    pub preferential: StrategyMeasurement,
    /// Number of new-source introductions measured.
    pub introductions: usize,
}

/// Run the Figures 6/7 experiment.
pub fn run_aligner_experiment(config: &AlignerExperimentConfig) -> AlignerExperimentResult {
    let all_specs = gbco_source_specs(&config.gbco);
    let fks = gbco_foreign_keys();
    let matcher = MetadataMatcher::new();
    let mut trials = gbco_trials();
    if config.max_trials > 0 {
        trials.truncate(config.max_trials);
    }

    let mut exhaustive_stats = Vec::new();
    let mut view_stats = Vec::new();
    let mut pref_stats = Vec::new();
    let mut introductions = 0usize;

    for trial in &trials {
        // Catalog with everything except the trial's new sources.
        let base_specs: Vec<SourceSpec> = all_specs
            .iter()
            .filter(|s| !trial.new_sources.contains(&s.name))
            .cloned()
            .collect();
        let mut catalog = q_storage::loader::load_catalog(&base_specs).expect("base specs load");
        declare_foreign_keys(&mut catalog, &fks);

        // The user's view over the base relations, built through the full Q
        // pipeline so the α bound comes from real ranked queries.
        let mut q = QSystem::new(
            catalog,
            QConfig {
                strategy: AlignmentStrategy::ViewBased,
                ..QConfig::default()
            },
        );
        let keywords: Vec<&str> = trial.keywords.iter().map(String::as_str).collect();
        let view_id = q.create_view(&keywords).expect("view creation succeeds");
        let alpha = q
            .view(view_id)
            .and_then(|v| v.alpha())
            .unwrap_or(f64::INFINITY);
        let view_nodes = q.view_nodes(view_id);

        for new_source_name in &trial.new_sources {
            let spec = all_specs
                .iter()
                .find(|s| &s.name == new_source_name)
                .expect("trial source exists");
            // Register the source's schema (catalog + graph) without running
            // the system's own aligner — the three strategies are measured
            // explicitly below on identical state.
            let mut catalog = q.catalog().clone();
            let source = spec.load_into(&mut catalog).expect("source loads");
            let mut graph = q.graph().clone();
            graph.add_source(&catalog, source);
            let value_index = ValueIndex::build(&catalog);

            let aligner_config = AlignerConfig {
                top_y: config.top_y,
                use_value_overlap_filter: true,
                ..AlignerConfig::default()
            };

            let outcome = ExhaustiveAligner.align(
                &catalog,
                &matcher,
                source,
                Some(&value_index),
                &aligner_config,
            );
            exhaustive_stats.push(outcome.stats);

            let outcome = ViewBasedAligner::new(alpha).align(
                &catalog,
                &graph,
                &matcher,
                source,
                &view_nodes,
                Some(&value_index),
                &aligner_config,
            );
            view_stats.push(outcome.stats);

            let outcome = PreferentialAligner::new(config.preferential_limit).align(
                &catalog,
                &matcher,
                source,
                |r| graph.relation_feature_weight(r),
                Some(&value_index),
                &aligner_config,
            );
            pref_stats.push(outcome.stats);

            introductions += 1;
        }
    }

    AlignerExperimentResult {
        exhaustive: StrategyMeasurement::from_stats(&exhaustive_stats),
        view_based: StrategyMeasurement::from_stats(&view_stats),
        preferential: StrategyMeasurement::from_stats(&pref_stats),
        introductions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_strategies_do_less_work_than_exhaustive() {
        let result = run_aligner_experiment(&AlignerExperimentConfig {
            gbco: GbcoConfig {
                rows_per_table: 15,
                seed: 5,
            },
            max_trials: 3,
            ..AlignerExperimentConfig::default()
        });
        assert!(result.introductions >= 6);
        assert!(result.view_based.mean_comparisons <= result.exhaustive.mean_comparisons);
        assert!(result.preferential.mean_comparisons <= result.exhaustive.mean_comparisons);
        // The value-overlap filter can only reduce comparisons.
        assert!(result.exhaustive.mean_filtered_comparisons <= result.exhaustive.mean_comparisons);
    }
}
