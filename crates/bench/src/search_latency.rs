//! Per-query search latency over the GBCO workload across the three cache
//! regimes the serving loop cycles through: cold misses, warm hits, and the
//! post-feedback state after a MIRA re-pricing bumps the weight epoch.
//!
//! This is the experiment behind `BENCH_search.json`. The interesting column
//! is the third one: before epoch-delta revalidation, a feedback interaction
//! cold-started the whole cache and every post-feedback query paid full miss
//! latency; now entries whose ranking survives the new weights are re-priced
//! in place, so the post-feedback pass should sit close to warm-hit latency,
//! not cold-miss latency. The CI smoke step runs the reduced configuration
//! and fails when the JSON is absent, malformed, or nondeterministic.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_core::{CacheStatus, Feedback, QConfig, QSystem, QueryRequest};
use q_datasets::{gbco_catalog, gbco_trials, GbcoConfig};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchLatencyConfig {
    /// GBCO generator configuration.
    pub gbco: GbcoConfig,
}

impl SearchLatencyConfig {
    /// Reduced configuration for the CI smoke run.
    pub fn smoke() -> Self {
        SearchLatencyConfig {
            gbco: GbcoConfig {
                rows_per_table: 15,
                seed: 17,
            },
        }
    }
}

/// Latency distribution of one serving pass.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median per-query latency.
    pub p50: Duration,
    /// 99th-percentile per-query latency (the maximum on small workloads).
    pub p99: Duration,
}

impl LatencyStats {
    fn of(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort();
        // Nearest-rank percentile: ⌈q/100 · n⌉-th smallest sample, so p99
        // over a small workload really is the maximum.
        let pick = |q: usize| samples[(samples.len() * q).div_ceil(100) - 1];
        LatencyStats {
            p50: pick(50),
            p99: pick(99),
        }
    }
}

/// Measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchLatencyResult {
    /// Queries per pass (the 16 distinct GBCO trials).
    pub queries: usize,
    /// Fresh-system pass: every query is a cache miss.
    pub cold: LatencyStats,
    /// Immediate repeat: every query is a cache hit.
    pub warm: LatencyStats,
    /// Repeat after a MIRA feedback interaction bumped the weight epoch.
    pub post_feedback: LatencyStats,
    /// Post-feedback queries served from revalidated entries.
    pub revalidated: usize,
    /// Post-feedback queries that had to recompute (ranking disturbed by the
    /// re-pricing).
    pub post_misses: usize,
    /// Features whose weight the feedback interaction changed (the weight
    /// delta the cache revalidated against).
    pub repriced_features: usize,
    /// Two independent runs produced byte-identical post-feedback answers.
    pub deterministic: bool,
}

struct Pass {
    stats: LatencyStats,
    revalidated: usize,
    misses: usize,
    rendered: Vec<String>,
}

/// One serving pass over the workload, timing each query end to end.
fn pass(q: &mut QSystem, workload: &[Vec<String>]) -> Pass {
    let mut samples = Vec::with_capacity(workload.len());
    let mut revalidated = 0;
    let mut misses = 0;
    let mut rendered = Vec::with_capacity(workload.len());
    for keywords in workload {
        let request = QueryRequest::new(keywords.iter().cloned());
        let start = Instant::now();
        let outcome = q.query(&request).expect("query answers");
        samples.push(start.elapsed());
        match outcome.cache {
            CacheStatus::Revalidated => revalidated += 1,
            CacheStatus::Miss => misses += 1,
            _ => {}
        }
        rendered.push(format!("{:?}", *outcome.view));
    }
    Pass {
        stats: LatencyStats::of(samples),
        revalidated,
        misses,
        rendered,
    }
}

/// Apply one deterministic MIRA re-pricing: feedback on the first trial
/// whose persistent view ranks at least one answer. Returns the number of
/// re-priced features.
fn apply_feedback(q: &mut QSystem, workload: &[Vec<String>]) -> usize {
    for keywords in workload {
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let view_id = q.create_view(&refs).expect("view creation");
        let view = q.view(view_id).expect("view exists");
        if !view.queries.is_empty() && !view.answers.is_empty() {
            let outcome = q
                .feedback(view_id, Feedback::Correct { answer: 0 })
                .expect("feedback applies");
            return outcome.repriced_features;
        }
    }
    // No trial produced a rankable view (degenerate configuration): fall
    // back to an explicit uniform re-pricing so the epoch still moves.
    let default = q.graph().feature_space().get("default").expect("default");
    let mut w = q.graph().weights().clone();
    w.set(default, w.get(default) + 1e-6);
    q.graph_mut().set_weights(w);
    1
}

fn run_once(config: &SearchLatencyConfig) -> (Pass, Pass, Pass, usize) {
    let mut q = QSystem::new(gbco_catalog(&config.gbco), QConfig::default());
    let workload: Vec<Vec<String>> = gbco_trials().iter().map(|t| t.keywords.clone()).collect();
    let cold = pass(&mut q, &workload);
    let warm = pass(&mut q, &workload);
    let repriced = apply_feedback(&mut q, &workload);
    let post = pass(&mut q, &workload);
    (cold, warm, post, repriced)
}

/// Run the search-latency experiment.
pub fn run_search_latency_experiment(config: &SearchLatencyConfig) -> SearchLatencyResult {
    let (cold, warm, post, repriced) = run_once(config);
    // Determinism: a second fresh run must produce byte-identical answers in
    // every pass, including the post-feedback revalidation decisions.
    let (cold2, warm2, post2, _) = run_once(config);
    let deterministic = cold.rendered == cold2.rendered
        && warm.rendered == warm2.rendered
        && post.rendered == post2.rendered
        && post.revalidated == post2.revalidated;
    SearchLatencyResult {
        queries: cold.rendered.len(),
        cold: cold.stats,
        warm: warm.stats,
        post_feedback: post.stats,
        revalidated: post.revalidated,
        post_misses: post.misses,
        repriced_features: repriced,
        deterministic,
    }
}

impl SearchLatencyResult {
    /// Serialise to the `BENCH_search.json` schema (hand-rolled: the
    /// vendored serde shim has no JSON backend). Keys are stable — the CI
    /// smoke step asserts their presence.
    pub fn to_json(&self, config: &SearchLatencyConfig) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"search_latency\",\n",
                "  \"workload\": \"gbco_trials\",\n",
                "  \"gbco_rows_per_table\": {},\n",
                "  \"gbco_seed\": {},\n",
                "  \"queries\": {},\n",
                "  \"cold_p50_ms\": {:.3},\n",
                "  \"cold_p99_ms\": {:.3},\n",
                "  \"warm_p50_ms\": {:.3},\n",
                "  \"warm_p99_ms\": {:.3},\n",
                "  \"post_feedback_p50_ms\": {:.3},\n",
                "  \"post_feedback_p99_ms\": {:.3},\n",
                "  \"revalidated\": {},\n",
                "  \"post_misses\": {},\n",
                "  \"repriced_features\": {},\n",
                "  \"deterministic\": {}\n",
                "}}\n"
            ),
            config.gbco.rows_per_table,
            config.gbco.seed,
            self.queries,
            ms(self.cold.p50),
            ms(self.cold.p99),
            ms(self.warm.p50),
            ms(self.warm.p99),
            ms(self.post_feedback.p50),
            ms(self.post_feedback.p99),
            self.revalidated,
            self.post_misses,
            self.repriced_features,
            self.deterministic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_configuration_is_deterministic_and_revalidates() {
        let result = run_search_latency_experiment(&SearchLatencyConfig {
            gbco: GbcoConfig {
                rows_per_table: 12,
                seed: 17,
            },
        });
        assert_eq!(result.queries, 16);
        assert!(result.deterministic, "passes diverged between runs");
        assert_eq!(
            result.revalidated + result.post_misses,
            result.queries,
            "every post-feedback query is either revalidated or recomputed \
             (the epoch moved, so plain hits are impossible)"
        );
        assert!(
            result.revalidated > 0,
            "the cache must survive the feedback epoch bump for some queries"
        );
        assert!(result.repriced_features > 0);
    }

    #[test]
    fn json_has_the_contracted_keys() {
        let config = SearchLatencyConfig::smoke();
        let result = SearchLatencyResult {
            queries: 16,
            cold: LatencyStats {
                p50: Duration::from_millis(4),
                p99: Duration::from_millis(9),
            },
            warm: LatencyStats {
                p50: Duration::from_micros(2),
                p99: Duration::from_micros(5),
            },
            post_feedback: LatencyStats {
                p50: Duration::from_micros(3),
                p99: Duration::from_millis(5),
            },
            revalidated: 14,
            post_misses: 2,
            repriced_features: 7,
            deterministic: true,
        };
        let json = result.to_json(&config);
        for key in [
            "\"experiment\"",
            "\"queries\"",
            "\"cold_p50_ms\"",
            "\"cold_p99_ms\"",
            "\"warm_p50_ms\"",
            "\"warm_p99_ms\"",
            "\"post_feedback_p50_ms\"",
            "\"post_feedback_p99_ms\"",
            "\"revalidated\"",
            "\"post_misses\"",
            "\"repriced_features\"",
            "\"deterministic\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn latency_stats_pick_percentiles_from_sorted_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = LatencyStats::of(samples);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(LatencyStats::of(Vec::new()), LatencyStats::default());
    }
}
