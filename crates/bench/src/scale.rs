//! Corpus scaling: serving latency, throughput and memory accounting as the
//! synthetic corpus grows 1× → 10× → 100× past the calibrated GBCO seed.
//!
//! This is the experiment behind `BENCH_scale.json`: the CI `scale-smoke`
//! step runs it in a reduced configuration and fails when the file is
//! absent, malformed or nondeterministic; the full-size numbers (1800
//! additional sources at the top tier) land in the committed JSON for the
//! README's bench table. Each tier builds the expanded system twice and
//! replays the 16 GBCO trial queries cold (all misses) and warm (all hits);
//! the `deterministic` flag asserts the two builds answered byte-for-byte
//! identically, and — at the first tier — that the sharded system answers
//! byte-for-byte like an unsharded (`shards = 1`, `shard_workers = 1`) one.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_core::{QConfig, QSystem, QueryRequest};
use q_datasets::scaling::{expand_with_synthetic_sources_detailed, ScalingConfig};
use q_datasets::{gbco_catalog, gbco_trials, GbcoConfig};
use q_graph::SearchGraph;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Calibrated GBCO seed corpus.
    pub gbco: GbcoConfig,
    /// Synthetic expansion knobs (rows per table, arity, vocabulary reuse).
    pub scaling: ScalingConfig,
    /// Additional synthetic sources per tier, smallest first (the default
    /// 18 / 180 / 1800 is 1× / 10× / 100× the 18-source GBCO federation).
    pub tiers: Vec<usize>,
    /// Shards the served snapshot is partitioned into.
    pub shards: usize,
    /// Worker threads fanning one miss's per-terminal Dijkstras.
    pub shard_workers: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            gbco: GbcoConfig::default(),
            scaling: ScalingConfig {
                rows_per_table: 50,
                ..ScalingConfig::default()
            },
            tiers: vec![18, 180, 1800],
            shards: 4,
            shard_workers: 2,
        }
    }
}

impl ScaleConfig {
    /// Reduced configuration for the CI smoke run.
    pub fn smoke() -> Self {
        ScaleConfig {
            gbco: GbcoConfig {
                rows_per_table: 10,
                seed: 17,
            },
            scaling: ScalingConfig {
                rows_per_table: 12,
                ..ScalingConfig::default()
            },
            tiers: vec![6, 24],
            shards: 3,
            shard_workers: 2,
        }
    }
}

/// Measurements of one corpus tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleTier {
    /// Synthetic sources added on top of the GBCO seed.
    pub additional_sources: usize,
    /// Total sources in the federation.
    pub total_sources: usize,
    /// Total rows across all relations.
    pub total_rows: usize,
    /// Wall-clock to build the serving state (catalog, graph, indexes,
    /// shard set).
    pub build: Duration,
    /// Accounted bytes of the packed search structures (all shards plus the
    /// boundary section).
    pub snapshot_bytes: u64,
    /// Accounted bytes per shard.
    pub shard_bytes: Vec<u64>,
    /// Cross-shard edges in the shared boundary section.
    pub boundary_edges: usize,
    /// Cold-pass (all misses) latency percentiles.
    pub cold_p50: Duration,
    /// 99th percentile of the cold pass.
    pub cold_p99: Duration,
    /// Warm-pass (all hits) latency percentiles.
    pub warm_p50: Duration,
    /// 99th percentile of the warm pass.
    pub warm_p99: Duration,
    /// Queries per second over the cold pass.
    pub cold_qps: f64,
    /// Queries per second over the warm pass.
    pub warm_qps: f64,
}

/// Measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleResult {
    /// Per-tier measurements, smallest corpus first.
    pub tiers: Vec<ScaleTier>,
    /// Shards the snapshots were partitioned into.
    pub shards: usize,
    /// Per-miss Dijkstra fan-out width.
    pub shard_workers: usize,
    /// Peak resident set size in bytes (`VmHWM` when the platform exposes
    /// it, otherwise the largest accounted snapshot size).
    pub peak_rss_bytes: u64,
    /// `"vm_hwm"` or `"accounted"` — where `peak_rss_bytes` came from.
    pub rss_source: &'static str,
    /// Every tier's two builds answered byte-for-byte identically, and the
    /// first tier's sharded system matched an unsharded one byte-for-byte.
    pub deterministic: bool,
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`, in bytes).
fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

fn qps(count: usize, total: Duration) -> f64 {
    let secs = total.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        f64::INFINITY
    }
}

/// Build the expanded system for one tier: GBCO seed catalog, synthetic
/// expansion (multi-attribute FK-linked sources), `QSystem` over the result
/// with the expansion's association edges re-applied and the shard set
/// built eagerly so `build` covers the whole serving state.
fn build_tier(config: &ScaleConfig, additional: usize) -> (QSystem, Duration, usize) {
    let start = Instant::now();
    let mut catalog = gbco_catalog(&config.gbco);
    let mut graph = SearchGraph::from_catalog(&catalog);
    let expansion = expand_with_synthetic_sources_detailed(
        &mut catalog,
        &mut graph,
        additional,
        &config.scaling,
    );
    drop(graph); // the QSystem re-derives its graph from the catalog
    let total_rows: usize = catalog.relations().iter().map(|r| r.cardinality()).sum();
    let mut q = QSystem::new(
        catalog,
        QConfig {
            shards: config.shards,
            shard_workers: config.shard_workers,
            ..QConfig::default()
        },
    );
    for (a, b, confidence) in &expansion.associations {
        q.graph_mut()
            .add_association(*a, *b, "synthetic", *confidence);
    }
    q.shard_set();
    (q, start.elapsed(), total_rows)
}

/// Replay the requests once, timing each individually; returns the
/// per-query times and the rendered views (the byte-identity fingerprint).
fn replay(q: &mut QSystem, requests: &[QueryRequest]) -> (Vec<Duration>, Vec<String>) {
    let mut times = Vec::with_capacity(requests.len());
    let mut renders = Vec::with_capacity(requests.len());
    for request in requests {
        let start = Instant::now();
        let outcome = q.query(request).expect("scale query answers");
        times.push(start.elapsed());
        renders.push(format!("{:?}", outcome.view));
    }
    (times, renders)
}

/// Run the scale experiment.
pub fn run_scale_experiment(config: &ScaleConfig) -> ScaleResult {
    let requests: Vec<QueryRequest> = gbco_trials()
        .iter()
        .map(|t| QueryRequest::new(t.keywords.iter().cloned()))
        .collect();

    let mut tiers = Vec::with_capacity(config.tiers.len());
    let mut deterministic = true;
    let mut accounted_peak = 0u64;
    for (tier_index, &additional) in config.tiers.iter().enumerate() {
        let (mut q, build, total_rows) = build_tier(config, additional);
        let total_sources = q.catalog().sources().len();
        let (snapshot_bytes, shard_bytes, boundary_edges) = {
            let set = q.shard_set();
            (
                set.total_bytes(),
                set.shard_bytes(),
                set.boundary_edge_count(),
            )
        };
        accounted_peak = accounted_peak.max(snapshot_bytes);

        let (cold_times, cold_renders) = replay(&mut q, &requests);
        let (warm_times, warm_renders) = replay(&mut q, &requests);
        deterministic &= cold_renders == warm_renders;

        // Second build of the same tier: answers must be byte-identical.
        let (mut q2, _, _) = build_tier(config, additional);
        let (_, rebuild_renders) = replay(&mut q2, &requests);
        deterministic &= cold_renders == rebuild_renders;

        // At the smallest tier, pin the shard-equivalence claim inside the
        // experiment too: an unsharded single-threaded system answers
        // byte-for-byte like the sharded one.
        if tier_index == 0 {
            let unsharded = ScaleConfig {
                shards: 1,
                shard_workers: 1,
                ..config.clone()
            };
            let (mut q1, _, _) = build_tier(&unsharded, additional);
            let (_, unsharded_renders) = replay(&mut q1, &requests);
            deterministic &= cold_renders == unsharded_renders;
        }

        let cold_total: Duration = cold_times.iter().sum();
        let warm_total: Duration = warm_times.iter().sum();
        let mut cold_sorted = cold_times;
        let mut warm_sorted = warm_times;
        cold_sorted.sort_unstable();
        warm_sorted.sort_unstable();
        tiers.push(ScaleTier {
            additional_sources: additional,
            total_sources,
            total_rows,
            build,
            snapshot_bytes,
            shard_bytes,
            boundary_edges,
            cold_p50: percentile(&cold_sorted, 50),
            cold_p99: percentile(&cold_sorted, 99),
            warm_p50: percentile(&warm_sorted, 50),
            warm_p99: percentile(&warm_sorted, 99),
            cold_qps: qps(requests.len(), cold_total),
            warm_qps: qps(requests.len(), warm_total),
        });
    }

    let (peak_rss_bytes, rss_source) = match vm_hwm_bytes() {
        Some(bytes) => (bytes, "vm_hwm"),
        None => (accounted_peak, "accounted"),
    };
    ScaleResult {
        tiers,
        shards: config.shards,
        shard_workers: config.shard_workers,
        peak_rss_bytes,
        rss_source,
        deterministic,
    }
}

impl ScaleResult {
    /// Serialise to the `BENCH_scale.json` schema (hand-rolled: the vendored
    /// serde shim has no JSON backend). Keys are stable — the CI smoke step
    /// asserts their presence.
    pub fn to_json(&self, config: &ScaleConfig) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let tiers: Vec<String> = self
            .tiers
            .iter()
            .map(|t| {
                let shard_bytes: Vec<String> =
                    t.shard_bytes.iter().map(|b| b.to_string()).collect();
                format!(
                    concat!(
                        "    {{\n",
                        "      \"additional_sources\": {},\n",
                        "      \"total_sources\": {},\n",
                        "      \"total_rows\": {},\n",
                        "      \"build_ms\": {:.3},\n",
                        "      \"snapshot_bytes\": {},\n",
                        "      \"shard_bytes\": [{}],\n",
                        "      \"boundary_edges\": {},\n",
                        "      \"cold_p50_ms\": {:.3},\n",
                        "      \"cold_p99_ms\": {:.3},\n",
                        "      \"warm_p50_ms\": {:.3},\n",
                        "      \"warm_p99_ms\": {:.3},\n",
                        "      \"cold_qps\": {:.1},\n",
                        "      \"warm_qps\": {:.1}\n",
                        "    }}"
                    ),
                    t.additional_sources,
                    t.total_sources,
                    t.total_rows,
                    ms(t.build),
                    t.snapshot_bytes,
                    shard_bytes.join(", "),
                    t.boundary_edges,
                    ms(t.cold_p50),
                    ms(t.cold_p99),
                    ms(t.warm_p50),
                    ms(t.warm_p99),
                    t.cold_qps,
                    t.warm_qps,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"scale\",\n",
                "  \"workload\": \"gbco_trials\",\n",
                "  \"rows_per_table\": {},\n",
                "  \"attributes_per_table\": {},\n",
                "  \"shards\": {},\n",
                "  \"shard_workers\": {},\n",
                "  \"peak_rss_bytes\": {},\n",
                "  \"rss_source\": \"{}\",\n",
                "  \"deterministic\": {},\n",
                "  \"tiers\": [\n{}\n  ]\n",
                "}}\n"
            ),
            config.scaling.rows_per_table,
            config.scaling.attributes_per_table,
            self.shards,
            self.shard_workers,
            self.peak_rss_bytes,
            self.rss_source,
            self.deterministic,
            tiers.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_configuration_measures_and_stays_deterministic() {
        let config = ScaleConfig {
            gbco: GbcoConfig {
                rows_per_table: 8,
                seed: 17,
            },
            scaling: ScalingConfig {
                rows_per_table: 6,
                ..ScalingConfig::default()
            },
            tiers: vec![4],
            shards: 3,
            shard_workers: 2,
        };
        let result = run_scale_experiment(&config);
        assert!(result.deterministic, "scale replays diverged");
        assert_eq!(result.tiers.len(), 1);
        let tier = &result.tiers[0];
        assert_eq!(tier.additional_sources, 4);
        assert!(tier.total_rows > 0);
        assert!(tier.snapshot_bytes > 0);
        assert_eq!(tier.shard_bytes.len(), 3);
        assert!(
            tier.shard_bytes.iter().sum::<u64>() <= tier.snapshot_bytes,
            "per-shard bytes exceed the accounted total"
        );
        assert!(tier.boundary_edges > 0, "synthetic FKs must cross shards");
        assert!(result.peak_rss_bytes > 0);
    }

    #[test]
    fn json_has_the_contracted_keys() {
        let config = ScaleConfig::smoke();
        let result = ScaleResult {
            tiers: vec![ScaleTier {
                additional_sources: 6,
                total_sources: 24,
                total_rows: 252,
                build: Duration::from_millis(12),
                snapshot_bytes: 4096,
                shard_bytes: vec![2048, 1024, 512],
                boundary_edges: 3,
                cold_p50: Duration::from_millis(2),
                cold_p99: Duration::from_millis(5),
                warm_p50: Duration::from_micros(10),
                warm_p99: Duration::from_micros(50),
                cold_qps: 400.0,
                warm_qps: 90_000.0,
            }],
            shards: 3,
            shard_workers: 2,
            peak_rss_bytes: 1 << 20,
            rss_source: "vm_hwm",
            deterministic: true,
        };
        let json = result.to_json(&config);
        for key in [
            "\"experiment\"",
            "\"shards\"",
            "\"shard_workers\"",
            "\"peak_rss_bytes\"",
            "\"rss_source\"",
            "\"deterministic\"",
            "\"tiers\"",
            "\"additional_sources\"",
            "\"total_sources\"",
            "\"total_rows\"",
            "\"build_ms\"",
            "\"snapshot_bytes\"",
            "\"shard_bytes\"",
            "\"boundary_edges\"",
            "\"cold_p50_ms\"",
            "\"cold_p99_ms\"",
            "\"warm_p50_ms\"",
            "\"warm_p99_ms\"",
            "\"cold_qps\"",
            "\"warm_qps\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }
}
