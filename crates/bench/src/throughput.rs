//! Query-serving throughput over the GBCO workload: sequential-uncached
//! (the pre-cache, pre-batch serving path) vs batched over scoped workers vs
//! a fully warm cache.
//!
//! This is the experiment behind `BENCH_throughput.json`: the CI smoke step
//! runs it in a reduced configuration and fails when the file is absent or
//! malformed, and the full-size numbers land in the JSON for the README's
//! bench instructions. The workload is the 16 GBCO trial keyword queries
//! (Section 5.1's query log), each repeated `repeats` times — repeats model
//! the production query-log shape where the same views are requested over
//! and over, which is precisely what the weight-epoch cache exploits.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_core::{BatchOptions, CachePolicy, QConfig, QSystem, QueryRequest};
use q_datasets::{gbco_catalog, gbco_trials, GbcoConfig};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// GBCO generator configuration.
    pub gbco: GbcoConfig,
    /// How many times the 16-query trial workload is replayed.
    pub repeats: usize,
    /// Worker threads for the batched run (`0` = available parallelism).
    pub workers: usize,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            gbco: GbcoConfig::default(),
            repeats: 4,
            workers: 0,
        }
    }
}

impl ThroughputConfig {
    /// Reduced configuration for the CI smoke run: small tables, one
    /// repeat beyond the distinct set, bounded workers.
    pub fn smoke() -> Self {
        ThroughputConfig {
            gbco: GbcoConfig {
                rows_per_table: 15,
                seed: 17,
            },
            repeats: 2,
            workers: 4,
        }
    }
}

/// Measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Total workload size (queries answered, including repeats).
    pub queries: usize,
    /// Distinct queries in the workload.
    pub distinct_queries: usize,
    /// Worker threads the batched runs actually used.
    pub workers: usize,
    /// Sequential serving with no cache: every query recomputed.
    pub sequential_cold: Duration,
    /// One `run_queries_batch` call on a cold cache.
    pub batched_cold: Duration,
    /// A second `run_queries_batch` call: all hits.
    pub warm_cache: Duration,
    /// `sequential_cold / batched_cold`.
    pub batch_speedup: f64,
    /// `sequential_cold / warm_cache`.
    pub warm_speedup: f64,
    /// Batched answers (any worker count) byte-identical to the sequential
    /// baseline's, and the single-worker batch identical to the multi-worker
    /// batch.
    pub deterministic: bool,
    /// Cache hits over both batched runs.
    pub cache_hits: u64,
    /// Cache misses over both batched runs.
    pub cache_misses: u64,
}

fn ratio(baseline: Duration, measured: Duration) -> f64 {
    let b = baseline.as_secs_f64();
    let m = measured.as_secs_f64();
    if m > 0.0 {
        b / m
    } else {
        f64::INFINITY
    }
}

/// Run the throughput experiment.
pub fn run_throughput_experiment(config: &ThroughputConfig) -> ThroughputResult {
    let catalog = gbco_catalog(&config.gbco);
    let mut q = QSystem::new(catalog, QConfig::default());

    let trials = gbco_trials();
    let mut workload: Vec<Vec<String>> = Vec::new();
    for _ in 0..config.repeats.max(1) {
        workload.extend(trials.iter().map(|t| t.keywords.clone()));
    }
    let distinct_queries = trials.len();
    // Typed requests, built outside every timed window.
    let requests: Vec<QueryRequest> = workload
        .iter()
        .map(|kws| QueryRequest::new(kws.iter().cloned()))
        .collect();
    let bypass_requests: Vec<QueryRequest> = workload
        .iter()
        .map(|kws| QueryRequest::new(kws.iter().cloned()).cache_policy(CachePolicy::Bypass))
        .collect();

    // Pre-PR baseline: sequential, no cache, every repeat recomputed
    // (`CachePolicy::Bypass` per request). The timed window covers only the
    // query computation — the Debug rendering the determinism check needs
    // happens outside it, keeping the baseline comparable to the
    // (render-free) batched windows below.
    let start = Instant::now();
    let sequential_views: Vec<_> = bypass_requests
        .iter()
        .map(|r| q.query(r).expect("query answers").view)
        .collect();
    let sequential_cold = start.elapsed();
    let sequential: Vec<String> = sequential_views.iter().map(|v| format!("{v:?}")).collect();

    // Batched over scoped workers, cold cache.
    let start = Instant::now();
    let cold = q.query_batch(
        &requests,
        &BatchOptions {
            workers: config.workers,
        },
    );
    let batched_cold = start.elapsed();

    // Same batch again: every query is a cache hit.
    let start = Instant::now();
    let warm = q.query_batch(
        &requests,
        &BatchOptions {
            workers: config.workers,
        },
    );
    let warm_cache = start.elapsed();

    // Determinism: batched == sequential per slot, and a single-worker rerun
    // on a fresh system matches the multi-worker cold run byte for byte.
    let mut q_single = QSystem::new(gbco_catalog(&config.gbco), QConfig::default());
    let single = q_single.query_batch(&requests, &BatchOptions { workers: 1 });
    let render = |r: &Result<q_core::QueryOutcome, q_core::QError>| {
        format!("{:?}", *r.as_ref().expect("query answers").view)
    };
    let deterministic = cold
        .outcomes
        .iter()
        .zip(&sequential)
        .all(|(b, s)| render(b) == *s)
        && cold
            .outcomes
            .iter()
            .zip(&single.outcomes)
            .all(|(a, b)| render(a) == render(b))
        && warm
            .outcomes
            .iter()
            .zip(&cold.outcomes)
            .all(|(a, b)| render(a) == render(b));

    ThroughputResult {
        queries: workload.len(),
        distinct_queries,
        workers: cold.workers,
        sequential_cold,
        batched_cold,
        warm_cache,
        batch_speedup: ratio(sequential_cold, batched_cold),
        warm_speedup: ratio(sequential_cold, warm_cache),
        deterministic,
        cache_hits: (cold.cache_hits + warm.cache_hits) as u64,
        cache_misses: (cold.cache_misses + warm.cache_misses) as u64,
    }
}

impl ThroughputResult {
    /// Serialise to the `BENCH_throughput.json` schema (hand-rolled: the
    /// vendored serde shim has no JSON backend). Keys are stable — the CI
    /// smoke step asserts their presence.
    pub fn to_json(&self, config: &ThroughputConfig) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"throughput\",\n",
                "  \"workload\": \"gbco_trials\",\n",
                "  \"gbco_rows_per_table\": {},\n",
                "  \"gbco_seed\": {},\n",
                "  \"queries\": {},\n",
                "  \"distinct_queries\": {},\n",
                "  \"workers\": {},\n",
                "  \"sequential_cold_ms\": {:.3},\n",
                "  \"batched_cold_ms\": {:.3},\n",
                "  \"warm_cache_ms\": {:.3},\n",
                "  \"batch_speedup\": {:.3},\n",
                "  \"warm_speedup\": {:.3},\n",
                "  \"deterministic\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"cache_misses\": {}\n",
                "}}\n"
            ),
            config.gbco.rows_per_table,
            config.gbco.seed,
            self.queries,
            self.distinct_queries,
            self.workers,
            ms(self.sequential_cold),
            ms(self.batched_cold),
            ms(self.warm_cache),
            self.batch_speedup,
            self.warm_speedup,
            self.deterministic,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_configuration_is_deterministic_and_caches() {
        let config = ThroughputConfig {
            gbco: GbcoConfig {
                rows_per_table: 12,
                seed: 17,
            },
            repeats: 2,
            workers: 2,
        };
        let result = run_throughput_experiment(&config);
        assert_eq!(result.queries, 32);
        assert_eq!(result.distinct_queries, 16);
        assert!(result.deterministic, "batched answers diverged");
        // Cold run: 16 misses + 16 in-batch duplicate hits; warm run: 32
        // hits.
        assert_eq!(result.cache_misses, 16);
        assert_eq!(result.cache_hits, 48);
        assert!(result.warm_speedup >= result.batch_speedup * 0.5);
    }

    #[test]
    fn json_has_the_contracted_keys() {
        let config = ThroughputConfig::smoke();
        let result = ThroughputResult {
            queries: 32,
            distinct_queries: 16,
            workers: 4,
            sequential_cold: Duration::from_millis(100),
            batched_cold: Duration::from_millis(20),
            warm_cache: Duration::from_millis(1),
            batch_speedup: 5.0,
            warm_speedup: 100.0,
            deterministic: true,
            cache_hits: 48,
            cache_misses: 16,
        };
        let json = result.to_json(&config);
        for key in [
            "\"experiment\"",
            "\"queries\"",
            "\"distinct_queries\"",
            "\"workers\"",
            "\"sequential_cold_ms\"",
            "\"batched_cold_ms\"",
            "\"warm_cache_ms\"",
            "\"batch_speedup\"",
            "\"warm_speedup\"",
            "\"deterministic\"",
            "\"cache_hits\"",
            "\"cache_misses\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }
}
