//! Live-ingestion serving throughput: queries per second sustained *while*
//! GBCO sources stream into the system, versus an idle baseline and versus
//! a stop-the-world lock-coupled server.
//!
//! This is the experiment behind `BENCH_ingest.json`. Three measured
//! windows, all with the same reader shape (N threads issuing
//! cache-bypassing trial queries, i.e. pure compute against the current
//! serving state):
//!
//! 1. **idle** — readers only, nothing changes: the reference throughput.
//! 2. **live ingest** — the same readers while a writer incorporates the
//!    held-back sources one by one through
//!    [`LiveServer::ingest_source`](q_core::LiveServer): readers keep
//!    serving from their snapshots and never block on the writer, so
//!    throughput should degrade only by the CPU share the writer takes.
//! 3. **stop-the-world** — the seed architecture: one `RwLock<QSystem>`,
//!    readers take the read lock per query, `register_source` takes the
//!    write lock for the whole incorporation. Readers stall for every
//!    ingestion.
//!
//! Every reader samples its first few live-window outcomes as
//! `(snapshot id, query, answer bytes)`; after the run each sample is
//! replayed against the named published snapshot's sequential answer —
//! `deterministic` in the JSON means every concurrent observation was
//! byte-identical to its snapshot's answer (the same
//! linearizability-by-replay claim the `live_ingest` stress test pins).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_core::{CachePolicy, GraphSnapshot, LiveServer, QConfig, QSystem, QueryRequest};
use q_datasets::{gbco_source_specs_with_fks, gbco_trials, GbcoConfig};
use q_matchers::MetadataMatcher;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveIngestConfig {
    /// GBCO generator configuration.
    pub gbco: GbcoConfig,
    /// Sources loaded before serving starts; the rest stream in live.
    pub initial_sources: usize,
    /// Reader threads.
    pub readers: usize,
    /// Length of the idle measurement window.
    pub idle_millis: u64,
    /// Live-window outcomes each reader samples for the replay check.
    pub replay_sample: usize,
}

impl Default for LiveIngestConfig {
    fn default() -> Self {
        LiveIngestConfig {
            gbco: GbcoConfig::default(),
            initial_sources: 10,
            readers: 8,
            idle_millis: 400,
            replay_sample: 16,
        }
    }
}

impl LiveIngestConfig {
    /// Reduced configuration for the CI smoke run.
    pub fn smoke() -> Self {
        LiveIngestConfig {
            gbco: GbcoConfig {
                rows_per_table: 15,
                seed: 17,
            },
            // Stream 2 sources instead of the full run's 8: the smoke's
            // queries are cheap (15-row tables), so on a small runner the
            // in-window publish + re-validation work would otherwise eat a
            // CPU share large enough to flunk the sustained-ratio contract
            // on scheduling noise alone.
            initial_sources: 16,
            readers: 8,
            idle_millis: 120,
            replay_sample: 8,
        }
    }
}

/// Measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveIngestResult {
    /// Reader threads used in every window.
    pub readers: usize,
    /// Sources the server booted with.
    pub initial_sources: usize,
    /// Sources streamed in during the live window.
    pub streamed_sources: usize,
    /// Snapshots the live window published (one per streamed source).
    pub snapshots_published: usize,
    /// Reader throughput with no writer activity.
    pub idle_qps: f64,
    /// Reader throughput while sources streamed in live.
    pub sustained_qps: f64,
    /// `sustained_qps / idle_qps` — the no-stop-the-world headline.
    pub sustained_ratio: f64,
    /// Reader throughput under the lock-coupled baseline's ingestion.
    pub stop_world_qps: f64,
    /// `sustained_qps / stop_world_qps`.
    pub live_vs_stop_world: f64,
    /// Queries answered inside the live ingestion window.
    pub queries_during_ingest: usize,
    /// Wall time of the live ingestion window.
    pub ingest_wall: Duration,
    /// Wall time of the stop-the-world ingestion window.
    pub stop_world_wall: Duration,
    /// Cache entries still serving their original bytes after every
    /// publish settled: kept outright by the per-entry reachability pricing
    /// plus parked entries the re-validation lane proved byte-identical.
    pub cache_kept: u64,
    /// Cache entries parked for background re-validation, summed over
    /// publishes (each also lands in kept or dropped once settled).
    pub cache_parked: u64,
    /// Cache entries that actually went cold: non-revalidatable entries
    /// dropped at publish time plus parked entries the lane could not
    /// settle (superseded by a newer publish, or failing recompute).
    pub cache_dropped: u64,
    /// Parked entries the lane re-admitted byte-identical.
    pub revalidation_kept: u64,
    /// Parked entries whose answer genuinely changed: the lane re-admitted
    /// them warm with the fresh bytes, stamped with the parking snapshot.
    pub revalidation_repriced: u64,
    /// Sampled concurrent observations replayed byte-identical against
    /// their published snapshots' sequential answers.
    pub replayed_observations: usize,
    /// True when every sampled observation replayed byte-identical.
    pub deterministic: bool,
}

fn qps(queries: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        queries as f64 / secs
    } else {
        f64::INFINITY
    }
}

/// Run the live-ingestion throughput experiment.
pub fn run_live_ingest_experiment(config: &LiveIngestConfig) -> LiveIngestResult {
    let specs = gbco_source_specs_with_fks(&config.gbco);
    let initial = config.initial_sources.clamp(1, specs.len() - 1);
    let readers = config.readers.max(1);
    let requests: Vec<QueryRequest> = gbco_trials()
        .iter()
        .map(|t| QueryRequest::new(t.keywords.iter().cloned()).cache_policy(CachePolicy::Bypass))
        .collect();

    let catalog = q_storage::loader::load_catalog(&specs[..initial]).expect("GBCO loads");
    let mut server = LiveServer::new(catalog, QConfig::default());
    server.add_matcher(Box::new(MetadataMatcher::new()));
    let server = &server;

    // -- Window 1: idle ---------------------------------------------------
    let idle_window = Duration::from_millis(config.idle_millis.max(10));
    let answered = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let idle_wall = {
        let (answered, stop) = (&answered, &stop);
        let requests = &requests;
        let start = Instant::now();
        std::thread::scope(|s| {
            for r in 0..readers {
                s.spawn(move || {
                    let mut i = r;
                    while !stop.load(Ordering::Acquire) {
                        server
                            .query(&requests[i % requests.len()])
                            .expect("GBCO queries answer");
                        answered.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            std::thread::sleep(idle_window);
            stop.store(true, Ordering::Release);
        });
        start.elapsed()
    };
    let idle_qps = qps(answered.load(Ordering::Relaxed), idle_wall);

    // Warm one cached entry per trial query so the publishes below exercise
    // the cache survival rule (the measured readers bypass the cache — pure
    // compute — so without this pass the kept/dropped counters would be
    // vacuous).
    for request in gbco_trials()
        .iter()
        .map(|t| QueryRequest::new(t.keywords.iter().cloned()))
    {
        server.query(&request).expect("GBCO queries answer");
    }

    // -- Window 2: live ingestion -----------------------------------------
    let answered = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let observations: Mutex<Vec<(u64, usize, String)>> = Mutex::new(Vec::new());
    let mut published: Vec<Arc<GraphSnapshot>> = vec![server.snapshot()];
    let mut cache_kept = 0u64;
    let mut cache_parked = 0u64;
    let mut cache_dropped = 0u64;
    let mut ingest_wall = Duration::ZERO;
    let mut queries_during_ingest = 0usize;
    {
        let (answered, stop) = (&answered, &stop);
        let (requests, observations) = (&requests, &observations);
        let sample = config.replay_sample;
        std::thread::scope(|s| {
            for r in 0..readers {
                s.spawn(move || {
                    let mut i = r;
                    let mut local: Vec<(u64, usize, String)> = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let idx = i % requests.len();
                        let outcome = server.query(&requests[idx]).expect("GBCO queries answer");
                        if local.len() < sample {
                            local.push((
                                outcome.snapshot.expect("live serving stamps snapshots"),
                                idx,
                                format!("{:?}", outcome.view),
                            ));
                        }
                        answered.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                    observations.lock().unwrap().extend(local);
                });
            }
            // Count only queries answered inside the timed window: readers
            // spin up (and drain) outside it, so the counter is sampled at
            // the same instants the clock starts and stops.
            let window_start = answered.load(Ordering::Relaxed);
            let start = Instant::now();
            for spec in &specs[initial..] {
                let report = server.ingest_source(spec).expect("GBCO source ingests");
                cache_kept += report.cache_kept;
                cache_parked += report.cache_parked;
                cache_dropped += report.cache_dropped;
                // Settle parked entries before the next publish can
                // supersede the batch: the kept/repriced split stays
                // deterministic across runs, and the timed window honestly
                // charges the background re-pricing work to ingestion.
                server.flush_revalidation();
                published.push(report.snapshot);
            }
            ingest_wall = start.elapsed();
            queries_during_ingest = answered.load(Ordering::Relaxed) - window_start;
            stop.store(true, Ordering::Release);
        });
    }
    let sustained_qps = qps(queries_during_ingest, ingest_wall);
    let lane = server.revalidation_stats();

    // Replay every sampled observation against its snapshot.
    let observations = observations.into_inner().unwrap();
    let deterministic = !observations.is_empty()
        && observations.iter().all(|(snapshot, idx, bytes)| {
            let Some(snap) = published.iter().find(|s| s.id() == *snapshot) else {
                return false;
            };
            match snap.answer(server.config(), &requests[*idx]) {
                Ok(reference) => format!("{reference:?}") == *bytes,
                Err(_) => false,
            }
        });

    // -- Window 3: stop-the-world baseline --------------------------------
    let catalog = q_storage::loader::load_catalog(&specs[..initial]).expect("GBCO loads");
    let mut seed_system = QSystem::new(catalog, QConfig::default());
    seed_system.add_matcher(Box::new(MetadataMatcher::new()));
    let locked = RwLock::new(seed_system);
    let answered = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut stop_world_wall = Duration::ZERO;
    let mut stop_world_queries = 0usize;
    {
        let (answered, stop, locked) = (&answered, &stop, &locked);
        let requests = &requests;
        std::thread::scope(|s| {
            for r in 0..readers {
                s.spawn(move || {
                    let mut i = r;
                    while !stop.load(Ordering::Acquire) {
                        locked
                            .read()
                            .expect("reader lock")
                            .query_shared(&requests[i % requests.len()])
                            .expect("GBCO queries answer");
                        answered.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            let window_start = answered.load(Ordering::Relaxed);
            let start = Instant::now();
            for spec in &specs[initial..] {
                locked
                    .write()
                    .expect("writer lock")
                    .register_source(spec)
                    .expect("GBCO source registers");
            }
            stop_world_wall = start.elapsed();
            stop_world_queries = answered.load(Ordering::Relaxed) - window_start;
            stop.store(true, Ordering::Release);
        });
    }
    let stop_world_qps = qps(stop_world_queries, stop_world_wall);

    LiveIngestResult {
        readers,
        initial_sources: initial,
        streamed_sources: specs.len() - initial,
        snapshots_published: published.len() - 1,
        idle_qps,
        sustained_qps,
        sustained_ratio: if idle_qps > 0.0 {
            sustained_qps / idle_qps
        } else {
            f64::INFINITY
        },
        stop_world_qps,
        live_vs_stop_world: if stop_world_qps > 0.0 {
            sustained_qps / stop_world_qps
        } else {
            f64::INFINITY
        },
        queries_during_ingest,
        ingest_wall,
        stop_world_wall,
        cache_kept: cache_kept + lane.kept,
        cache_parked,
        cache_dropped: cache_dropped + lane.dropped,
        revalidation_kept: lane.kept,
        revalidation_repriced: lane.repriced,
        replayed_observations: observations.len(),
        deterministic,
    }
}

impl LiveIngestResult {
    /// Serialise to the `BENCH_ingest.json` schema (hand-rolled: the
    /// vendored serde shim has no JSON backend). Keys are stable — the CI
    /// smoke step asserts their presence.
    pub fn to_json(&self, config: &LiveIngestConfig) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"live_ingest\",\n",
                "  \"workload\": \"gbco_trials\",\n",
                "  \"gbco_rows_per_table\": {},\n",
                "  \"gbco_seed\": {},\n",
                "  \"readers\": {},\n",
                "  \"initial_sources\": {},\n",
                "  \"streamed_sources\": {},\n",
                "  \"snapshots_published\": {},\n",
                "  \"idle_qps\": {:.3},\n",
                "  \"sustained_qps\": {:.3},\n",
                "  \"sustained_ratio\": {:.3},\n",
                "  \"stop_world_qps\": {:.3},\n",
                "  \"live_vs_stop_world\": {:.3},\n",
                "  \"queries_during_ingest\": {},\n",
                "  \"ingest_wall_ms\": {:.3},\n",
                "  \"stop_world_wall_ms\": {:.3},\n",
                "  \"cache_kept\": {},\n",
                "  \"cache_parked\": {},\n",
                "  \"cache_dropped\": {},\n",
                "  \"revalidation_kept\": {},\n",
                "  \"revalidation_repriced\": {},\n",
                "  \"replayed_observations\": {},\n",
                "  \"deterministic\": {}\n",
                "}}\n"
            ),
            config.gbco.rows_per_table,
            config.gbco.seed,
            self.readers,
            self.initial_sources,
            self.streamed_sources,
            self.snapshots_published,
            self.idle_qps,
            self.sustained_qps,
            self.sustained_ratio,
            self.stop_world_qps,
            self.live_vs_stop_world,
            self.queries_during_ingest,
            ms(self.ingest_wall),
            ms(self.stop_world_wall),
            self.cache_kept,
            self.cache_parked,
            self.cache_dropped,
            self.revalidation_kept,
            self.revalidation_repriced,
            self.replayed_observations,
            self.deterministic,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_deterministic_and_publishes_per_source() {
        let config = LiveIngestConfig {
            gbco: GbcoConfig {
                rows_per_table: 10,
                seed: 17,
            },
            initial_sources: 15,
            readers: 2,
            idle_millis: 30,
            replay_sample: 4,
        };
        let result = run_live_ingest_experiment(&config);
        assert_eq!(result.streamed_sources, 3);
        assert_eq!(result.snapshots_published, 3);
        assert!(result.deterministic, "sampled observations diverged");
        assert!(result.replayed_observations > 0);
        assert!(result.queries_during_ingest > 0, "reads were stopped");
        assert!(result.idle_qps > 0.0);
        assert!(result.sustained_qps > 0.0);
    }

    #[test]
    fn json_has_the_contracted_keys() {
        let config = LiveIngestConfig::smoke();
        let result = LiveIngestResult {
            readers: 4,
            initial_sources: 10,
            streamed_sources: 8,
            snapshots_published: 8,
            idle_qps: 100.0,
            sustained_qps: 80.0,
            sustained_ratio: 0.8,
            stop_world_qps: 20.0,
            live_vs_stop_world: 4.0,
            queries_during_ingest: 160,
            ingest_wall: Duration::from_millis(2000),
            stop_world_wall: Duration::from_millis(2500),
            cache_kept: 12,
            cache_parked: 5,
            cache_dropped: 4,
            revalidation_kept: 4,
            revalidation_repriced: 1,
            replayed_observations: 64,
            deterministic: true,
        };
        let json = result.to_json(&config);
        for key in [
            "\"experiment\"",
            "\"readers\"",
            "\"initial_sources\"",
            "\"streamed_sources\"",
            "\"snapshots_published\"",
            "\"idle_qps\"",
            "\"sustained_qps\"",
            "\"sustained_ratio\"",
            "\"stop_world_qps\"",
            "\"live_vs_stop_world\"",
            "\"queries_during_ingest\"",
            "\"ingest_wall_ms\"",
            "\"stop_world_wall_ms\"",
            "\"cache_kept\"",
            "\"cache_parked\"",
            "\"cache_dropped\"",
            "\"revalidation_kept\"",
            "\"revalidation_repriced\"",
            "\"replayed_observations\"",
            "\"deterministic\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }
}
