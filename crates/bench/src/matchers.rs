//! Table 1: precision / recall / F-measure of the top-Y alignments induced by
//! the metadata matcher (COMA++ substitute) and MAD against the 8 gold edges
//! of the InterPro-GO schema (Figure 9).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use q_core::evaluation::{precision_recall_alignments, AttrPair};
use q_datasets::{interpro_go_catalog, interpro_go_gold, InterproGoConfig};
use q_matchers::{AttributeAlignment, MadMatcher, MetadataMatcher, SchemaMatcher};
use q_storage::{Catalog, RelationId};

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherQualityConfig {
    /// InterPro-GO generator configuration.
    pub dataset: InterproGoConfig,
    /// The Y values to evaluate (the paper uses 1, 2, 5).
    pub y_values: Vec<usize>,
}

impl Default for MatcherQualityConfig {
    fn default() -> Self {
        MatcherQualityConfig {
            dataset: InterproGoConfig::default(),
            y_values: vec![1, 2, 5],
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherQualityRow {
    /// The Y (candidates per attribute) setting.
    pub y: usize,
    /// Matcher name (`"metadata"` stands in for COMA++, `"mad"` for MAD).
    pub matcher: String,
    /// Precision (percentage).
    pub precision: f64,
    /// Recall (percentage).
    pub recall: f64,
    /// F-measure (percentage).
    pub f_measure: f64,
}

/// Full Table 1 result plus the raw alignments (reused by the learning
/// experiments of Figures 10–12).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MatcherQualityResult {
    /// One row per (Y, matcher) combination.
    pub rows: Vec<MatcherQualityRow>,
    /// All alignments proposed by the metadata matcher (pairwise, all pairs).
    pub metadata_alignments: Vec<AttributeAlignment>,
    /// All alignments proposed by MAD (one global propagation).
    pub mad_alignments: Vec<AttributeAlignment>,
}

/// Run the metadata matcher pairwise across every relation pair, keeping up
/// to `max_y` candidates per attribute.
pub fn metadata_alignments(catalog: &Catalog, max_y: usize) -> Vec<AttributeAlignment> {
    let matcher = MetadataMatcher::new();
    let relations: Vec<RelationId> = catalog.relations().iter().map(|r| r.id).collect();
    let mut all = Vec::new();
    for new_rel in &relations {
        let others: Vec<RelationId> = relations.iter().copied().filter(|r| r != new_rel).collect();
        all.extend(matcher.match_against(catalog, *new_rel, &others, max_y));
    }
    all
}

/// Run MAD once over the whole catalog, keeping up to `max_y` candidates per
/// attribute.
pub fn mad_alignments(catalog: &Catalog, max_y: usize) -> Vec<AttributeAlignment> {
    let matcher = MadMatcher::new();
    let result = matcher.propagate(catalog, &[]);
    result.top_alignments(catalog, max_y, 0.0)
}

/// Run the Table 1 experiment.
pub fn run_matcher_quality(config: &MatcherQualityConfig) -> MatcherQualityResult {
    let catalog = interpro_go_catalog(&config.dataset);
    let gold: HashSet<AttrPair> = interpro_go_gold().resolved_set(&catalog);
    let max_y = config.y_values.iter().copied().max().unwrap_or(5);

    let metadata = metadata_alignments(&catalog, max_y);
    let mad = mad_alignments(&catalog, max_y);

    let mut rows = Vec::new();
    for y in &config.y_values {
        for (name, alignments) in [("metadata", &metadata), ("mad", &mad)] {
            let (p, r, f) = precision_recall_alignments(alignments, &gold, *y, 0.0);
            rows.push(MatcherQualityRow {
                y: *y,
                matcher: name.to_string(),
                precision: p * 100.0,
                recall: r * 100.0,
                f_measure: f * 100.0,
            });
        }
    }
    MatcherQualityResult {
        rows,
        metadata_alignments: metadata,
        mad_alignments: mad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MatcherQualityConfig {
        MatcherQualityConfig {
            dataset: InterproGoConfig {
                rows_per_table: 80,
                seed: 42,
            },
            y_values: vec![1, 2],
        }
    }

    #[test]
    fn mad_reaches_full_recall_at_y2_and_beats_metadata() {
        let result = run_matcher_quality(&small_config());
        let get = |y: usize, m: &str| {
            result
                .rows
                .iter()
                .find(|r| r.y == y && r.matcher == m)
                .cloned()
                .unwrap()
        };
        // MAD recall dominates the metadata matcher's recall at both Y
        // settings (the paper's headline Table 1 shape).
        assert!(get(1, "mad").recall >= get(1, "metadata").recall);
        assert!(get(2, "mad").recall >= get(2, "metadata").recall);
        // MAD reaches 100% recall at Y = 2.
        assert!((get(2, "mad").recall - 100.0).abs() < 1e-9);
        // The metadata matcher cannot reach full recall (two gold pairs have
        // dissimilar names).
        assert!(get(2, "metadata").recall < 100.0);
        // Precision is imperfect for both (false positives exist).
        assert!(get(2, "mad").precision < 100.0);
        assert!(get(2, "metadata").precision < 100.0);
    }

    #[test]
    fn raw_alignment_lists_are_returned_for_reuse() {
        let result = run_matcher_quality(&small_config());
        assert!(!result.metadata_alignments.is_empty());
        assert!(!result.mad_alignments.is_empty());
        for a in result
            .metadata_alignments
            .iter()
            .chain(&result.mad_alignments)
        {
            assert!(a.confidence >= 0.0 && a.confidence <= 1.0);
        }
    }
}
