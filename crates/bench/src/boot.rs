//! Boot-time experiment: rebuilding the serving state from the dataset vs
//! restoring it from a persisted snapshot file.
//!
//! This is the experiment behind `BENCH_boot.json`: each corpus tier
//! (1× → 10× → 100× the GBCO federation, as in the scale experiment)
//! builds the full serving state from the dataset — catalog, search graph,
//! keyword index, shard set — then saves it with
//! [`GraphSnapshot::save`], loads it back with [`GraphSnapshot::load`] and
//! boots a second [`LiveServer`] from the loaded snapshot. The claim the
//! committed JSON pins is twofold: the loaded server answers the GBCO
//! trial workload **byte-identically** to the built one (`deterministic`),
//! and the load path is an order of magnitude faster than the rebuild at
//! the top tier (`speedup`), turning a multi-second boot into
//! milliseconds. The CI `boot-smoke` step runs the reduced configuration
//! and fails when the JSON is absent, malformed, nondeterministic or has
//! `load_ms >= build_ms`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_core::{GraphSnapshot, LiveServer, QConfig, QueryRequest};
use q_datasets::scaling::{expand_with_synthetic_sources_detailed, ScalingConfig};
use q_datasets::{gbco_catalog, gbco_trials, GbcoConfig};
use q_graph::SearchGraph;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootConfig {
    /// Calibrated GBCO seed corpus.
    pub gbco: GbcoConfig,
    /// Synthetic expansion knobs (rows per table, arity, vocabulary reuse).
    pub scaling: ScalingConfig,
    /// Additional synthetic sources per tier, smallest first (the default
    /// 18 / 180 / 1800 is 1× / 10× / 100× the 18-source GBCO federation).
    pub tiers: Vec<usize>,
    /// Shards the served snapshot is partitioned into.
    pub shards: usize,
    /// Worker threads fanning one miss's per-terminal Dijkstras.
    pub shard_workers: usize,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            gbco: GbcoConfig::default(),
            scaling: ScalingConfig {
                rows_per_table: 50,
                ..ScalingConfig::default()
            },
            tiers: vec![18, 180, 1800],
            shards: 4,
            shard_workers: 2,
        }
    }
}

impl BootConfig {
    /// Reduced configuration for the CI smoke run.
    pub fn smoke() -> Self {
        BootConfig {
            gbco: GbcoConfig {
                rows_per_table: 10,
                seed: 17,
            },
            scaling: ScalingConfig {
                rows_per_table: 12,
                ..ScalingConfig::default()
            },
            tiers: vec![6],
            shards: 3,
            shard_workers: 2,
        }
    }
}

/// Measurements of one corpus tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootTier {
    /// Synthetic sources added on top of the GBCO seed.
    pub additional_sources: usize,
    /// Total sources in the federation.
    pub total_sources: usize,
    /// Wall-clock to build the serving state from the dataset (catalog,
    /// synthetic expansion, search graph, keyword index, shard set).
    pub build: Duration,
    /// Wall-clock to persist the snapshot (encode + checksum + atomic
    /// write).
    pub save: Duration,
    /// Wall-clock to boot from disk: validate + decode the snapshot file
    /// and construct a serving [`LiveServer`] over it. Best of three
    /// back-to-back loads — the standard way to time an I/O-warm path on a
    /// shared host, where a single run can absorb tens of milliseconds of
    /// scheduler noise.
    pub load: Duration,
    /// Size of the snapshot file on disk.
    pub file_bytes: u64,
    /// Accounted bytes of the packed search structures (the `/metrics`
    /// gauge).
    pub snapshot_bytes: u64,
    /// `build / load` — how much faster booting from the snapshot is.
    pub speedup: f64,
}

/// Measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootResult {
    /// Per-tier measurements, smallest corpus first.
    pub tiers: Vec<BootTier>,
    /// Shards the snapshots were partitioned into.
    pub shards: usize,
    /// Per-miss Dijkstra fan-out width.
    pub shard_workers: usize,
    /// Every tier's loaded server answered the GBCO trial workload
    /// byte-for-byte like the built server it was saved from.
    pub deterministic: bool,
}

/// Build one tier's serving state from the dataset, timing the whole path.
fn build_tier(config: &BootConfig, additional: usize) -> (LiveServer, Duration, usize) {
    let start = Instant::now();
    let mut catalog = gbco_catalog(&config.gbco);
    let mut graph = SearchGraph::from_catalog(&catalog);
    // The expansion mutates the graph in place (schema elements plus the
    // synthetic association edges), so the built state carries everything
    // the snapshot must round-trip.
    expand_with_synthetic_sources_detailed(&mut catalog, &mut graph, additional, &config.scaling);
    let qconfig = QConfig {
        shards: config.shards,
        shard_workers: config.shard_workers,
        ..QConfig::default()
    };
    let total_sources = catalog.sources().len();
    let snapshot = GraphSnapshot::assemble(catalog, graph, qconfig.shards);
    let server = LiveServer::from_snapshot(snapshot, qconfig);
    (server, start.elapsed(), total_sources)
}

/// Replay the requests once, returning the rendered views (the
/// byte-identity fingerprint). Caches start cold in both servers, so the
/// passes compare like for like.
fn replay(server: &LiveServer, requests: &[QueryRequest]) -> Vec<String> {
    requests
        .iter()
        .map(|request| {
            let outcome = server.query(request).expect("boot query answers");
            format!("{:?}", outcome.view)
        })
        .collect()
}

fn scratch_path(tier: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("q-bench-boot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir.join(format!("tier-{tier}.qsnap"))
}

/// Run the boot experiment.
pub fn run_boot_experiment(config: &BootConfig) -> BootResult {
    let requests: Vec<QueryRequest> = gbco_trials()
        .iter()
        .map(|t| QueryRequest::new(t.keywords.iter().cloned()))
        .collect();

    let mut tiers = Vec::with_capacity(config.tiers.len());
    let mut deterministic = true;
    for &additional in &config.tiers {
        let (built, build, total_sources) = build_tier(config, additional);
        let built_renders = replay(&built, &requests);

        let path = scratch_path(additional);
        let save_start = Instant::now();
        let info = built
            .snapshot()
            .save(&path)
            .expect("boot snapshot persists");
        let save = save_start.elapsed();

        // Best of three loads (see [`BootTier::load`]); the last loaded
        // server is the one whose answers are compared against the built
        // server.
        let mut load = Duration::MAX;
        let mut loaded = None;
        for _ in 0..3 {
            let load_start = Instant::now();
            let (snapshot, _) = GraphSnapshot::load(&path).expect("boot snapshot loads");
            let server = LiveServer::from_snapshot(snapshot, *built.config());
            load = load.min(load_start.elapsed());
            loaded = Some(server);
        }
        let loaded = loaded.expect("at least one load ran");

        let loaded_renders = replay(&loaded, &requests);
        deterministic &= built_renders == loaded_renders;

        let _ = std::fs::remove_file(&path);
        tiers.push(BootTier {
            additional_sources: additional,
            total_sources,
            build,
            save,
            load,
            file_bytes: info.file_bytes,
            snapshot_bytes: built.snapshot().snapshot_bytes(),
            speedup: build.as_secs_f64() / load.as_secs_f64().max(1e-9),
        });
    }

    BootResult {
        tiers,
        shards: config.shards,
        shard_workers: config.shard_workers,
        deterministic,
    }
}

impl BootResult {
    /// Serialise to the `BENCH_boot.json` schema (hand-rolled: the vendored
    /// serde shim has no JSON backend). Keys are stable — the CI boot-smoke
    /// step asserts their presence and the `load_ms < build_ms` /
    /// `deterministic` contract.
    pub fn to_json(&self, config: &BootConfig) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let tiers: Vec<String> = self
            .tiers
            .iter()
            .map(|t| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"additional_sources\": {},\n",
                        "      \"total_sources\": {},\n",
                        "      \"build_ms\": {:.3},\n",
                        "      \"save_ms\": {:.3},\n",
                        "      \"load_ms\": {:.3},\n",
                        "      \"file_bytes\": {},\n",
                        "      \"snapshot_bytes\": {},\n",
                        "      \"speedup\": {:.1}\n",
                        "    }}"
                    ),
                    t.additional_sources,
                    t.total_sources,
                    ms(t.build),
                    ms(t.save),
                    ms(t.load),
                    t.file_bytes,
                    t.snapshot_bytes,
                    t.speedup,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"boot\",\n",
                "  \"workload\": \"gbco_trials\",\n",
                "  \"rows_per_table\": {},\n",
                "  \"shards\": {},\n",
                "  \"shard_workers\": {},\n",
                "  \"deterministic\": {},\n",
                "  \"tiers\": [\n{}\n  ]\n",
                "}}\n"
            ),
            config.scaling.rows_per_table,
            self.shards,
            self.shard_workers,
            self.deterministic,
            tiers.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_configuration_loads_faster_than_it_builds_and_stays_deterministic() {
        let config = BootConfig {
            gbco: GbcoConfig {
                rows_per_table: 8,
                seed: 17,
            },
            scaling: ScalingConfig {
                rows_per_table: 6,
                ..ScalingConfig::default()
            },
            tiers: vec![4],
            shards: 3,
            shard_workers: 2,
        };
        let result = run_boot_experiment(&config);
        assert!(result.deterministic, "loaded replays diverged");
        assert_eq!(result.tiers.len(), 1);
        let tier = &result.tiers[0];
        assert!(tier.file_bytes > 0);
        assert!(tier.snapshot_bytes > 0);
        assert!(
            tier.load < tier.build,
            "loading ({:?}) must beat rebuilding ({:?}) even at a tiny tier",
            tier.load,
            tier.build
        );
    }

    #[test]
    #[ignore = "profiling helper; run manually with --ignored --nocapture"]
    fn profile_load_breakdown() {
        let config = BootConfig::default();
        let (built, build, _) = build_tier(&config, 1800);
        println!("build {build:?}");
        let path = scratch_path(9999);
        let t = Instant::now();
        built.snapshot().save(&path).unwrap();
        println!("save {:?}", t.elapsed());
        let t = Instant::now();
        let bytes = std::fs::read(&path).unwrap();
        println!("fs::read {:?} ({} bytes)", t.elapsed(), bytes.len());
        let t = Instant::now();
        let c = q_snap::checksum64(&bytes);
        println!("checksum64(all) {:?} ({c:x})", t.elapsed());
        drop(bytes);
        for round in 0..3 {
            let t = Instant::now();
            let (snapshot, _) = GraphSnapshot::load(&path).unwrap();
            println!("GraphSnapshot::load[{round}] {:?}", t.elapsed());
            let t = Instant::now();
            let _server = LiveServer::from_snapshot(snapshot, *built.config());
            println!("from_snapshot[{round}] {:?}", t.elapsed());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_has_the_contracted_keys() {
        let config = BootConfig::smoke();
        let result = BootResult {
            tiers: vec![BootTier {
                additional_sources: 6,
                total_sources: 24,
                build: Duration::from_millis(320),
                save: Duration::from_millis(9),
                load: Duration::from_millis(4),
                file_bytes: 1 << 20,
                snapshot_bytes: 4096,
                speedup: 80.0,
            }],
            shards: 3,
            shard_workers: 2,
            deterministic: true,
        };
        let json = result.to_json(&config);
        for key in [
            "\"experiment\"",
            "\"workload\"",
            "\"shards\"",
            "\"shard_workers\"",
            "\"deterministic\"",
            "\"tiers\"",
            "\"additional_sources\"",
            "\"total_sources\"",
            "\"build_ms\"",
            "\"save_ms\"",
            "\"load_ms\"",
            "\"file_bytes\"",
            "\"snapshot_bytes\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }
}
