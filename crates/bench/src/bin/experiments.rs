//! Command-line experiment runner: regenerates every table and figure of the
//! paper's evaluation section, plus the post-paper throughput experiment.
//!
//! Usage: `cargo run --release -p q-bench --bin experiments [fig6|fig7|fig8|table1|fig10|fig11|fig12|table2|throughput|throughput-smoke|search|search-smoke|ingest|ingest-smoke|scale|scale-smoke|boot|boot-smoke|all]`
//!
//! `throughput` (and its reduced CI variant `throughput-smoke`) additionally
//! writes `BENCH_throughput.json` to the current directory; `search` /
//! `search-smoke` write `BENCH_search.json`; `ingest` / `ingest-smoke`
//! write `BENCH_ingest.json`; `scale` / `scale-smoke` write
//! `BENCH_scale.json`; `boot` / `boot-smoke` write `BENCH_boot.json`.

use q_bench::{
    run_aligner_experiment, run_boot_experiment, run_learning_experiment,
    run_live_ingest_experiment, run_matcher_quality, run_scale_experiment, run_scaling_experiment,
    run_search_latency_experiment, run_throughput_experiment, AlignerExperimentConfig, BootConfig,
    LearningConfig, LiveIngestConfig, MatcherQualityConfig, ScaleConfig, ScalingExperimentConfig,
    SearchLatencyConfig, ThroughputConfig,
};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "fig6" => fig6_7(true, false),
        "fig7" => fig6_7(false, true),
        "fig8" => fig8(),
        "table1" => table1(),
        "fig10" => learning(&["fig10"]),
        "fig11" => learning(&["fig11"]),
        "fig12" => learning(&["fig12"]),
        "table2" => learning(&["table2"]),
        "throughput" => throughput(&ThroughputConfig::default()),
        "throughput-smoke" => throughput(&ThroughputConfig::smoke()),
        "search" => search(&SearchLatencyConfig::default()),
        "search-smoke" => search(&SearchLatencyConfig::smoke()),
        "ingest" => ingest(&LiveIngestConfig::default()),
        "ingest-smoke" => ingest(&LiveIngestConfig::smoke()),
        "scale" => scale(&ScaleConfig::default()),
        "scale-smoke" => scale(&ScaleConfig::smoke()),
        "boot" => boot(&BootConfig::default()),
        "boot-smoke" => boot(&BootConfig::smoke()),
        "all" => {
            fig6_7(true, true);
            fig8();
            table1();
            learning(&["fig10", "fig11", "fig12", "table2"]);
            throughput(&ThroughputConfig::default());
            search(&SearchLatencyConfig::default());
            ingest(&LiveIngestConfig::default());
            scale(&ScaleConfig::default());
            boot(&BootConfig::default());
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "expected one of: fig6 fig7 fig8 table1 fig10 fig11 fig12 table2 \
                 throughput throughput-smoke search search-smoke ingest ingest-smoke \
                 scale scale-smoke boot boot-smoke all"
            );
            std::process::exit(2);
        }
    }
}

fn boot(config: &BootConfig) {
    let result = run_boot_experiment(config);
    println!("== Boot: rebuild from the dataset vs restore from a persisted snapshot ==");
    println!(
        "{} shards, {} miss workers",
        result.shards, result.shard_workers
    );
    println!("sources   build_ms    save_ms    load_ms   file_MiB   speedup");
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    for t in &result.tiers {
        println!(
            "{:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.2}  {:>7.1}x",
            t.total_sources,
            ms(t.build),
            ms(t.save),
            ms(t.load),
            t.file_bytes as f64 / (1024.0 * 1024.0),
            t.speedup,
        );
    }
    println!(
        "deterministic (loaded replays byte-identical): {}",
        result.deterministic
    );
    let json = result.to_json(config);
    let path = "BENCH_boot.json";
    std::fs::write(path, &json).expect("write BENCH_boot.json");
    println!("wrote {path}");
    println!();
    if !result.deterministic {
        eprintln!("FATAL: a loaded snapshot's answers diverged from the built server's");
        std::process::exit(1);
    }
    if let Some(slow) = result.tiers.iter().find(|t| t.load >= t.build) {
        eprintln!(
            "FATAL: loading ({:?}) did not beat rebuilding ({:?}) at the {}-source tier",
            slow.load, slow.build, slow.total_sources
        );
        std::process::exit(1);
    }
}

fn scale(config: &ScaleConfig) {
    let result = run_scale_experiment(config);
    println!("== Corpus scaling: latency, throughput and memory vs corpus size ==");
    println!(
        "{} shards, {} miss workers; peak RSS {:.1} MiB ({})",
        result.shards,
        result.shard_workers,
        result.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        result.rss_source
    );
    println!("sources      rows   build_ms  snap_MiB  boundary  cold_p99_ms  warm_p99_ms  cold_qps    warm_qps");
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    for t in &result.tiers {
        println!(
            "{:>7}  {:>8}  {:>9.1}  {:>8.2}  {:>8}  {:>11.3}  {:>11.3}  {:>8.1}  {:>10.1}",
            t.total_sources,
            t.total_rows,
            ms(t.build),
            t.snapshot_bytes as f64 / (1024.0 * 1024.0),
            t.boundary_edges,
            ms(t.cold_p99),
            ms(t.warm_p99),
            t.cold_qps,
            t.warm_qps
        );
    }
    println!(
        "deterministic (rebuilds + sharded-vs-unsharded): {}",
        result.deterministic
    );
    let json = result.to_json(config);
    let path = "BENCH_scale.json";
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}");
    println!();
    if !result.deterministic {
        eprintln!("FATAL: scaled replays diverged (rebuild or sharded-vs-unsharded mismatch)");
        std::process::exit(1);
    }
}

fn ingest(config: &LiveIngestConfig) {
    let result = run_live_ingest_experiment(config);
    println!("== Live ingestion: reads sustained while sources stream in ==");
    println!(
        "{} readers; {} sources at boot, {} streamed ({} snapshots published)",
        result.readers, result.initial_sources, result.streamed_sources, result.snapshots_published
    );
    println!("window                           qps");
    println!("idle (readers only)       {:>10.1}", result.idle_qps);
    println!(
        "live ingestion            {:>10.1}   ({:.2}x idle)",
        result.sustained_qps, result.sustained_ratio
    );
    println!(
        "stop-the-world baseline   {:>10.1}   (live is {:.2}x)",
        result.stop_world_qps, result.live_vs_stop_world
    );
    println!(
        "cache across publishes: {} kept byte-identical, {} repriced warm, {} dropped cold ({} parked for the lane)",
        result.cache_kept,
        result.revalidation_repriced,
        result.cache_dropped,
        result.cache_parked,
    );
    println!(
        "replayed {} sampled concurrent answers against their snapshots: deterministic = {}",
        result.replayed_observations, result.deterministic
    );
    let json = result.to_json(config);
    let path = "BENCH_ingest.json";
    std::fs::write(path, &json).expect("write BENCH_ingest.json");
    println!("wrote {path}");
    println!();
    if !result.deterministic {
        eprintln!("FATAL: a concurrent answer diverged from its snapshot's sequential answer");
        std::process::exit(1);
    }
}

fn search(config: &SearchLatencyConfig) {
    let result = run_search_latency_experiment(config);
    println!("== Search latency: cold miss vs warm hit vs post-feedback revalidation ==");
    println!(
        "workload: {} distinct GBCO queries per pass",
        result.queries
    );
    println!("pass                         p50_ms      p99_ms");
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    println!(
        "cold (all misses)        {:>10.3}  {:>10.3}",
        ms(result.cold.p50),
        ms(result.cold.p99)
    );
    println!(
        "warm (all hits)          {:>10.3}  {:>10.3}",
        ms(result.warm.p50),
        ms(result.warm.p99)
    );
    println!(
        "post-feedback            {:>10.3}  {:>10.3}",
        ms(result.post_feedback.p50),
        ms(result.post_feedback.p99)
    );
    println!(
        "post-feedback mix: {} revalidated, {} recomputed ({} features re-priced)",
        result.revalidated, result.post_misses, result.repriced_features
    );
    println!("deterministic across runs: {}", result.deterministic);
    let json = result.to_json(config);
    let path = "BENCH_search.json";
    std::fs::write(path, &json).expect("write BENCH_search.json");
    println!("wrote {path}");
    println!();
    if !result.deterministic {
        eprintln!("FATAL: search-latency passes diverged between runs");
        std::process::exit(1);
    }
}

fn throughput(config: &ThroughputConfig) {
    let result = run_throughput_experiment(config);
    println!("== Throughput: batched + cached query serving over the GBCO workload ==");
    println!(
        "workload: {} queries ({} distinct), {} workers",
        result.queries, result.distinct_queries, result.workers
    );
    println!("serving path                time_ms     speedup");
    println!(
        "sequential, no cache     {:>10.3}        1.00",
        result.sequential_cold.as_secs_f64() * 1e3
    );
    println!(
        "batched, cold cache      {:>10.3}   {:>9.2}",
        result.batched_cold.as_secs_f64() * 1e3,
        result.batch_speedup
    );
    println!(
        "batched, warm cache      {:>10.3}   {:>9.2}",
        result.warm_cache.as_secs_f64() * 1e3,
        result.warm_speedup
    );
    println!(
        "deterministic across worker counts: {}",
        result.deterministic
    );
    let json = result.to_json(config);
    let path = "BENCH_throughput.json";
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
    println!();
    if !result.deterministic {
        eprintln!("FATAL: batched execution diverged from the sequential baseline");
        std::process::exit(1);
    }
}

fn fig6_7(fig6: bool, fig7: bool) {
    let result = run_aligner_experiment(&AlignerExperimentConfig::default());
    if fig6 {
        println!("== Figure 6: aligner running time (avg per new-source introduction, metadata matcher) ==");
        println!("strategy              time_ms");
        println!(
            "Exhaustive            {:.3}",
            result.exhaustive.mean_elapsed.as_secs_f64() * 1e3
        );
        println!(
            "ViewBasedAligner      {:.3}",
            result.view_based.mean_elapsed.as_secs_f64() * 1e3
        );
        println!(
            "PreferentialAligner   {:.3}",
            result.preferential.mean_elapsed.as_secs_f64() * 1e3
        );
        println!(
            "(averaged over {} source introductions)",
            result.introductions
        );
        println!();
    }
    if fig7 {
        println!("== Figure 7: pairwise attribute comparisons per new-source introduction ==");
        println!("strategy              no_filter   value_overlap_filter");
        println!(
            "Exhaustive            {:>9}   {:>20}",
            result.exhaustive.mean_comparisons, result.exhaustive.mean_filtered_comparisons
        );
        println!(
            "ViewBasedAligner      {:>9}   {:>20}",
            result.view_based.mean_comparisons, result.view_based.mean_filtered_comparisons
        );
        println!(
            "PreferentialAligner   {:>9}   {:>20}",
            result.preferential.mean_comparisons, result.preferential.mean_filtered_comparisons
        );
        println!(
            "(averaged over {} source introductions)",
            result.introductions
        );
        println!();
    }
}

fn fig8() {
    let result = run_scaling_experiment(&ScalingExperimentConfig::default());
    println!("== Figure 8: pairwise column comparisons vs search graph size ==");
    println!("existing_sources   Exhaustive   ViewBasedAligner   PreferentialAligner");
    for p in &result.points {
        println!(
            "{:>16}   {:>10}   {:>16}   {:>19}",
            p.existing_sources, p.exhaustive, p.view_based, p.preferential
        );
    }
    println!();
}

fn table1() {
    let result = run_matcher_quality(&MatcherQualityConfig::default());
    println!("== Table 1: top-Y alignment quality vs the 8 gold edges (InterPro-GO) ==");
    println!("Y   system     precision   recall   f_measure");
    for row in &result.rows {
        let label = if row.matcher == "metadata" {
            "COMA++*"
        } else {
            "MAD"
        };
        println!(
            "{}   {:<8}   {:>9.2}   {:>6.2}   {:>9.2}",
            row.y, label, row.precision, row.recall, row.f_measure
        );
    }
    println!("(* metadata matcher standing in for COMA++; see DESIGN.md)");
    println!();
}

fn print_curve(name: &str, curve: &[q_core::PrPoint]) {
    println!("-- {name} (threshold, recall, precision) --");
    for p in curve {
        println!("{:.4}  {:.3}  {:.3}", p.threshold, p.recall, p.precision);
    }
}

fn learning(parts: &[&str]) {
    let result = run_learning_experiment(&LearningConfig::default());
    if parts.contains(&"fig10") {
        println!("== Figure 10: precision-recall, matchers vs Q (10 queries x 4 replays) ==");
        print_curve("COMA++* alone", &result.metadata_pr);
        print_curve("MAD alone", &result.mad_pr);
        print_curve("Q (learned, 10x4 feedback)", &result.q_pr_final);
        println!();
    }
    if parts.contains(&"fig11") {
        println!("== Figure 11: precision-recall for Q with increasing feedback ==");
        print_curve("Average(COMA++*, MAD) — no feedback", &result.baseline_pr);
        print_curve("Q (1 x 1)", &result.q_pr_after_1);
        print_curve("Q (10 x 1)", &result.q_pr_after_pass_1);
        print_curve("Q (10 x 2)", &result.q_pr_after_pass_2);
        print_curve("Q (10 x 4)", &result.q_pr_final);
        println!();
    }
    if parts.contains(&"fig12") {
        println!("== Figure 12: average gold vs non-gold edge cost per feedback step ==");
        println!("step   gold_avg_cost   non_gold_avg_cost");
        for (i, s) in result.edge_cost_trajectory.iter().enumerate() {
            println!(
                "{:>4}   {:>13.4}   {:>17.4}",
                i + 1,
                s.gold_mean,
                s.non_gold_mean
            );
        }
        println!();
    }
    if parts.contains(&"table2") {
        println!("== Table 2: feedback steps to first reach precision 1.0 at each recall level ==");
        println!("recall_level(%)   feedback_steps");
        for (level, step) in &result.steps_to_perfect_precision {
            match step {
                Some(s) => println!("{:>15.1}   {:>14}", level, s),
                None => println!("{:>15.1}   {:>14}", level, "not reached"),
            }
        }
        println!("(total feedback steps applied: {})", result.feedback_steps);
        println!();
    }
}
