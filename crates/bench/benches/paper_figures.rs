//! Criterion benches regenerating the paper's figures and tables
//! (Figures 6–8, Table 1, Figures 10–12 / Table 2) on reduced-size
//! configurations. Each bench group corresponds to one experiment; the
//! `experiments` binary prints the full-size paper-style numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use q_bench::{
    run_aligner_experiment, run_learning_experiment, run_matcher_quality, run_scaling_experiment,
    AlignerExperimentConfig, LearningConfig, MatcherQualityConfig, ScalingExperimentConfig,
};
use q_datasets::{GbcoConfig, InterproGoConfig};

fn small_gbco() -> GbcoConfig {
    GbcoConfig {
        rows_per_table: 15,
        seed: 17,
    }
}

fn small_interpro() -> InterproGoConfig {
    InterproGoConfig {
        rows_per_table: 60,
        seed: 42,
    }
}

fn fig6_7_aligner_cost(c: &mut Criterion) {
    let config = AlignerExperimentConfig {
        gbco: small_gbco(),
        max_trials: 4,
        ..AlignerExperimentConfig::default()
    };
    c.bench_function("fig6_7_aligner_cost", |b| {
        b.iter(|| run_aligner_experiment(&config))
    });
}

fn fig8_scaling(c: &mut Criterion) {
    let config = ScalingExperimentConfig {
        gbco: small_gbco(),
        graph_sizes: vec![18, 60],
        max_introductions: 8,
        ..ScalingExperimentConfig::default()
    };
    c.bench_function("fig8_scaling_comparisons", |b| {
        b.iter(|| run_scaling_experiment(&config))
    });
}

fn table1_matcher_quality(c: &mut Criterion) {
    let config = MatcherQualityConfig {
        dataset: small_interpro(),
        y_values: vec![1, 2, 5],
    };
    c.bench_function("table1_matcher_quality", |b| {
        b.iter(|| run_matcher_quality(&config))
    });
}

fn fig10_12_learning(c: &mut Criterion) {
    let config = LearningConfig {
        dataset: small_interpro(),
        passes: 1,
        ..LearningConfig::default()
    };
    let mut group = c.benchmark_group("fig10_12_learning");
    group.sample_size(10);
    group.bench_function("one_feedback_pass", |b| {
        b.iter(|| run_learning_experiment(&config))
    });
    group.finish();
}

criterion_group!(
    name = paper_figures;
    config = Criterion::default().sample_size(10);
    targets = fig6_7_aligner_cost, fig8_scaling, table1_matcher_quality, fig10_12_learning
);
criterion_main!(paper_figures);
