//! Ablation benches for the design choices called out in DESIGN.md:
//! the α-cost-neighbourhood pruning threshold, exact vs approximate Steiner
//! search, MAD iteration count, and the MAD degree-one pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use q_align::{AlignerConfig, ViewBasedAligner};
use q_core::{QConfig, QSystem};
use q_datasets::gbco::{gbco_catalog, gbco_trials, GbcoConfig};
use q_datasets::{interpro_go_catalog, InterproGoConfig};
use q_graph::keyword::MatchConfig;
use q_graph::{approx_top_k, exact_minimum_steiner, KeywordIndex, QueryGraph, SteinerConfig};
use q_matchers::{MadConfig, MadMatcher, MetadataMatcher};
use q_storage::{RelationSpec, SourceSpec};

fn small_gbco() -> GbcoConfig {
    GbcoConfig {
        rows_per_table: 15,
        seed: 17,
    }
}

/// Sweep the α threshold of ViewBasedAligner: larger neighbourhoods mean more
/// comparisons (Figure 5's intuition).
fn ablation_alpha_sweep(c: &mut Criterion) {
    let catalog = gbco_catalog(&small_gbco());
    let mut q = QSystem::new(catalog, QConfig::default());
    let trial = &gbco_trials()[0];
    let keywords: Vec<&str> = trial.keywords.iter().map(String::as_str).collect();
    let view_id = q.create_view(&keywords).unwrap();
    let view_nodes = q.view_nodes(view_id);
    let matcher = MetadataMatcher::new();
    // A small new source to align.
    let spec = SourceSpec::new("ablation_source").relation(
        RelationSpec::new("ablation_rel", &["gene_id", "score"]).row(["GENE000001", "5"]),
    );
    let mut catalog = q.catalog().clone();
    let source = spec.load_into(&mut catalog).unwrap();
    let graph = q.graph().clone();

    let mut group = c.benchmark_group("ablation_alpha_sweep");
    for alpha in [0.5_f64, 1.5, 3.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, alpha| {
            b.iter(|| {
                ViewBasedAligner::new(*alpha).align(
                    &catalog,
                    &graph,
                    &matcher,
                    source,
                    &view_nodes,
                    None,
                    &AlignerConfig::default(),
                )
            })
        });
    }
    group.finish();
}

/// Exact Dreyfus–Wagner vs the approximate top-k heuristic on the same query
/// graph.
fn ablation_steiner_exact_vs_approx(c: &mut Criterion) {
    let catalog = interpro_go_catalog(&InterproGoConfig {
        rows_per_table: 40,
        seed: 42,
    });
    let mut q = QSystem::new(catalog, QConfig::default());
    // Populate associations so the graph is connected.
    let metadata = MetadataMatcher::new();
    let relations: Vec<_> = q.catalog().relations().iter().map(|r| r.id).collect();
    let mut alignments = Vec::new();
    for r in &relations {
        let others: Vec<_> = relations.iter().copied().filter(|x| x != r).collect();
        alignments.extend(q_matchers::SchemaMatcher::match_against(
            &metadata,
            q.catalog(),
            *r,
            &others,
            2,
        ));
    }
    q.add_alignments(&alignments, "metadata");

    let index = KeywordIndex::build(q.catalog());
    let graph = q.graph().clone();
    let qg = QueryGraph::build(&graph, &index, &["term", "entry"], &MatchConfig::default());
    let terminals = qg.terminals();

    let mut group = c.benchmark_group("ablation_steiner");
    group.bench_function("approx_top5", |b| {
        b.iter(|| {
            approx_top_k(
                &qg,
                &terminals,
                &SteinerConfig {
                    k: 5,
                    ..SteinerConfig::default()
                },
            )
        })
    });
    group.bench_function("exact_dreyfus_wagner", |b| {
        b.iter(|| exact_minimum_steiner(&qg, &terminals))
    });
    group.finish();
}

/// MAD iteration count and degree-one pruning.
fn ablation_mad(c: &mut Criterion) {
    let catalog = interpro_go_catalog(&InterproGoConfig {
        rows_per_table: 60,
        seed: 42,
    });
    let mut group = c.benchmark_group("ablation_mad");
    group.sample_size(10);
    for iterations in [1usize, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("iterations", iterations),
            &iterations,
            |b, iterations| {
                let matcher = MadMatcher::with_config(MadConfig {
                    iterations: *iterations,
                    ..MadConfig::default()
                });
                b.iter(|| matcher.propagate(&catalog, &[]))
            },
        );
    }
    group.bench_function("no_degree_one_pruning", |b| {
        let matcher = MadMatcher::with_config(MadConfig {
            prune_degree_one: false,
            ..MadConfig::default()
        });
        b.iter(|| matcher.propagate(&catalog, &[]))
    });
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_alpha_sweep, ablation_steiner_exact_vs_approx, ablation_mad
);
criterion_main!(ablations);
