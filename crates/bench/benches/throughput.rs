//! Criterion bench for the batched, cached query-serving path: the GBCO
//! trial workload answered sequentially without a cache (the pre-CSR/cache
//! baseline), batched cold, and batched warm. Full-size numbers come from
//! `cargo run --release -p q-bench --bin experiments -- throughput`, which
//! also writes `BENCH_throughput.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use q_core::{BatchOptions, CachePolicy, QConfig, QSystem, QueryRequest};
use q_datasets::{gbco_catalog, gbco_trials, GbcoConfig};

fn small_gbco() -> GbcoConfig {
    GbcoConfig {
        rows_per_table: 15,
        seed: 17,
    }
}

fn workload(repeats: usize, policy: CachePolicy) -> Vec<QueryRequest> {
    let trials = gbco_trials();
    let mut out = Vec::new();
    for _ in 0..repeats {
        out.extend(
            trials
                .iter()
                .map(|t| QueryRequest::new(t.keywords.iter().cloned()).cache_policy(policy)),
        );
    }
    out
}

fn sequential_uncached(c: &mut Criterion) {
    let mut q = QSystem::new(gbco_catalog(&small_gbco()), QConfig::default());
    let requests = workload(2, CachePolicy::Bypass);
    c.bench_function("throughput/sequential_uncached", |b| {
        b.iter(|| {
            for request in &requests {
                q.query(request).expect("query answers");
            }
        })
    });
}

fn batched_cold(c: &mut Criterion) {
    let requests = workload(2, CachePolicy::Cached);
    c.bench_function("throughput/batched_cold_cache", |b| {
        b.iter(|| {
            // Fresh system per iteration so the cache really is cold.
            let mut q = QSystem::new(gbco_catalog(&small_gbco()), QConfig::default());
            q.query_batch(&requests, &BatchOptions::default())
        })
    });
}

fn batched_warm(c: &mut Criterion) {
    let mut q = QSystem::new(gbco_catalog(&small_gbco()), QConfig::default());
    let requests = workload(2, CachePolicy::Cached);
    q.query_batch(&requests, &BatchOptions::default());
    c.bench_function("throughput/batched_warm_cache", |b| {
        b.iter(|| q.query_batch(&requests, &BatchOptions::default()))
    });
}

criterion_group!(
    name = throughput;
    config = Criterion::default().sample_size(10);
    targets = sequential_uncached, batched_cold, batched_warm
);
criterion_main!(throughput);
