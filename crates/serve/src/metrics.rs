//! Serving metrics: lock-free counters, a log-bucketed latency histogram
//! for p50/p99, and a Prometheus text-format renderer.
//!
//! Everything is updated with relaxed atomics on the hot path; `/metrics`
//! scrapes read the same atomics and render the text contract the CI smoke
//! job checks (every `*_total` series is a monotone counter; `q_snapshot_id`
//! and `q_ingest_lag_seconds` are gauges; quantiles come from the
//! histogram's bucket upper bounds).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Histogram bucket count: bucket `i` holds observations in
/// `[2^i, 2^(i+1))` microseconds, so 32 buckets span 1 µs to ~2¹⁵ s.
const BUCKETS: usize = 32;

/// Serving metrics. One instance is shared by every worker thread.
pub struct Metrics {
    started: Instant,
    /// Queries answered (single and per-batch-entry), by cache disposition.
    pub cache_hits: AtomicU64,
    /// Cache entries served after surviving a publish re-pricing.
    pub cache_revalidated: AtomicU64,
    /// Fresh computations inserted into the cache.
    pub cache_misses: AtomicU64,
    /// Fresh computations that bypassed or refreshed the cache.
    pub cache_uncached: AtomicU64,
    /// Cache entries that survived publish re-pricing, summed over every
    /// ingest publish.
    pub cache_kept: AtomicU64,
    /// Cache entries dropped by publish re-pricing, summed over every
    /// ingest publish.
    pub cache_dropped: AtomicU64,
    /// Cache entries parked for background re-validation, summed over every
    /// ingest publish.
    pub cache_parked: AtomicU64,
    /// Parked entries awaiting re-validation (gauge; refreshed from the
    /// engine's lane counters at each `/metrics` scrape).
    pub revalidation_depth: AtomicU64,
    /// Parked entries the lane settled with a byte-identical recompute.
    pub revalidation_kept: AtomicU64,
    /// Parked entries the lane re-admitted with changed bytes.
    pub revalidation_repriced: AtomicU64,
    /// Parked entries the lane discarded (superseded or raced by a newer
    /// publish).
    pub revalidation_dropped: AtomicU64,
    /// Snapshots the background persistence lane has written to disk.
    /// Refreshed from the engine's persistence counters at each `/metrics`
    /// scrape (0 when persistence is off).
    pub snapshot_persist: AtomicU64,
    /// HTTP requests served, all endpoints.
    pub http_requests: AtomicU64,
    /// Requests answered with an error body.
    pub errors: AtomicU64,
    /// Sources ingested over `/ingest`.
    pub ingests: AtomicU64,
    /// Feedback publishes over `/feedback`.
    pub feedbacks: AtomicU64,
    /// Currently published snapshot id (gauge).
    pub snapshot_id: AtomicU64,
    /// Wall time of the most recent ingest publish, in microseconds — the
    /// "ingest lag": how far behind live a source is once its upload
    /// completes (gauge).
    pub ingest_lag_us: AtomicU64,
    /// Accounted bytes of the published snapshot's packed search structures
    /// (all shards plus the shared boundary section) (gauge).
    pub snapshot_bytes: AtomicU64,
    /// Accounted bytes per shard — updated wholesale at each publish, read
    /// only by `/metrics` scrapes, so a mutex (not the hot path) is fine.
    shard_bytes: Mutex<Vec<u64>>,
    /// Boot wall time in milliseconds (gauge; set once at start-up).
    boot_ms: AtomicU64,
    /// 1 when the engine booted from a persisted snapshot, 0 when it was
    /// rebuilt from the dataset (drives the `q_boot_mode` label).
    boot_from_snapshot: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
}

impl Metrics {
    /// Fresh metrics; `snapshot` is the boot snapshot id.
    pub fn new(snapshot: u64) -> Self {
        Metrics {
            started: Instant::now(),
            cache_hits: AtomicU64::new(0),
            cache_revalidated: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_uncached: AtomicU64::new(0),
            cache_kept: AtomicU64::new(0),
            cache_dropped: AtomicU64::new(0),
            cache_parked: AtomicU64::new(0),
            revalidation_depth: AtomicU64::new(0),
            revalidation_kept: AtomicU64::new(0),
            revalidation_repriced: AtomicU64::new(0),
            revalidation_dropped: AtomicU64::new(0),
            snapshot_persist: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            feedbacks: AtomicU64::new(0),
            snapshot_id: AtomicU64::new(snapshot),
            ingest_lag_us: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            shard_bytes: Mutex::new(Vec::new()),
            boot_ms: AtomicU64::new(0),
            boot_from_snapshot: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
        }
    }

    /// Record the published snapshot's memory accounting: total packed
    /// bytes and the per-shard breakdown. Called at boot and at every
    /// publish, never on the query hot path.
    pub fn set_snapshot_accounting(&self, total: u64, per_shard: Vec<u64>) {
        self.snapshot_bytes.store(total, Ordering::Relaxed);
        *self.shard_bytes.lock().expect("shard bytes lock") = per_shard;
    }

    /// Record how the engine booted: from a persisted snapshot or by
    /// rebuilding from the dataset, and how long either path took. Called
    /// once at start-up.
    pub fn set_boot(&self, from_snapshot: bool, wall: Duration) {
        self.boot_ms.store(
            wall.as_millis().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.boot_from_snapshot
            .store(u64::from(from_snapshot), Ordering::Relaxed);
    }

    /// The boot-mode label value (`"snapshot"` or `"rebuild"`).
    pub fn boot_mode(&self) -> &'static str {
        if self.boot_from_snapshot.load(Ordering::Relaxed) == 1 {
            "snapshot"
        } else {
            "rebuild"
        }
    }

    /// Boot wall time in milliseconds.
    pub fn boot_ms(&self) -> u64 {
        self.boot_ms.load(Ordering::Relaxed)
    }

    /// Record one answered query's service time.
    pub fn observe_query(&self, wall: Duration) {
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total queries answered.
    pub fn queries_total(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the histogram: the upper bound (in
    /// seconds) of the bucket containing the q-th observation.
    fn quantile(&self, q: f64) -> f64 {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.latency_buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 2f64.powi(i as i32 + 1) / 1e6;
            }
        }
        2f64.powi(BUCKETS as i32) / 1e6
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let queries = self.queries_total();

        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "q_queries_total",
            "Queries answered (single requests and batch entries).",
            queries,
        );
        counter(
            "q_http_requests_total",
            "HTTP requests served, all endpoints.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_hits_total",
            "Queries served from the shared answer cache.",
            self.cache_hits.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_revalidated_total",
            "Cache entries served after surviving a publish.",
            self.cache_revalidated.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_misses_total",
            "Fresh computations inserted into the cache.",
            self.cache_misses.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_uncached_total",
            "Fresh computations that bypassed or refreshed the cache.",
            self.cache_uncached.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_kept_total",
            "Cache entries that survived a publish re-pricing, summed over publishes.",
            self.cache_kept.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_dropped_total",
            "Cache entries dropped by a publish re-pricing, summed over publishes.",
            self.cache_dropped.load(Ordering::Relaxed),
        );
        counter(
            "q_cache_parked_total",
            "Cache entries parked for background re-validation, summed over publishes.",
            self.cache_parked.load(Ordering::Relaxed),
        );
        counter(
            "q_snapshot_persist_total",
            "Snapshots the background persistence lane wrote to disk.",
            self.snapshot_persist.load(Ordering::Relaxed),
        );
        counter(
            "q_errors_total",
            "Requests answered with an error body.",
            self.errors.load(Ordering::Relaxed),
        );
        counter(
            "q_ingests_total",
            "Sources ingested over /ingest.",
            self.ingests.load(Ordering::Relaxed),
        );
        counter(
            "q_feedback_total",
            "Feedback publishes over /feedback.",
            self.feedbacks.load(Ordering::Relaxed),
        );

        let _ = writeln!(out, "# HELP q_qps Average queries per second since boot.");
        let _ = writeln!(out, "# TYPE q_qps gauge");
        let _ = writeln!(out, "q_qps {}", queries as f64 / uptime);

        let _ = writeln!(
            out,
            "# HELP q_query_latency_seconds Query service time (histogram upper bounds)."
        );
        let _ = writeln!(out, "# TYPE q_query_latency_seconds summary");
        let _ = writeln!(
            out,
            "q_query_latency_seconds{{quantile=\"0.5\"}} {}",
            self.quantile(0.5)
        );
        let _ = writeln!(
            out,
            "q_query_latency_seconds{{quantile=\"0.99\"}} {}",
            self.quantile(0.99)
        );
        let _ = writeln!(
            out,
            "q_query_latency_seconds_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(out, "q_query_latency_seconds_count {queries}");

        let _ = writeln!(
            out,
            "# HELP q_snapshot_id Currently published graph snapshot (weight epoch)."
        );
        let _ = writeln!(out, "# TYPE q_snapshot_id gauge");
        let _ = writeln!(
            out,
            "q_snapshot_id {}",
            self.snapshot_id.load(Ordering::Relaxed)
        );

        let _ = writeln!(
            out,
            "# HELP q_revalidation_total Parked cache entries settled by the re-validation lane, by outcome."
        );
        let _ = writeln!(out, "# TYPE q_revalidation_total counter");
        for (outcome, value) in [
            ("kept", &self.revalidation_kept),
            ("repriced", &self.revalidation_repriced),
            ("dropped", &self.revalidation_dropped),
        ] {
            let _ = writeln!(
                out,
                "q_revalidation_total{{outcome=\"{outcome}\"}} {}",
                value.load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(
            out,
            "# HELP q_revalidation_lane_depth Parked cache entries awaiting background re-validation."
        );
        let _ = writeln!(out, "# TYPE q_revalidation_lane_depth gauge");
        let _ = writeln!(
            out,
            "q_revalidation_lane_depth {}",
            self.revalidation_depth.load(Ordering::Relaxed)
        );

        let _ = writeln!(
            out,
            "# HELP q_ingest_lag_seconds Wall time of the most recent ingest publish."
        );
        let _ = writeln!(out, "# TYPE q_ingest_lag_seconds gauge");
        let _ = writeln!(
            out,
            "q_ingest_lag_seconds {}",
            self.ingest_lag_us.load(Ordering::Relaxed) as f64 / 1e6
        );

        let _ = writeln!(
            out,
            "# HELP q_snapshot_bytes Accounted bytes of the published snapshot's packed search structures."
        );
        let _ = writeln!(out, "# TYPE q_snapshot_bytes gauge");
        let _ = writeln!(
            out,
            "q_snapshot_bytes {}",
            self.snapshot_bytes.load(Ordering::Relaxed)
        );

        let _ = writeln!(
            out,
            "# HELP q_shard_bytes Accounted bytes of one shard's keyword postings and interior sub-CSR."
        );
        let _ = writeln!(out, "# TYPE q_shard_bytes gauge");
        for (shard, bytes) in self
            .shard_bytes
            .lock()
            .expect("shard bytes lock")
            .iter()
            .enumerate()
        {
            let _ = writeln!(out, "q_shard_bytes{{shard=\"{shard}\"}} {bytes}");
        }

        let _ = writeln!(
            out,
            "# HELP q_boot_ms Wall time of the boot path (snapshot load or rebuild), in milliseconds."
        );
        let _ = writeln!(out, "# TYPE q_boot_ms gauge");
        let _ = writeln!(out, "q_boot_ms {}", self.boot_ms());

        let _ = writeln!(
            out,
            "# HELP q_boot_mode How the serving engine was constructed at boot."
        );
        let _ = writeln!(out, "# TYPE q_boot_mode gauge");
        let _ = writeln!(out, "q_boot_mode{{mode=\"{}\"}} 1", self.boot_mode());

        let _ = writeln!(
            out,
            "# HELP q_uptime_seconds Seconds since the server booted."
        );
        let _ = writeln!(out, "# TYPE q_uptime_seconds gauge");
        let _ = writeln!(out, "q_uptime_seconds {uptime}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_the_histogram() {
        let m = Metrics::new(0);
        assert_eq!(m.quantile(0.5), 0.0, "empty histogram reports 0");
        // 99 fast queries (~100us) and one slow (~50ms).
        for _ in 0..99 {
            m.observe_query(Duration::from_micros(100));
        }
        m.observe_query(Duration::from_millis(50));
        let p50 = m.quantile(0.5);
        let p99 = m.quantile(0.99);
        assert!((100e-6..1e-3).contains(&p50), "p50 = {p50}");
        assert!(p50 <= p99);
        assert!(p99 < 50e-3, "p99 excludes the single outlier: {p99}");
        assert!(m.quantile(1.0) >= 50e-3);
        assert_eq!(m.queries_total(), 100);
    }

    #[test]
    fn render_exposes_the_contract_series() {
        let m = Metrics::new(7);
        m.observe_query(Duration::from_micros(250));
        m.http_requests.fetch_add(3, Ordering::Relaxed);
        m.ingest_lag_us.store(1_500_000, Ordering::Relaxed);
        m.set_snapshot_accounting(4096, vec![2048, 1024, 512]);
        m.set_boot(true, Duration::from_millis(42));
        m.cache_kept.fetch_add(5, Ordering::Relaxed);
        m.cache_dropped.fetch_add(2, Ordering::Relaxed);
        m.cache_parked.fetch_add(4, Ordering::Relaxed);
        m.revalidation_depth.store(1, Ordering::Relaxed);
        m.revalidation_kept.store(2, Ordering::Relaxed);
        m.revalidation_repriced.store(1, Ordering::Relaxed);
        m.snapshot_persist.store(3, Ordering::Relaxed);
        let text = m.render();
        for series in [
            "q_queries_total ",
            "q_http_requests_total ",
            "q_cache_hits_total ",
            "q_cache_revalidated_total ",
            "q_cache_misses_total ",
            "q_cache_kept_total 5",
            "q_cache_dropped_total 2",
            "q_cache_parked_total 4",
            "q_revalidation_total{outcome=\"kept\"} 2",
            "q_revalidation_total{outcome=\"repriced\"} 1",
            "q_revalidation_total{outcome=\"dropped\"} 0",
            "q_revalidation_lane_depth 1",
            "q_snapshot_persist_total 3",
            "q_errors_total ",
            "q_ingests_total ",
            "q_qps ",
            "q_query_latency_seconds{quantile=\"0.5\"} ",
            "q_query_latency_seconds{quantile=\"0.99\"} ",
            "q_snapshot_id 7",
            "q_ingest_lag_seconds 1.5",
            "q_snapshot_bytes 4096",
            "q_shard_bytes{shard=\"0\"} 2048",
            "q_shard_bytes{shard=\"1\"} 1024",
            "q_shard_bytes{shard=\"2\"} 512",
            "q_boot_ms 42",
            "q_boot_mode{mode=\"snapshot\"} 1",
            "q_uptime_seconds ",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
        // Every series carries HELP and TYPE lines.
        assert_eq!(
            text.matches("# HELP").count(),
            text.matches("# TYPE").count()
        );
    }
}
