//! A minimal, deterministic JSON layer for the wire protocol.
//!
//! The workspace's vendored serde shim is API-only (no JSON backend), so the
//! network layer carries its own encoder and parser. Both are deliberately
//! small and strict:
//!
//! * **Deterministic encoding** — objects preserve insertion order (they are
//!   association lists, never maps), numbers use Rust's shortest round-trip
//!   `Display`, and strings escape exactly the mandatory set. Encoding the
//!   same [`Json`] value twice yields identical bytes, which is what the
//!   byte-replay contract of the serving layer is built on.
//! * **Strict parsing** — the parser rejects trailing garbage, caps nesting
//!   depth, and distinguishes integers from floats (a token with `.`, `e`
//!   or `E` parses as [`Json::Float`], anything else as [`Json::Int`]), so
//!   `encode(parse(bytes)) == bytes` for every value this module encodes.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Deep enough for any wire
/// message (the deepest is ~6 levels), shallow enough that a malicious
/// `[[[[…]]]]` body cannot exhaust the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects are insertion-ordered association lists:
/// the wire layer controls field order, and duplicate keys are a parse
/// error.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number token without `.`/`e`/`E`.
    Int(i64),
    /// A number token with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from (key, value) pairs, preserving order.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Look up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Encode to the deterministic byte representation.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => write_float(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Floats encode through Rust's `Display`, which emits the shortest string
/// that parses back to the identical bits. An integral float renders with a
/// trailing `.0` so the token stays a [`Json::Float`] on re-parse; the
/// non-finite values (unrepresentable in JSON numbers) become marker
/// strings the wire layer's float decoder understands.
fn write_float(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("\"nan\"");
    } else if x == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if x == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else if x == x.trunc() {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a body failed to parse. The wire layer maps every variant to the
/// `bad_json` error code; the message pinpoints the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Json, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.input[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the body was validated as
                    // UTF-8 before parsing).
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is on the `u`.
        let hex = |p: &Self, start: usize| -> Result<u32, ParseError> {
            let bytes = p
                .input
                .get(start..start + 4)
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let s = std::str::from_utf8(bytes).map_err(|_| p.err("invalid \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))
        };
        let first = hex(self, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require the paired low surrogate.
            if self.input.get(self.pos) != Some(&b'\\')
                || self.input.get(self.pos + 1) != Some(&b'u')
            {
                return Err(self.err("unpaired surrogate"));
            }
            let second = hex(self, self.pos + 2)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 6;
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("unpaired surrogate"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("number tokens are ASCII");
        if is_float {
            match text.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(Json::Float(x)),
                _ => Err(self.err("invalid number")),
            }
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        let bytes = value.encode();
        let back = parse(bytes.as_bytes()).expect("encoded JSON parses");
        assert_eq!(&back, value, "round trip diverged for {bytes}");
        assert_eq!(back.encode(), bytes, "re-encode diverged for {bytes}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(0.5),
            Json::Float(-1.25e-7),
            Json::Float(3.0),
            Json::Float(1e16),
            Json::Float(1e300),
            Json::Float(f64::MIN_POSITIVE),
            Json::Str(String::new()),
            Json::Str("plasma \"membrane\"\n\t\\ \u{1}".into()),
            Json::Str("ünïcode 🧬".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn containers_round_trip_in_order() {
        let v = Json::object([
            ("v", Json::Int(1)),
            ("items", Json::Array(vec![Json::Null, Json::Bool(false)])),
            ("nested", Json::object([("x", Json::Float(1.5))])),
        ]);
        round_trip(&v);
        assert_eq!(
            v.encode(),
            r#"{"v":1,"items":[null,false],"nested":{"x":1.5}}"#
        );
        assert_eq!(v.get("v"), Some(&Json::Int(1)));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integral_floats_stay_floats() {
        // `3.0` must not collapse into the integer token `3`.
        let v = Json::Float(3.0);
        assert_eq!(v.encode(), "3.0");
        round_trip(&v);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse(b" { \"a\" : [ 1 , 2.5 ] , \"b\" : \"\\u0041\\ud83e\\uddec\" } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![Json::Int(1), Json::Float(2.5)]))
        );
        assert_eq!(v.get("b"), Some(&Json::Str("A🧬".into())));
    }

    #[test]
    fn malformed_documents_error_without_panicking() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"\"unterminated",
            b"{\"a\":1,\"a\":2}",
            b"nul",
            b"1 2",
            b"{\"a\"}",
            b"[1e999]",
            b"99999999999999999999",
            b"\"\\ud800\"",
            b"\x01",
            b"",
        ] {
            assert!(
                parse(bad).is_err(),
                "{:?} must fail",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(deep.as_bytes()).is_err());
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(parse(ok.as_bytes()).is_ok());
    }
}
