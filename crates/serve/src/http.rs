//! A minimal, defensive HTTP/1.1 implementation over `std::net`.
//!
//! Scope: exactly what the serving layer needs — request-line + headers +
//! `Content-Length` bodies, keep-alive, and fixed limits so a malicious or
//! broken peer cannot hang a worker or exhaust memory:
//!
//! * header block capped at [`MAX_HEAD_BYTES`], body at [`MAX_BODY_BYTES`];
//! * every socket read runs under the caller-provided timeout, so a
//!   half-open connection times out instead of pinning a pool worker;
//! * chunked transfer encoding and HTTP/2 upgrades are rejected cleanly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (an ingest payload dominates; 8 MiB is
/// generous for the GBCO-scale sources this reproduction serves).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercased method token.
    pub method: String,
    /// Request path (query strings are not used by this protocol and are
    /// kept verbatim).
    pub path: String,
    /// Lowercased header names with verbatim values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to keep-alive unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// The socket read timed out or failed.
    Io(std::io::Error),
    /// The bytes were not a parseable HTTP/1.1 request. The connection
    /// must close (framing is lost); the status suggests what to say first.
    Malformed {
        /// Status to respond with before closing (400 or 413).
        status: u16,
        /// Human-readable reason.
        reason: String,
    },
}

impl HttpError {
    fn malformed(status: u16, reason: impl Into<String>) -> Self {
        HttpError::Malformed {
            status,
            reason: reason.into(),
        }
    }
}

/// Read one request from the stream. `timeout` bounds each socket read;
/// `Ok(None)`-like clean closes surface as [`HttpError::Closed`].
pub fn read_request(stream: &mut TcpStream, timeout: Duration) -> Result<HttpRequest, HttpError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(HttpError::Io)?;

    // Read up to the end of the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::malformed(431, "header block too large"));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(|e| {
            if buf.is_empty()
                && matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                )
            {
                HttpError::Closed
            } else {
                HttpError::Io(e)
            }
        })?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::malformed(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::malformed(400, "header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_ascii_uppercase(), p.to_string(), v)
        }
        _ => return Err(HttpError::malformed(400, "malformed request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::malformed(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::malformed(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = HttpRequest {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::malformed(
                400,
                "chunked bodies are not supported",
            ));
        }
    }

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::malformed(400, "invalid Content-Length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::malformed(413, "request body too large"));
    }

    // The body: whatever followed the head in the buffer, then the rest
    // from the socket.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes would desynchronise framing; reject.
        return Err(HttpError::malformed(
            400,
            "request pipelining is not supported",
        ));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::malformed(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    request.body = body;
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Write one response. Always sends `Content-Length` (no chunking), so the
/// connection can stay open when `keep_alive`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Run `client` against a socket pair and parse one request server-side.
    fn exchange(client: impl FnOnce(&mut TcpStream) + Send) -> Result<HttpRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connects");
                client(&mut stream);
                // Keep the write half open briefly so the server reads it all.
                std::thread::sleep(Duration::from_millis(20));
            });
            let (mut stream, _) = listener.accept().expect("accepts");
            read_request(&mut stream, Duration::from_millis(900))
        })
    }

    #[test]
    fn parses_a_request_with_body_and_headers() {
        let request = exchange(|s| {
            s.write_all(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"v\":1,...}")
                .unwrap();
        })
        .expect("parses");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/query");
        assert_eq!(request.header("content-type"), Some("application/json"));
        assert_eq!(request.header("Content-Type"), Some("application/json"));
        assert_eq!(request.body, b"{\"v\":1,...}");
        assert!(request.keep_alive());
    }

    #[test]
    fn split_writes_reassemble() {
        let request = exchange(|s| {
            s.write_all(b"GET /healthz HT").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(10));
            s.write_all(b"TP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        })
        .expect("parses");
        assert_eq!(request.method, "GET");
        assert!(!request.keep_alive());
    }

    #[test]
    fn malformed_requests_are_rejected_not_hung() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"NOT A REQUEST\r\n\r\n", 400),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/2\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: oops\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
        ];
        for (bytes, expected) in cases {
            match exchange(move |s| {
                s.write_all(bytes).unwrap();
            }) {
                Err(HttpError::Malformed { status, .. }) => assert_eq!(status, expected),
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match exchange(move |s| {
            s.write_all(head.as_bytes()).unwrap();
        }) {
            Err(HttpError::Malformed { status, .. }) => assert_eq!(status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn truncated_bodies_time_out_instead_of_hanging() {
        let start = std::time::Instant::now();
        let result = exchange(|s| {
            // Claims 10 bytes, sends 3, keeps the socket open.
            s.write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap();
            std::thread::sleep(Duration::from_millis(1200));
        });
        assert!(matches!(result, Err(HttpError::Io(_))), "got {result:?}");
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn clean_close_reports_closed() {
        let result = exchange(|_s| { /* connect and immediately close */ });
        assert!(matches!(result, Err(HttpError::Closed)), "got {result:?}");
    }
}
