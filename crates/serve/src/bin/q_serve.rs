//! `q-serve`: boot a [`LiveServer`] over the GBCO dataset and serve the
//! versioned JSON wire API over HTTP.
//!
//! ```text
//! q-serve [--addr 127.0.0.1:8080] [--threads 8] [--gbco-rows 40]
//!         [--gbco-seed 7] [--initial-sources N] [--port-file PATH]
//!         [--snapshot-dir DIR] [--snapshot-keep N]
//! ```
//!
//! `--initial-sources N` loads only the first N GBCO sources at boot; the
//! rest can stream in later over `POST /ingest` (the CI smoke job uses
//! this to exercise live ingestion). `--port-file` writes the bound
//! `host:port` to a file once listening — the reliable way for a harness
//! to discover an ephemeral (`:0`) port.
//!
//! `--snapshot-dir DIR` turns on the persistent snapshot store: at boot
//! the newest `snap-<id>.qsnap` in DIR is loaded and served directly
//! (skipping graph construction entirely); if the directory is empty or
//! the file fails validation, the server logs why and falls back to a
//! full rebuild — a corrupt snapshot never takes the server down. Every
//! published snapshot is then written back to DIR by a background lane,
//! keeping the newest `--snapshot-keep` files (default 2).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use q_core::{latest_snapshot_path, GraphSnapshot, LiveServer, QConfig};
use q_datasets::{gbco_source_specs_with_fks, GbcoConfig};
use q_matchers::MetadataMatcher;
use q_serve::{BootMode, BootStats, QServe, ServeOptions};

struct Args {
    addr: String,
    threads: usize,
    gbco: GbcoConfig,
    initial_sources: Option<usize>,
    port_file: Option<String>,
    snapshot_dir: Option<PathBuf>,
    snapshot_keep: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        threads: 8,
        gbco: GbcoConfig::default(),
        initial_sources: None,
        port_file: None,
        snapshot_dir: None,
        snapshot_keep: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
            }
            "--gbco-rows" => {
                args.gbco.rows_per_table = value("--gbco-rows")?
                    .parse()
                    .map_err(|_| "--gbco-rows must be a positive integer".to_string())?
            }
            "--gbco-seed" => {
                args.gbco.seed = value("--gbco-seed")?
                    .parse()
                    .map_err(|_| "--gbco-seed must be an integer".to_string())?
            }
            "--initial-sources" => {
                args.initial_sources = Some(
                    value("--initial-sources")?
                        .parse()
                        .map_err(|_| "--initial-sources must be a positive integer".to_string())?,
                )
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir")?)),
            "--snapshot-keep" => {
                args.snapshot_keep = value("--snapshot-keep")?
                    .parse()
                    .map_err(|_| "--snapshot-keep must be a positive integer".to_string())?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: q-serve [--addr HOST:PORT] [--threads N] [--gbco-rows N] \
                     [--gbco-seed N] [--initial-sources N] [--port-file PATH] \
                     [--snapshot-dir DIR] [--snapshot-keep N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Try the snapshot boot path: newest file in `dir`, validated load,
/// serve-as-is. Any failure is reported and answered with `None` — the
/// caller rebuilds; a missing or corrupt snapshot must never take the
/// server down.
fn boot_from_snapshot(dir: &std::path::Path) -> Option<LiveServer> {
    let path = latest_snapshot_path(dir)?;
    match GraphSnapshot::load(&path) {
        Ok((snapshot, info)) => {
            println!(
                "q-serve booting from snapshot {} ({} bytes, id {})",
                path.display(),
                info.file_bytes,
                snapshot.id(),
            );
            Some(LiveServer::from_snapshot(snapshot, QConfig::default()))
        }
        Err(err) => {
            eprintln!(
                "snapshot {} failed validation ({err}); falling back to a full rebuild",
                path.display()
            );
            None
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let boot_start = Instant::now();
    let specs = gbco_source_specs_with_fks(&args.gbco);
    let initial = args
        .initial_sources
        .unwrap_or(specs.len())
        .clamp(1, specs.len());

    let restored = args.snapshot_dir.as_deref().and_then(boot_from_snapshot);
    let boot_mode = if restored.is_some() {
        BootMode::Snapshot
    } else {
        BootMode::Rebuild
    };
    let mut engine = match restored {
        Some(engine) => engine,
        None => {
            let catalog = match q_storage::loader::load_catalog(&specs[..initial]) {
                Ok(catalog) => catalog,
                Err(err) => {
                    eprintln!("failed to load the GBCO catalog: {err}");
                    return ExitCode::FAILURE;
                }
            };
            LiveServer::new(catalog, QConfig::default())
        }
    };
    engine.add_matcher(Box::new(MetadataMatcher::new()));
    if let Some(dir) = &args.snapshot_dir {
        if let Err(err) = engine.enable_persistence(dir.clone(), args.snapshot_keep) {
            eprintln!(
                "failed to enable snapshot persistence in {}: {err}",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    }
    let boot = BootStats {
        mode: boot_mode,
        wall: boot_start.elapsed(),
    };

    let server = match QServe::start(
        engine,
        &args.addr,
        ServeOptions {
            threads: args.threads,
            boot,
            ..ServeOptions::default()
        },
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    match boot.mode {
        BootMode::Snapshot => println!(
            "q-serve listening on {} (snapshot boot in {} ms, snapshot {})",
            server.addr(),
            boot.wall.as_millis(),
            server.engine().snapshot().id(),
        ),
        BootMode::Rebuild => println!(
            "q-serve listening on {} ({} of {} GBCO sources loaded in {} ms, snapshot {})",
            server.addr(),
            initial,
            specs.len(),
            boot.wall.as_millis(),
            server.engine().snapshot().id(),
        ),
    }
    if let Some(path) = &args.port_file {
        if let Err(err) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("failed to write port file {path}: {err}");
            server.shutdown();
            server.join();
            return ExitCode::FAILURE;
        }
    }

    // Serve until a graceful POST /shutdown. Dropping the engine afterwards
    // flushes any still-deposited snapshot to disk before the process exits.
    server.join();
    println!("q-serve stopped");
    ExitCode::SUCCESS
}
