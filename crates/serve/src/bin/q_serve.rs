//! `q-serve`: boot a [`LiveServer`] over the GBCO dataset and serve the
//! versioned JSON wire API over HTTP.
//!
//! ```text
//! q-serve [--addr 127.0.0.1:8080] [--threads 8] [--gbco-rows 40]
//!         [--gbco-seed 7] [--initial-sources N] [--port-file PATH]
//! ```
//!
//! `--initial-sources N` loads only the first N GBCO sources at boot; the
//! rest can stream in later over `POST /ingest` (the CI smoke job uses
//! this to exercise live ingestion). `--port-file` writes the bound
//! `host:port` to a file once listening — the reliable way for a harness
//! to discover an ephemeral (`:0`) port.

use std::process::ExitCode;

use q_core::{LiveServer, QConfig};
use q_datasets::{gbco_source_specs_with_fks, GbcoConfig};
use q_matchers::MetadataMatcher;
use q_serve::{QServe, ServeOptions};

struct Args {
    addr: String,
    threads: usize,
    gbco: GbcoConfig,
    initial_sources: Option<usize>,
    port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        threads: 8,
        gbco: GbcoConfig::default(),
        initial_sources: None,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
            }
            "--gbco-rows" => {
                args.gbco.rows_per_table = value("--gbco-rows")?
                    .parse()
                    .map_err(|_| "--gbco-rows must be a positive integer".to_string())?
            }
            "--gbco-seed" => {
                args.gbco.seed = value("--gbco-seed")?
                    .parse()
                    .map_err(|_| "--gbco-seed must be an integer".to_string())?
            }
            "--initial-sources" => {
                args.initial_sources = Some(
                    value("--initial-sources")?
                        .parse()
                        .map_err(|_| "--initial-sources must be a positive integer".to_string())?,
                )
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: q-serve [--addr HOST:PORT] [--threads N] [--gbco-rows N] \
                     [--gbco-seed N] [--initial-sources N] [--port-file PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let specs = gbco_source_specs_with_fks(&args.gbco);
    let initial = args
        .initial_sources
        .unwrap_or(specs.len())
        .clamp(1, specs.len());
    let catalog = match q_storage::loader::load_catalog(&specs[..initial]) {
        Ok(catalog) => catalog,
        Err(err) => {
            eprintln!("failed to load the GBCO catalog: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut engine = LiveServer::new(catalog, QConfig::default());
    engine.add_matcher(Box::new(MetadataMatcher::new()));

    let server = match QServe::start(
        engine,
        &args.addr,
        ServeOptions {
            threads: args.threads,
            ..ServeOptions::default()
        },
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    println!(
        "q-serve listening on {} ({} of {} GBCO sources loaded, snapshot {})",
        server.addr(),
        initial,
        specs.len(),
        server.engine().snapshot().id(),
    );
    if let Some(path) = &args.port_file {
        if let Err(err) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("failed to write port file {path}: {err}");
            server.shutdown();
            server.join();
            return ExitCode::FAILURE;
        }
    }

    // Serve until a graceful POST /shutdown.
    server.join();
    println!("q-serve stopped");
    ExitCode::SUCCESS
}
