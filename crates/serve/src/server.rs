//! The HTTP front end: a fixed worker pool over a [`LiveServer`].
//!
//! # Architecture
//!
//! One acceptor thread blocks on [`TcpListener::accept`] and hands each
//! connection to a bounded pool of worker threads through an `mpsc`
//! channel. A worker owns a connection for its whole keep-alive session
//! (several requests, then close); clients beyond the pool size queue in
//! the kernel accept backlog until a worker frees up, so hundreds of
//! concurrent connections are served by a handful of threads. An idle
//! keep-alive read times out after [`ServeOptions::keep_alive_timeout`] so
//! a silent peer cannot pin a worker.
//!
//! # Shutdown
//!
//! `POST /shutdown` (or [`QServe::shutdown`]) flips an atomic flag and
//! wakes the acceptor with a self-connection; the acceptor drops the
//! channel sender, the workers drain their queue and exit, and
//! [`QServe::join`] reaps every thread. In-flight requests complete.
//!
//! # Replay contract
//!
//! Every response names the snapshot it was computed against, and the
//! server keeps the log of every published snapshot ([`QServe::snapshots`],
//! boot snapshot included). For any query response,
//! re-encoding `snapshot.answer(config, request)` with
//! [`wire::encode_result`] reproduces the
//! response's `"result"` bytes exactly — the soak tests hold the server to
//! this byte-for-byte.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use q_core::{CacheStatus, GraphSnapshot, LiveServer, QError, QueryOutcome};

use crate::http::{read_request, write_response, HttpError, HttpRequest};
use crate::metrics::Metrics;
use crate::wire;
use crate::wire::WireError;

/// How the serving engine was constructed at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootMode {
    /// Built from the dataset: catalog load, graph construction, keyword
    /// indexing and sharding all ran at boot.
    #[default]
    Rebuild,
    /// Restored from a persisted snapshot file — none of the build
    /// pipeline ran.
    Snapshot,
}

impl BootMode {
    /// The wire/metrics label value (`"snapshot"` or `"rebuild"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BootMode::Rebuild => "rebuild",
            BootMode::Snapshot => "snapshot",
        }
    }
}

/// How the engine booted and how long it took — reported on `/healthz` and
/// `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BootStats {
    /// Snapshot restore or full rebuild.
    pub mode: BootMode,
    /// Wall time of whichever boot path ran.
    pub wall: Duration,
}

/// Tuning knobs for [`QServe::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub threads: usize,
    /// How long a worker waits for the next request on an idle keep-alive
    /// connection before closing it.
    pub keep_alive_timeout: Duration,
    /// How the engine handed to [`QServe::start`] was booted. Defaults to
    /// a zero-duration rebuild for callers that construct the engine
    /// inline (tests, embedded use).
    pub boot: BootStats,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 8,
            keep_alive_timeout: Duration::from_secs(5),
            boot: BootStats::default(),
        }
    }
}

struct Shared {
    engine: LiveServer,
    metrics: Metrics,
    /// Every snapshot this server ever published, in publish order (boot
    /// snapshot first). Grows by one per ingest/feedback; the replay tests
    /// resolve response-named snapshot ids against this log.
    published: Mutex<Vec<Arc<GraphSnapshot>>>,
    shutdown: AtomicBool,
    keep_alive_timeout: Duration,
}

/// A running HTTP server. Dropping the handle does NOT stop the server;
/// call [`shutdown`](Self::shutdown) (or hit `POST /shutdown`) and then
/// [`join`](Self::join).
pub struct QServe {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl QServe {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `engine`.
    pub fn start(engine: LiveServer, addr: &str, options: ServeOptions) -> std::io::Result<QServe> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let boot = engine.snapshot();
        let metrics = Metrics::new(boot.id());
        metrics.set_snapshot_accounting(boot.snapshot_bytes(), boot.shard_bytes());
        metrics.set_boot(options.boot.mode == BootMode::Snapshot, options.boot.wall);
        let shared = Arc::new(Shared {
            metrics,
            published: Mutex::new(vec![boot]),
            engine,
            shutdown: AtomicBool::new(false),
            keep_alive_timeout: options.keep_alive_timeout,
        });

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..options.threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the dequeue.
                    let next = rx.lock().expect("worker queue lock poisoned").recv();
                    match next {
                        Ok(stream) => handle_connection(&shared, stream),
                        Err(_) => return, // acceptor dropped the sender: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                // `tx` lives only in this thread: when the loop exits, the
                // sender drops and the workers drain out.
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(QServe {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving engine (for tests asserting against the live state).
    pub fn engine(&self) -> &LiveServer {
        &self.shared.engine
    }

    /// The published-snapshot log, boot snapshot first — every snapshot id
    /// a response can legitimately name resolves here.
    pub fn snapshots(&self) -> Vec<Arc<GraphSnapshot>> {
        self.shared
            .published
            .lock()
            .expect("snapshot log lock poisoned")
            .clone()
    }

    /// The serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Initiate shutdown: stop accepting, let in-flight requests finish.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Block until every thread has exited (call after
    /// [`shutdown`](Self::shutdown), or rely on `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return; // already shutting down
    }
    // Wake the acceptor out of its blocking accept(); the connection is
    // dropped immediately after the flag check.
    let _ = TcpStream::connect(addr);
}

/// Serve one connection's keep-alive session.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let request = match read_request(&mut stream, shared.keep_alive_timeout) {
            Ok(request) => request,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed { status, reason }) => {
                shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let body = WireError {
                    code: "bad_http".into(),
                    message: reason,
                    status,
                }
                .to_json()
                .encode();
                // Framing is unreliable after a parse failure: always close.
                let _ = write_response(
                    &mut stream,
                    status,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        };
        shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::Acquire);

        let (status, content_type, body) = route(shared, &request);
        if status >= 400 {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_response(
            &mut stream,
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
        {
            return;
        }

        // /shutdown responds first, then stops the server.
        if request.method == "POST" && request.path == "/shutdown" && status == 200 {
            request_shutdown(
                shared,
                stream
                    .local_addr()
                    .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0))),
            );
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatch one request. Returns (status, content type, body).
fn route(shared: &Shared, request: &HttpRequest) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => json_endpoint(request, |body| {
            let query = wire::decode_query(body)?;
            let outcome = shared
                .engine
                .query(&query)
                .map_err(|e| WireError::from_qerror(&e))?;
            record_query(shared, &outcome);
            Ok(wire::encode_query_response(&outcome))
        }),
        ("POST", "/query/batch") => json_endpoint(request, |body| {
            let queries = wire::decode_batch(body)?;
            let outcomes: Vec<Result<QueryOutcome, QError>> =
                queries.iter().map(|q| shared.engine.query(q)).collect();
            for outcome in outcomes.iter().flatten() {
                record_query(shared, outcome);
            }
            Ok(wire::encode_batch_response(&outcomes))
        }),
        ("POST", "/ingest") => json_endpoint(request, |body| {
            let spec = wire::decode_ingest(body)?;
            let start = Instant::now();
            let report = shared
                .engine
                .ingest_source(&spec)
                .map_err(|e| WireError::from_qerror(&e))?;
            record_publish(shared, &report.snapshot);
            shared.metrics.ingests.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .cache_kept
                .fetch_add(report.cache_kept, Ordering::Relaxed);
            shared
                .metrics
                .cache_dropped
                .fetch_add(report.cache_dropped, Ordering::Relaxed);
            shared
                .metrics
                .cache_parked
                .fetch_add(report.cache_parked, Ordering::Relaxed);
            shared
                .metrics
                .ingest_lag_us
                .store(start.elapsed().as_micros() as u64, Ordering::Relaxed);
            Ok(wire::encode_ingest_response(&report))
        }),
        ("POST", "/feedback") => json_endpoint(request, |body| {
            let feedback = wire::decode_feedback(body)?;
            let report = shared
                .engine
                .feedback(&feedback)
                .map_err(|e| WireError::from_qerror(&e))?;
            record_publish(shared, &report.snapshot);
            shared.metrics.feedbacks.fetch_add(1, Ordering::Relaxed);
            Ok(wire::encode_feedback_response(&report))
        }),
        ("GET", "/healthz") => (200, "application/json", encode_health(shared)),
        ("GET", "/metrics") => {
            // Persistence runs on its own thread; pull its counters into
            // the scrape (monotone: the lane's counts only grow).
            if let Some(stats) = shared.engine.persist_stats() {
                shared
                    .metrics
                    .snapshot_persist
                    .store(stats.persisted, Ordering::Relaxed);
            }
            // Same for the re-validation lane: its worker settles parked
            // entries on its own thread; the scrape reads its counters
            // (kept/repriced/dropped are monotone, depth is a gauge).
            let lane = shared.engine.revalidation_stats();
            shared
                .metrics
                .revalidation_kept
                .store(lane.kept, Ordering::Relaxed);
            shared
                .metrics
                .revalidation_repriced
                .store(lane.repriced, Ordering::Relaxed);
            shared
                .metrics
                .revalidation_dropped
                .store(lane.dropped, Ordering::Relaxed);
            shared
                .metrics
                .revalidation_depth
                .store(lane.depth, Ordering::Relaxed);
            (200, "text/plain; version=0.0.4", shared.metrics.render())
        }
        ("POST", "/shutdown") => (200, "application/json", encode_health(shared)),
        (
            _,
            "/query" | "/query/batch" | "/ingest" | "/feedback" | "/shutdown" | "/healthz"
            | "/metrics",
        ) => {
            let err = WireError::method_not_allowed(&request.method, &request.path);
            (err.status, "application/json", err.to_json().encode())
        }
        (_, path) => {
            let err = WireError::not_found(path);
            (err.status, "application/json", err.to_json().encode())
        }
    }
}

fn encode_health(shared: &Shared) -> String {
    wire::encode_health(
        shared.engine.snapshot().id(),
        shared.metrics.boot_mode(),
        shared.metrics.boot_ms(),
    )
    .encode()
}

/// Parse-body + handle + encode-error plumbing shared by the POST
/// endpoints.
fn json_endpoint(
    request: &HttpRequest,
    handle: impl FnOnce(&crate::json::Json) -> Result<crate::json::Json, WireError>,
) -> (u16, &'static str, String) {
    let result = wire::parse_body(&request.body).and_then(|body| handle(&body));
    match result {
        Ok(json) => (200, "application/json", json.encode()),
        Err(err) => (err.status, "application/json", err.to_json().encode()),
    }
}

fn record_query(shared: &Shared, outcome: &QueryOutcome) {
    shared.metrics.observe_query(outcome.wall_time);
    let counter = match outcome.cache {
        CacheStatus::Hit => &shared.metrics.cache_hits,
        CacheStatus::Revalidated => &shared.metrics.cache_revalidated,
        CacheStatus::Miss => &shared.metrics.cache_misses,
        CacheStatus::Bypassed | CacheStatus::Refreshed => &shared.metrics.cache_uncached,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

fn record_publish(shared: &Shared, snapshot: &Arc<GraphSnapshot>) {
    shared
        .published
        .lock()
        .expect("snapshot log lock poisoned")
        .push(Arc::clone(snapshot));
    shared
        .metrics
        .snapshot_id
        .store(snapshot.id(), Ordering::Relaxed);
    shared
        .metrics
        .set_snapshot_accounting(snapshot.snapshot_bytes(), snapshot.shard_bytes());
}
