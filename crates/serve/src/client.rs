//! A minimal blocking HTTP/1.1 client for tests, examples and smoke
//! checks. One [`HttpClient`] holds one keep-alive connection; requests
//! are serialized on it, mirroring how browsers and `curl` drive the
//! server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a Q server.
pub struct HttpClient {
    stream: TcpStream,
}

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes, decoded as UTF-8.
    pub body: String,
}

impl HttpClient {
    /// Connect to a server, with a read timeout so a wedged server fails a
    /// test instead of hanging it.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream })
    }

    /// Issue one request and read the full response. The connection stays
    /// open for the next request.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: q\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Send raw bytes (for malformed-request tests) and read one response.
    pub fn raw(&mut self, bytes: &[u8]) -> std::io::Result<HttpResponse> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Send raw bytes without waiting for a response — for tests that
    /// deliberately leave a request half-written (e.g. a declared body that
    /// never arrives) to prove the server times the connection out instead
    /// of pinning a worker on it.
    pub fn raw_no_response(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed before a full response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or(0);
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let mut chunk = [0u8; 8192];
            let want = (content_length - body.len()).min(chunk.len());
            let n = self.stream.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        Ok(HttpResponse {
            status,
            body: String::from_utf8_lossy(&body).to_string(),
        })
    }
}
