//! Network serving layer for the Q system: an HTTP/1.1 front end over
//! [`LiveServer`](q_core::LiveServer) with a versioned JSON wire API.
//!
//! Everything is hand-rolled on `std::net` — no async runtime, no HTTP or
//! JSON dependency — because the workspace builds without crates.io and the
//! protocol surface is deliberately small:
//!
//! | Endpoint             | Method | Body (v1)                         | Purpose |
//! |----------------------|--------|-----------------------------------|---------|
//! | `/query`             | POST   | keywords + per-request overrides  | answer one keyword query |
//! | `/query/batch`       | POST   | array of query objects            | answer many, one response |
//! | `/ingest`            | POST   | a full source spec                | incorporate a source, publish a snapshot |
//! | `/feedback`          | POST   | keyword target + annotation       | MIRA update, publish a re-priced snapshot |
//! | `/healthz`           | GET    | —                                 | liveness + current snapshot |
//! | `/metrics`           | GET    | —                                 | Prometheus text exposition |
//! | `/shutdown`          | POST   | —                                 | graceful stop (in-flight requests finish) |
//!
//! The module split mirrors the layering: [`json`] (deterministic
//! encode/strict parse), [`wire`] (v1 message schema + typed error codes),
//! [`http`] (defensive HTTP/1.1 framing), [`metrics`] (counters, latency
//! quantiles, Prometheus rendering), [`server`] (router + fixed worker
//! pool + graceful shutdown), [`client`] (a tiny blocking client for tests
//! and smoke checks).
//!
//! The serving contract is byte-replayability: every query response names
//! the published snapshot it was computed against, and re-encoding that
//! snapshot's sequential answer ([`wire::encode_result`]) reproduces the
//! response's `"result"` field byte for byte.

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::HttpClient;
pub use json::Json;
pub use metrics::Metrics;
pub use server::{BootMode, BootStats, QServe, ServeOptions};
pub use wire::{WireError, WireView, WIRE_VERSION};
