//! Versioned JSON wire protocol (v1) over the typed core API.
//!
//! Every message — request or response — is a JSON object carrying an
//! explicit `"v": 1`. The protocol is *strict*: unknown fields, a missing or
//! unsupported version, and type mismatches are all rejected with a typed
//! error code rather than ignored, so a client talking a future wire version
//! fails loudly instead of being half-understood.
//!
//! Responses split into two parts:
//!
//! * the **deterministic result** (`"result"`, [`WireView`]) — a pure
//!   function of `(snapshot, request)`. Re-encoding
//!   [`GraphSnapshot::answer`](q_core::GraphSnapshot::answer) of the named
//!   snapshot reproduces these bytes exactly; the soak tests replay every
//!   served response against that contract.
//! * the **envelope** (cache status, wall time) — legitimately
//!   non-deterministic, excluded from replay comparison.
//!
//! [`Value`] needs one convention: JSON numbers cannot distinguish
//! `Value::Int(3)` from `Value::Float(3.0)`, so floats ride in a
//! `{"float": …}` wrapper (with `"nan"`/`"inf"`/`"-inf"` markers for the
//! non-finite values JSON cannot express) and round-trip bit-exactly.
//! In answer rows `null` means "this query does not produce that column"
//! (`None`) and an explicit SQL NULL is `{"null": true}`.

use q_core::{
    CachePolicy, CacheStatus, Feedback, FeedbackOutcome, FeedbackRequest, FeedbackTarget,
    IngestReport, LiveFeedbackReport, QError, QueryOutcome, QueryRequest, RankedView,
    SearchStrategy,
};
use q_storage::{RelationSpec, SourceSpec, Value};

use crate::json::{parse, Json, ParseError};

/// The wire protocol version this build speaks.
pub const WIRE_VERSION: i64 = 1;

/// A typed wire-level error: a stable snake_case `code`, a human-readable
/// `message`, and the HTTP status it maps to. Core [`QError`]s convert via
/// [`WireError::from_qerror`] using [`QError::code`]; the wire layer adds
/// its own codes for protocol-level failures (`bad_json`,
/// `unsupported_version`, `unknown_field`, `invalid_field`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// HTTP status the server responds with.
    pub status: u16,
}

impl WireError {
    fn new(code: &str, status: u16, message: impl Into<String>) -> Self {
        WireError {
            code: code.to_string(),
            message: message.into(),
            status,
        }
    }

    /// Malformed JSON body.
    pub fn bad_json(err: &ParseError) -> Self {
        WireError::new(
            "bad_json",
            400,
            format!("request body is not valid JSON: {err}"),
        )
    }

    /// Missing or unsupported `"v"` field.
    pub fn unsupported_version(found: &Json) -> Self {
        WireError::new(
            "unsupported_version",
            400,
            format!(
                "this server speaks wire version {WIRE_VERSION}; request carried {}",
                found.encode()
            ),
        )
    }

    /// A field the protocol does not define.
    pub fn unknown_field(context: &str, field: &str) -> Self {
        WireError::new(
            "unknown_field",
            400,
            format!("unknown field `{field}` in {context}"),
        )
    }

    /// A defined field with the wrong type or an invalid value.
    pub fn invalid_field(context: &str, detail: impl Into<String>) -> Self {
        WireError::new(
            "invalid_field",
            400,
            format!("{} in {context}", detail.into()),
        )
    }

    /// Route-level 404.
    pub fn not_found(path: &str) -> Self {
        WireError::new("not_found", 404, format!("no such endpoint: {path}"))
    }

    /// Route-level 405.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        WireError::new(
            "method_not_allowed",
            405,
            format!("{method} is not supported on {path}"),
        )
    }

    /// Convert a core error, mapping its stable code to an HTTP status:
    /// client addressing errors are 404, bad parameters 400, an answerable
    /// but empty search 422, and engine failures 500.
    pub fn from_qerror(err: &QError) -> Self {
        let status = match err.code() {
            "invalid_request" | "invalid_build" => 400,
            "unknown_view" | "unknown_answer" => 404,
            "no_query_trees" => 422,
            _ => 500,
        };
        WireError::new(err.code(), status, err.to_string())
    }

    /// The error response body: `{"v":1,"error":{"code":…,"message":…}}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("v", Json::Int(WIRE_VERSION)),
            (
                "error",
                Json::object([
                    ("code", Json::Str(self.code.clone())),
                    ("message", Json::Str(self.message.clone())),
                ]),
            ),
        ])
    }
}

/// Decode an error response produced by [`WireError::to_json`] (the status
/// is not part of the body; pass the HTTP status it arrived with).
pub fn decode_error(json: &Json, status: u16) -> Result<WireError, WireError> {
    let obj = check_versioned_object(json, "error response", &["error"])?;
    let inner = require(obj, "error", "error response")?;
    let fields = as_object(inner, "error response `error`", &["code", "message"])?;
    Ok(WireError {
        code: require_str(fields, "code", "error response")?,
        message: require_str(fields, "message", "error response")?,
        status,
    })
}

// ---------------------------------------------------------------------------
// Json accessor helpers (strict: unknown fields are errors)
// ---------------------------------------------------------------------------

type Fields = [(String, Json)];

fn as_object<'a>(json: &'a Json, context: &str, allowed: &[&str]) -> Result<&'a Fields, WireError> {
    let Json::Object(fields) = json else {
        return Err(WireError::invalid_field(context, "expected an object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::unknown_field(context, key));
        }
    }
    Ok(fields)
}

/// Check `"v"` and the allowed field set of a top-level message object.
fn check_versioned_object<'a>(
    json: &'a Json,
    context: &str,
    allowed: &[&str],
) -> Result<&'a Fields, WireError> {
    let Json::Object(fields) = json else {
        return Err(WireError::invalid_field(context, "expected an object"));
    };
    match json.get("v") {
        Some(Json::Int(v)) if *v == WIRE_VERSION => {}
        Some(other) => return Err(WireError::unsupported_version(other)),
        None => return Err(WireError::unsupported_version(&Json::Null)),
    }
    for (key, _) in fields {
        if key != "v" && !allowed.contains(&key.as_str()) {
            return Err(WireError::unknown_field(context, key));
        }
    }
    Ok(fields)
}

fn get<'a>(fields: &'a Fields, key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'a>(fields: &'a Fields, key: &str, context: &str) -> Result<&'a Json, WireError> {
    get(fields, key)
        .ok_or_else(|| WireError::invalid_field(context, format!("missing field `{key}`")))
}

fn expect_str(json: &Json, context: &str) -> Result<String, WireError> {
    match json {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(WireError::invalid_field(context, "expected a string")),
    }
}

fn expect_usize(json: &Json, context: &str) -> Result<usize, WireError> {
    match json {
        Json::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(WireError::invalid_field(
            context,
            "expected a non-negative integer",
        )),
    }
}

fn expect_u64(json: &Json, context: &str) -> Result<u64, WireError> {
    match json {
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(WireError::invalid_field(
            context,
            "expected a non-negative integer",
        )),
    }
}

fn require_str(fields: &Fields, key: &str, context: &str) -> Result<String, WireError> {
    expect_str(require(fields, key, context)?, context)
}

fn require_usize(fields: &Fields, key: &str, context: &str) -> Result<usize, WireError> {
    expect_usize(require(fields, key, context)?, context)
}

fn require_u64(fields: &Fields, key: &str, context: &str) -> Result<u64, WireError> {
    expect_u64(require(fields, key, context)?, context)
}

fn expect_array<'a>(json: &'a Json, context: &str) -> Result<&'a [Json], WireError> {
    match json {
        Json::Array(items) => Ok(items),
        _ => Err(WireError::invalid_field(context, "expected an array")),
    }
}

fn string_array(json: &Json, context: &str) -> Result<Vec<String>, WireError> {
    expect_array(json, context)?
        .iter()
        .map(|item| expect_str(item, context))
        .collect()
}

/// A bare float (`1.5`), an integer (`3` = `3.0`), or a non-finite marker
/// string. Used *inside* the `{"float": …}` wrapper and for fields that are
/// floats by schema (costs, budgets), where no `Int` ambiguity exists.
fn expect_f64(json: &Json, context: &str) -> Result<f64, WireError> {
    match json {
        Json::Float(x) => Ok(*x),
        Json::Int(i) => Ok(*i as f64),
        Json::Str(s) if s == "nan" => Ok(f64::NAN),
        Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Json::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        _ => Err(WireError::invalid_field(context, "expected a number")),
    }
}

/// Encode a schema-level float field (the value is a float by schema, so it
/// is *not* wrapped; integral floats still encode with `.0` and non-finite
/// values as marker strings — see [`crate::json`]).
fn float_json(x: f64) -> Json {
    if x.is_nan() {
        Json::Str("nan".into())
    } else if x.is_infinite() {
        Json::Str(if x > 0.0 { "inf" } else { "-inf" }.into())
    } else {
        Json::Float(x)
    }
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// Encode one typed [`Value`] (row context: NULL is `null`).
pub fn encode_value(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Float(x) => Json::object([("float", float_json(*x))]),
        Value::Text(s) => Json::Str(s.clone()),
    }
}

/// Decode one typed [`Value`] (row context: `null` is NULL).
pub fn decode_value(json: &Json, context: &str) -> Result<Value, WireError> {
    match json {
        Json::Null => Ok(Value::Null),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Object(_) => {
            let fields = as_object(json, context, &["float"])?;
            Ok(Value::Float(expect_f64(
                require(fields, "float", context)?,
                context,
            )?))
        }
        _ => Err(WireError::invalid_field(context, "expected a value")),
    }
}

/// Encode an answer cell (answer context: `None` = column not produced is
/// `null`, an explicit SQL NULL is `{"null":true}`).
fn encode_cell(cell: &Option<Value>) -> Json {
    match cell {
        None => Json::Null,
        Some(Value::Null) => Json::object([("null", Json::Bool(true))]),
        Some(value) => encode_value(value),
    }
}

fn decode_cell(json: &Json, context: &str) -> Result<Option<Value>, WireError> {
    match json {
        Json::Null => Ok(None),
        Json::Object(fields) if fields.len() == 1 && fields[0].0 == "null" => match fields[0].1 {
            Json::Bool(true) => Ok(Some(Value::Null)),
            _ => Err(WireError::invalid_field(
                context,
                "expected {\"null\":true}",
            )),
        },
        other => Ok(Some(decode_value(other, context)?)),
    }
}

// ---------------------------------------------------------------------------
// Query requests
// ---------------------------------------------------------------------------

const QUERY_FIELDS: [&str; 5] = ["keywords", "top_k", "strategy", "cost_budget", "cache"];

fn decode_query_fields(fields: &Fields) -> Result<QueryRequest, WireError> {
    const CTX: &str = "query request";
    let keywords = string_array(
        require(fields, "keywords", CTX)?,
        "query request `keywords`",
    )?;
    let mut request = QueryRequest::new(keywords);
    if let Some(top_k) = get(fields, "top_k") {
        request = request.top_k(expect_usize(top_k, "query request `top_k`")?);
    }
    if let Some(strategy) = get(fields, "strategy") {
        request = request.strategy(decode_strategy(strategy)?);
    }
    if let Some(budget) = get(fields, "cost_budget") {
        request = request.cost_budget(expect_f64(budget, "query request `cost_budget`")?);
    }
    if let Some(cache) = get(fields, "cache") {
        request = request.cache_policy(decode_cache_policy(cache)?);
    }
    Ok(request)
}

/// Decode a `POST /query` body.
pub fn decode_query(json: &Json) -> Result<QueryRequest, WireError> {
    let fields = check_versioned_object(json, "query request", &QUERY_FIELDS)?;
    decode_query_fields(fields)
}

/// Decode a `POST /query/batch` body: `{"v":1,"queries":[…]}` where each
/// entry is a query object without its own `"v"`.
pub fn decode_batch(json: &Json) -> Result<Vec<QueryRequest>, WireError> {
    let fields = check_versioned_object(json, "batch request", &["queries"])?;
    expect_array(
        require(fields, "queries", "batch request")?,
        "batch request `queries`",
    )?
    .iter()
    .map(|entry| {
        let fields = as_object(entry, "batch query entry", &QUERY_FIELDS)?;
        decode_query_fields(fields)
    })
    .collect()
}

fn query_fields_json(request: &QueryRequest) -> Vec<(&'static str, Json)> {
    let mut fields = vec![(
        "keywords",
        Json::Array(
            request
                .keywords()
                .iter()
                .map(|k| Json::Str(k.clone()))
                .collect(),
        ),
    )];
    if let Some(top_k) = request.top_k_override() {
        fields.push(("top_k", Json::Int(top_k as i64)));
    }
    if let Some(strategy) = request.strategy_override() {
        fields.push(("strategy", encode_strategy(strategy)));
    }
    if let Some(budget) = request.cost_budget_override() {
        fields.push(("cost_budget", float_json(budget)));
    }
    if request.cache() != CachePolicy::Cached {
        fields.push(("cache", encode_cache_policy(request.cache())));
    }
    fields
}

/// Encode a query request (the exact inverse of [`decode_query`]).
pub fn encode_query(request: &QueryRequest) -> Json {
    let mut fields = vec![("v", Json::Int(WIRE_VERSION))];
    fields.extend(query_fields_json(request));
    Json::object(fields)
}

/// Encode a batch request (the exact inverse of [`decode_batch`]).
pub fn encode_batch(requests: &[QueryRequest]) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        (
            "queries",
            Json::Array(
                requests
                    .iter()
                    .map(|r| Json::object(query_fields_json(r)))
                    .collect(),
            ),
        ),
    ])
}

fn decode_strategy(json: &Json) -> Result<SearchStrategy, WireError> {
    const CTX: &str = "query request `strategy`";
    match json {
        Json::Str(s) if s == "exact" => Ok(SearchStrategy::Exact),
        Json::Object(_) => {
            let fields = as_object(json, CTX, &["approx"])?;
            let inner = as_object(require(fields, "approx", CTX)?, CTX, &["max_roots"])?;
            Ok(SearchStrategy::Approx {
                max_roots: require_usize(inner, "max_roots", CTX)?,
            })
        }
        _ => Err(WireError::invalid_field(
            CTX,
            "expected \"exact\" or {\"approx\":{\"max_roots\":N}}",
        )),
    }
}

fn encode_strategy(strategy: SearchStrategy) -> Json {
    match strategy {
        SearchStrategy::Exact => Json::Str("exact".into()),
        SearchStrategy::Approx { max_roots } => Json::object([(
            "approx",
            Json::object([("max_roots", Json::Int(max_roots as i64))]),
        )]),
    }
}

fn decode_cache_policy(json: &Json) -> Result<CachePolicy, WireError> {
    match json {
        Json::Str(s) if s == "cached" => Ok(CachePolicy::Cached),
        Json::Str(s) if s == "bypass" => Ok(CachePolicy::Bypass),
        Json::Str(s) if s == "refresh" => Ok(CachePolicy::Refresh),
        _ => Err(WireError::invalid_field(
            "query request `cache`",
            "expected \"cached\", \"bypass\" or \"refresh\"",
        )),
    }
}

fn encode_cache_policy(policy: CachePolicy) -> Json {
    Json::Str(
        match policy {
            CachePolicy::Cached => "cached",
            CachePolicy::Bypass => "bypass",
            CachePolicy::Refresh => "refresh",
        }
        .into(),
    )
}

// ---------------------------------------------------------------------------
// Ingest requests
// ---------------------------------------------------------------------------

/// Decode a `POST /ingest` body into a typed [`SourceSpec`].
pub fn decode_ingest(json: &Json) -> Result<SourceSpec, WireError> {
    const CTX: &str = "ingest request";
    let fields = check_versioned_object(json, CTX, &["source"])?;
    let source = as_object(
        require(fields, "source", CTX)?,
        "ingest source",
        &["name", "relations", "foreign_keys"],
    )?;
    let mut spec = SourceSpec::new(&require_str(source, "name", "ingest source")?);
    for relation in expect_array(
        require(source, "relations", "ingest source")?,
        "ingest source `relations`",
    )? {
        let fields = as_object(relation, "ingest relation", &["name", "attributes", "rows"])?;
        let name = require_str(fields, "name", "ingest relation")?;
        let attributes = string_array(
            require(fields, "attributes", "ingest relation")?,
            "ingest relation `attributes`",
        )?;
        let attribute_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
        let mut rel = RelationSpec::new(&name, &attribute_refs);
        if let Some(rows) = get(fields, "rows") {
            for row in expect_array(rows, "ingest relation `rows`")? {
                let cells = expect_array(row, "ingest row")?
                    .iter()
                    .map(|cell| decode_value(cell, "ingest row value"))
                    .collect::<Result<Vec<Value>, WireError>>()?;
                if cells.len() != attributes.len() {
                    return Err(WireError::invalid_field(
                        "ingest row",
                        format!(
                            "row has {} values, relation has {} attributes",
                            cells.len(),
                            attributes.len()
                        ),
                    ));
                }
                rel = rel.row(cells);
            }
        }
        spec = spec.relation(rel);
    }
    if let Some(fks) = get(source, "foreign_keys") {
        for fk in expect_array(fks, "ingest source `foreign_keys`")? {
            let pair = expect_array(fk, "ingest foreign key")?;
            if pair.len() != 2 {
                return Err(WireError::invalid_field(
                    "ingest foreign key",
                    "expected [\"rel.attr\", \"rel.attr\"]",
                ));
            }
            let from = expect_str(&pair[0], "ingest foreign key")?;
            let to = expect_str(&pair[1], "ingest foreign key")?;
            spec = spec.foreign_key(&from, &to);
        }
    }
    Ok(spec)
}

/// Encode a source spec (the exact inverse of [`decode_ingest`]).
pub fn encode_ingest(spec: &SourceSpec) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        (
            "source",
            Json::object([
                ("name", Json::Str(spec.name.clone())),
                (
                    "relations",
                    Json::Array(
                        spec.relations
                            .iter()
                            .map(|rel| {
                                Json::object([
                                    ("name", Json::Str(rel.name.clone())),
                                    (
                                        "attributes",
                                        Json::Array(
                                            rel.attributes
                                                .iter()
                                                .map(|a| Json::Str(a.clone()))
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "rows",
                                        Json::Array(
                                            rel.rows
                                                .iter()
                                                .map(|row| {
                                                    Json::Array(
                                                        row.iter().map(encode_value).collect(),
                                                    )
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "foreign_keys",
                    Json::Array(
                        spec.foreign_keys
                            .iter()
                            .map(|(from, to)| {
                                Json::Array(vec![Json::Str(from.clone()), Json::Str(to.clone())])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Feedback requests
// ---------------------------------------------------------------------------

/// Decode a `POST /feedback` body.
pub fn decode_feedback(json: &Json) -> Result<FeedbackRequest, WireError> {
    const CTX: &str = "feedback request";
    let fields = check_versioned_object(json, CTX, &["view", "keywords", "feedback"])?;
    let feedback = decode_feedback_kind(require(fields, "feedback", CTX)?)?;
    match (get(fields, "view"), get(fields, "keywords")) {
        (Some(view), None) => Ok(FeedbackRequest::on_view(
            expect_usize(view, "feedback request `view`")?,
            feedback,
        )),
        (None, Some(keywords)) => Ok(FeedbackRequest::on_keywords(
            string_array(keywords, "feedback request `keywords`")?,
            feedback,
        )),
        _ => Err(WireError::invalid_field(
            CTX,
            "exactly one of `view` and `keywords` must be present",
        )),
    }
}

/// Encode a feedback request (the exact inverse of [`decode_feedback`]).
pub fn encode_feedback(request: &FeedbackRequest) -> Json {
    let target = match request.target() {
        FeedbackTarget::View(id) => ("view", Json::Int(*id as i64)),
        FeedbackTarget::Keywords(keywords) => (
            "keywords",
            Json::Array(keywords.iter().map(|k| Json::Str(k.clone())).collect()),
        ),
    };
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        target,
        ("feedback", encode_feedback_kind(request.feedback())),
    ])
}

fn decode_feedback_kind(json: &Json) -> Result<Feedback, WireError> {
    const CTX: &str = "feedback request `feedback`";
    let Json::Object(_) = json else {
        return Err(WireError::invalid_field(CTX, "expected an object"));
    };
    match json.get("type") {
        Some(Json::Str(t)) if t == "correct" => {
            let fields = as_object(json, CTX, &["type", "answer"])?;
            Ok(Feedback::Correct {
                answer: require_usize(fields, "answer", CTX)?,
            })
        }
        Some(Json::Str(t)) if t == "invalid" => {
            let fields = as_object(json, CTX, &["type", "answer"])?;
            Ok(Feedback::Invalid {
                answer: require_usize(fields, "answer", CTX)?,
            })
        }
        Some(Json::Str(t)) if t == "prefer" => {
            let fields = as_object(json, CTX, &["type", "better", "worse"])?;
            Ok(Feedback::Prefer {
                better: require_usize(fields, "better", CTX)?,
                worse: require_usize(fields, "worse", CTX)?,
            })
        }
        _ => Err(WireError::invalid_field(
            CTX,
            "expected type \"correct\", \"invalid\" or \"prefer\"",
        )),
    }
}

fn encode_feedback_kind(feedback: Feedback) -> Json {
    match feedback {
        Feedback::Correct { answer } => Json::object([
            ("type", Json::Str("correct".into())),
            ("answer", Json::Int(answer as i64)),
        ]),
        Feedback::Invalid { answer } => Json::object([
            ("type", Json::Str("invalid".into())),
            ("answer", Json::Int(answer as i64)),
        ]),
        Feedback::Prefer { better, worse } => Json::object([
            ("type", Json::Str("prefer".into())),
            ("better", Json::Int(better as i64)),
            ("worse", Json::Int(worse as i64)),
        ]),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The wire-visible projection of a [`RankedView`]: everything a client
/// needs (schema, ranked query costs, answers with provenance), without the
/// internal Steiner trees and conjunctive query plans. This is the
/// deterministic `"result"` subobject of a query response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireView {
    /// The (verbatim) keywords the view answers.
    pub keywords: Vec<String>,
    /// Unified output schema labels.
    pub columns: Vec<String>,
    /// Cost of each ranked query, in rank order.
    pub query_costs: Vec<f64>,
    /// Materialised answers.
    pub answers: Vec<WireAnswer>,
}

/// One answer row on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// Values aligned to `columns` (`None` = not produced by this query).
    pub values: Vec<Option<Value>>,
    /// Index into `query_costs` of the originating query.
    pub query: usize,
    /// Cost of the originating query.
    pub cost: f64,
}

impl WireView {
    /// Project a core view onto the wire.
    pub fn from_view(view: &RankedView) -> Self {
        WireView {
            keywords: view.keywords.clone(),
            columns: view.columns.clone(),
            query_costs: view.queries.iter().map(|q| q.cost).collect(),
            answers: view
                .answers
                .iter()
                .map(|a| WireAnswer {
                    values: a.values.clone(),
                    query: a.query_index,
                    cost: a.cost,
                })
                .collect(),
        }
    }

    /// Deterministic encoding: equal views produce identical bytes.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "keywords",
                Json::Array(self.keywords.iter().map(|k| Json::Str(k.clone())).collect()),
            ),
            (
                "columns",
                Json::Array(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "query_costs",
                Json::Array(self.query_costs.iter().map(|c| float_json(*c)).collect()),
            ),
            (
                "answers",
                Json::Array(
                    self.answers
                        .iter()
                        .map(|a| {
                            Json::object([
                                (
                                    "values",
                                    Json::Array(a.values.iter().map(encode_cell).collect()),
                                ),
                                ("query", Json::Int(a.query as i64)),
                                ("cost", float_json(a.cost)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode the `"result"` subobject.
    pub fn from_json(json: &Json) -> Result<Self, WireError> {
        const CTX: &str = "query result";
        let fields = as_object(
            json,
            CTX,
            &["keywords", "columns", "query_costs", "answers"],
        )?;
        Ok(WireView {
            keywords: string_array(require(fields, "keywords", CTX)?, "result `keywords`")?,
            columns: string_array(require(fields, "columns", CTX)?, "result `columns`")?,
            query_costs: expect_array(
                require(fields, "query_costs", CTX)?,
                "result `query_costs`",
            )?
            .iter()
            .map(|c| expect_f64(c, "result `query_costs`"))
            .collect::<Result<_, _>>()?,
            answers: expect_array(require(fields, "answers", CTX)?, "result `answers`")?
                .iter()
                .map(|a| {
                    let fields = as_object(a, "result answer", &["values", "query", "cost"])?;
                    Ok(WireAnswer {
                        values: expect_array(
                            require(fields, "values", "result answer")?,
                            "result answer `values`",
                        )?
                        .iter()
                        .map(|cell| decode_cell(cell, "result answer value"))
                        .collect::<Result<_, _>>()?,
                        query: require_usize(fields, "query", "result answer")?,
                        cost: expect_f64(
                            require(fields, "cost", "result answer")?,
                            "result answer `cost`",
                        )?,
                    })
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Encode the deterministic `"result"` bytes of a view — the replay
/// contract: for a response naming snapshot `s`,
/// `encode_result(&s.answer(config, request)?)` reproduces the response's
/// `"result"` field byte for byte.
pub fn encode_result(view: &RankedView) -> String {
    WireView::from_view(view).to_json().encode()
}

fn cache_status_str(status: CacheStatus) -> &'static str {
    match status {
        CacheStatus::Hit => "hit",
        CacheStatus::Miss => "miss",
        CacheStatus::Bypassed => "bypassed",
        CacheStatus::Refreshed => "refreshed",
        CacheStatus::Revalidated => "revalidated",
    }
}

fn decode_cache_status(json: &Json, context: &str) -> Result<CacheStatus, WireError> {
    match json {
        Json::Str(s) if s == "hit" => Ok(CacheStatus::Hit),
        Json::Str(s) if s == "miss" => Ok(CacheStatus::Miss),
        Json::Str(s) if s == "bypassed" => Ok(CacheStatus::Bypassed),
        Json::Str(s) if s == "refreshed" => Ok(CacheStatus::Refreshed),
        Json::Str(s) if s == "revalidated" => Ok(CacheStatus::Revalidated),
        _ => Err(WireError::invalid_field(context, "expected a cache status")),
    }
}

/// A decoded query response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQueryResponse {
    /// Snapshot the result is a sequential answer of (`None` when the
    /// engine does not stamp snapshots).
    pub snapshot: Option<u64>,
    /// Weight epoch the result is priced under.
    pub weight_epoch: u64,
    /// Cache disposition (envelope; excluded from replay).
    pub cache: CacheStatus,
    /// Service time in microseconds (envelope; excluded from replay).
    pub wall_time_us: u64,
    /// The deterministic result.
    pub result: WireView,
}

/// Encode a `POST /query` response.
pub fn encode_query_response(outcome: &QueryOutcome) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        (
            "snapshot",
            match outcome.snapshot {
                Some(id) => Json::Int(id as i64),
                None => Json::Null,
            },
        ),
        ("weight_epoch", Json::Int(outcome.weight_epoch as i64)),
        ("cache", Json::Str(cache_status_str(outcome.cache).into())),
        (
            "wall_time_us",
            Json::Int(outcome.wall_time.as_micros() as i64),
        ),
        ("result", WireView::from_view(&outcome.view).to_json()),
    ])
}

/// Decode a `POST /query` response.
pub fn decode_query_response(json: &Json) -> Result<WireQueryResponse, WireError> {
    const CTX: &str = "query response";
    let fields = check_versioned_object(
        json,
        CTX,
        &[
            "snapshot",
            "weight_epoch",
            "cache",
            "wall_time_us",
            "result",
        ],
    )?;
    let snapshot = match require(fields, "snapshot", CTX)? {
        Json::Null => None,
        other => Some(expect_u64(other, "query response `snapshot`")?),
    };
    Ok(WireQueryResponse {
        snapshot,
        weight_epoch: require_u64(fields, "weight_epoch", CTX)?,
        cache: decode_cache_status(require(fields, "cache", CTX)?, "query response `cache`")?,
        wall_time_us: require_u64(fields, "wall_time_us", CTX)?,
        result: WireView::from_json(require(fields, "result", CTX)?)?,
    })
}

/// Encode a `POST /query/batch` response: per-entry query responses or
/// error objects, in request order.
pub fn encode_batch_response(outcomes: &[Result<QueryOutcome, QError>]) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        (
            "results",
            Json::Array(
                outcomes
                    .iter()
                    .map(|entry| match entry {
                        Ok(outcome) => encode_query_response(outcome),
                        Err(err) => WireError::from_qerror(err).to_json(),
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A decoded ingest response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireIngestResponse {
    /// Snapshot the ingestion published.
    pub snapshot: u64,
    /// Id assigned to the new source.
    pub source: u32,
    /// Alignments the matchers proposed.
    pub alignments: u64,
    /// Cached entries that survived the publish.
    pub cache_kept: u64,
    /// Cached entries handed to the background re-validation lane.
    pub cache_parked: u64,
    /// Cached entries the publish dropped.
    pub cache_dropped: u64,
}

/// Encode a `POST /ingest` response.
pub fn encode_ingest_response(report: &IngestReport) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        ("snapshot", Json::Int(report.snapshot.id() as i64)),
        ("source", Json::Int(report.source.0 as i64)),
        ("alignments", Json::Int(report.alignments.len() as i64)),
        ("cache_kept", Json::Int(report.cache_kept as i64)),
        ("cache_parked", Json::Int(report.cache_parked as i64)),
        ("cache_dropped", Json::Int(report.cache_dropped as i64)),
    ])
}

/// Decode a `POST /ingest` response.
pub fn decode_ingest_response(json: &Json) -> Result<WireIngestResponse, WireError> {
    const CTX: &str = "ingest response";
    let fields = check_versioned_object(
        json,
        CTX,
        &[
            "snapshot",
            "source",
            "alignments",
            "cache_kept",
            "cache_parked",
            "cache_dropped",
        ],
    )?;
    Ok(WireIngestResponse {
        snapshot: require_u64(fields, "snapshot", CTX)?,
        source: require_u64(fields, "source", CTX)? as u32,
        alignments: require_u64(fields, "alignments", CTX)?,
        cache_kept: require_u64(fields, "cache_kept", CTX)?,
        cache_parked: require_u64(fields, "cache_parked", CTX)?,
        cache_dropped: require_u64(fields, "cache_dropped", CTX)?,
    })
}

/// A decoded feedback response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFeedbackResponse {
    /// Snapshot the feedback published.
    pub snapshot: u64,
    /// What the MIRA update did.
    pub outcome: FeedbackOutcome,
}

/// Encode a `POST /feedback` response.
pub fn encode_feedback_response(report: &LiveFeedbackReport) -> Json {
    let o = &report.outcome;
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        ("snapshot", Json::Int(report.snapshot.id() as i64)),
        (
            "outcome",
            Json::object([
                ("target_query", Json::Int(o.target_query as i64)),
                ("constraints", Json::Int(o.constraints as i64)),
                ("initially_violated", Json::Int(o.initially_violated as i64)),
                (
                    "remaining_violations",
                    Json::Int(o.remaining_violations as i64),
                ),
                ("default_weight_bump", float_json(o.default_weight_bump)),
                ("repriced_features", Json::Int(o.repriced_features as i64)),
            ]),
        ),
    ])
}

/// Decode a `POST /feedback` response.
pub fn decode_feedback_response(json: &Json) -> Result<WireFeedbackResponse, WireError> {
    const CTX: &str = "feedback response";
    let fields = check_versioned_object(json, CTX, &["snapshot", "outcome"])?;
    let outcome = as_object(
        require(fields, "outcome", CTX)?,
        "feedback outcome",
        &[
            "target_query",
            "constraints",
            "initially_violated",
            "remaining_violations",
            "default_weight_bump",
            "repriced_features",
        ],
    )?;
    Ok(WireFeedbackResponse {
        snapshot: require_u64(fields, "snapshot", CTX)?,
        outcome: FeedbackOutcome {
            target_query: require_usize(outcome, "target_query", "feedback outcome")?,
            constraints: require_usize(outcome, "constraints", "feedback outcome")?,
            initially_violated: require_usize(outcome, "initially_violated", "feedback outcome")?,
            remaining_violations: require_usize(
                outcome,
                "remaining_violations",
                "feedback outcome",
            )?,
            default_weight_bump: expect_f64(
                require(outcome, "default_weight_bump", "feedback outcome")?,
                "feedback outcome `default_weight_bump`",
            )?,
            repriced_features: require_usize(outcome, "repriced_features", "feedback outcome")?,
        },
    })
}

/// Encode the `GET /healthz` body. `boot_mode` is how the serving engine
/// was constructed (`"snapshot"` when restored from a persisted file,
/// `"rebuild"` when built from the dataset) and `boot_ms` the boot wall
/// time in milliseconds.
pub fn encode_health(snapshot: u64, boot_mode: &str, boot_ms: u64) -> Json {
    Json::object([
        ("v", Json::Int(WIRE_VERSION)),
        ("status", Json::Str("ok".into())),
        ("snapshot", Json::Int(snapshot as i64)),
        ("boot_mode", Json::Str(boot_mode.into())),
        ("boot_ms", Json::Int(boot_ms as i64)),
    ])
}

/// Parse a request body: UTF-8, then JSON, with wire-level errors.
pub fn parse_body(body: &[u8]) -> Result<Json, WireError> {
    if std::str::from_utf8(body).is_err() {
        return Err(WireError::new("bad_json", 400, "request body is not UTF-8"));
    }
    parse(body).map_err(|e| WireError::bad_json(&e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reparse(json: &Json) -> Json {
        parse(json.encode().as_bytes()).expect("wire messages re-parse")
    }

    #[test]
    fn query_requests_round_trip() {
        let requests = [
            QueryRequest::new(["plasma membrane", "entry"]),
            QueryRequest::new(["a"])
                .top_k(3)
                .cache_policy(CachePolicy::Bypass),
            QueryRequest::new(["a", "b"])
                .strategy(SearchStrategy::Exact)
                .cost_budget(12.5),
            QueryRequest::new(["x"])
                .strategy(SearchStrategy::Approx { max_roots: 7 })
                .cache_policy(CachePolicy::Refresh),
        ];
        for request in requests {
            let encoded = encode_query(&request);
            let decoded = decode_query(&reparse(&encoded)).expect("round trip decodes");
            assert_eq!(decoded, request);
            assert_eq!(encode_query(&decoded).encode(), encoded.encode());
        }
    }

    #[test]
    fn batch_requests_round_trip() {
        let requests = vec![QueryRequest::new(["a"]), QueryRequest::new(["b"]).top_k(1)];
        let encoded = encode_batch(&requests);
        assert_eq!(decode_batch(&reparse(&encoded)).unwrap(), requests);
    }

    #[test]
    fn feedback_requests_round_trip() {
        let requests = [
            FeedbackRequest::on_view(3, Feedback::Correct { answer: 0 }),
            FeedbackRequest::on_keywords(["a", "b"], Feedback::Invalid { answer: 2 }),
            FeedbackRequest::on_keywords(
                ["x"],
                Feedback::Prefer {
                    better: 0,
                    worse: 4,
                },
            ),
        ];
        for request in requests {
            let encoded = encode_feedback(&request);
            let decoded = decode_feedback(&reparse(&encoded)).expect("round trip decodes");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn ingest_requests_round_trip() {
        let spec = SourceSpec::new("pubdb")
            .relation(
                RelationSpec::new("pub", &["id", "score", "title"])
                    .row::<_, Value>([
                        Value::Int(1),
                        Value::Float(0.5),
                        Value::Text("Kringle".into()),
                    ])
                    .row::<_, Value>([Value::Int(2), Value::Null, Value::Float(3.0)]),
            )
            .relation(RelationSpec::new("empty", &["a"]))
            .foreign_key("pub.id", "empty.a");
        let encoded = encode_ingest(&spec);
        let decoded = decode_ingest(&reparse(&encoded)).expect("round trip decodes");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn values_round_trip_bit_exact() {
        for value in [
            Value::Null,
            Value::Int(-5),
            Value::Float(0.1 + 0.2), // a value with no short decimal form
            Value::Float(3.0),       // integral float stays a float
            Value::Float(f64::INFINITY),
            Value::Text("x \"y\"\n".into()),
        ] {
            let json = reparse(&encode_value(&value));
            let back = decode_value(&json, "test").expect("value decodes");
            match (&value, &back) {
                (Value::Float(a), Value::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "float bits diverged")
                }
                _ => assert_eq!(value, back),
            }
        }
    }

    #[test]
    fn answer_cells_distinguish_absent_from_null() {
        let absent = encode_cell(&None);
        let null = encode_cell(&Some(Value::Null));
        assert_ne!(absent.encode(), null.encode());
        assert_eq!(decode_cell(&reparse(&absent), "t").unwrap(), None);
        assert_eq!(
            decode_cell(&reparse(&null), "t").unwrap(),
            Some(Value::Null)
        );
    }

    #[test]
    fn version_and_unknown_fields_are_rejected_with_typed_codes() {
        let missing_v = parse(br#"{"keywords":["a"]}"#).unwrap();
        assert_eq!(
            decode_query(&missing_v).unwrap_err().code,
            "unsupported_version"
        );
        let wrong_v = parse(br#"{"v":2,"keywords":["a"]}"#).unwrap();
        assert_eq!(
            decode_query(&wrong_v).unwrap_err().code,
            "unsupported_version"
        );
        let unknown = parse(br#"{"v":1,"keywords":["a"],"surprise":1}"#).unwrap();
        let err = decode_query(&unknown).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        assert_eq!(err.status, 400);
        let wrong_type = parse(br#"{"v":1,"keywords":"a"}"#).unwrap();
        assert_eq!(decode_query(&wrong_type).unwrap_err().code, "invalid_field");
    }

    #[test]
    fn qerror_codes_map_to_statuses() {
        let cases = [
            (
                QError::InvalidRequest {
                    field: "top_k",
                    reason: "must be at least 1".into(),
                },
                400,
            ),
            (QError::UnknownView(3), 404),
            (QError::NoQueryTrees, 422),
            (
                QError::Storage(q_storage::StorageError::InvalidAtom(0)),
                500,
            ),
        ];
        for (err, status) in cases {
            let wire = WireError::from_qerror(&err);
            assert_eq!(wire.status, status);
            assert_eq!(wire.code, err.code());
            // Error bodies round-trip through the error decoder.
            let decoded = decode_error(&reparse(&wire.to_json()), status).unwrap();
            assert_eq!(decoded, wire);
        }
    }
}
