//! The on-disk container: header, section table, checksummed payloads, and
//! the atomic write / validating read entry points.
//!
//! ## File layout (format version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic  89 51 53 4E 41 50 0D 0A  ("\x89QSNAP\r\n")
//!      8     4  format version (u32 LE)
//!     12     4  section count N (u32 LE)
//!     16     8  checksum64 of the N*32-byte section table (u64 LE)
//!     24  N*32  section table: per section
//!                 kind (u16 LE) | pad (u16) | reserved (u32) |
//!                 payload offset (u64 LE) | payload len (u64 LE) |
//!                 payload checksum64 (u64 LE)
//!   ....        contiguous section payloads
//! ```
//!
//! The magic borrows PNG's trick: a high-bit first byte plus an embedded
//! `\r\n` so text-mode transfer mangling is caught before any parsing.
//! Validation is strictly layered — magic, version, table bounds, table
//! checksum, per-section bounds, then per-section decode with invariant
//! checks, then cross-validation against the meta section. A file failing
//! any layer yields a typed [`SnapError`] and **no** partially constructed
//! graph.
//!
//! The reader never buffers the whole file: payloads stream off the
//! descriptor section by section through [`SectionStream`], which digests
//! every byte as it lands in its final allocation. Small sections are
//! checksum-verified before they decode; the two big streaming sections
//! (catalog, keyword) decode as they stream, so corrupted bytes there may
//! surface as a decode-invariant error instead of a checksum mismatch —
//! either way typed, and the checksum is still verified for any section that
//! parses.

use std::fs;
use std::io::{Read, Write};
use std::path::Path;

use q_graph::keyword::KeywordIndex;
use q_graph::{GraphShards, SearchGraph, ShardSet, ShardedKeywordIndex};
use q_storage::Catalog;

use crate::bytes::{checksum64, ByteReader, ByteWriter};
use crate::codec;
use crate::error::SnapError;
use crate::stream::SectionStream;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = [0x89, b'Q', b'S', b'N', b'A', b'P', 0x0D, 0x0A];

/// The format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size: magic + version + section count + table checksum.
const HEADER_BYTES: usize = 24;
/// Bytes per section-table entry.
const TABLE_ENTRY_BYTES: usize = 32;
/// Upper bound on the section count — a real snapshot has `7 + K` sections,
/// so anything near this is a corrupt header, rejected before the table is
/// even sized.
const MAX_SECTIONS: usize = 4096;

/// What each section of the file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Snapshot id and structure counts (the cross-validation anchor).
    Meta,
    /// The catalog: sources, relations, tuples, attributes, foreign keys.
    Catalog,
    /// Search graph nodes, edges, cost model, provenance.
    Graph,
    /// The graph's packed global CSR adjacency.
    GraphCsr,
    /// The columnar keyword index.
    Keyword,
    /// Shard plan, keyword partition and per-shard CSR dimensions.
    ShardMeta,
    /// One shard's interior sub-CSR, headerless (payload length is exactly
    /// the CSR's `byte_size`). Appears once per shard, in shard order.
    ShardInterior,
    /// The shared boundary CSR, headerless like the interiors.
    ShardBoundary,
}

impl SectionKind {
    fn to_u16(self) -> u16 {
        match self {
            SectionKind::Meta => 1,
            SectionKind::Catalog => 2,
            SectionKind::Graph => 3,
            SectionKind::GraphCsr => 4,
            SectionKind::Keyword => 5,
            SectionKind::ShardMeta => 6,
            SectionKind::ShardInterior => 7,
            SectionKind::ShardBoundary => 8,
        }
    }

    fn from_u16(v: u16) -> Result<Self, SnapError> {
        Ok(match v {
            1 => SectionKind::Meta,
            2 => SectionKind::Catalog,
            3 => SectionKind::Graph,
            4 => SectionKind::GraphCsr,
            5 => SectionKind::Keyword,
            6 => SectionKind::ShardMeta,
            7 => SectionKind::ShardInterior,
            8 => SectionKind::ShardBoundary,
            _ => {
                return Err(SnapError::Corrupt {
                    context: "unknown section kind",
                })
            }
        })
    }
}

/// Borrowed inputs to [`write_snapshot`] — exactly what a serving
/// `GraphSnapshot` holds.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotComponents<'a> {
    /// Snapshot id (the weight epoch it serves).
    pub id: u64,
    /// The catalog.
    pub catalog: &'a Catalog,
    /// The search graph.
    pub graph: &'a SearchGraph,
    /// The keyword index.
    pub keyword: &'a KeywordIndex,
    /// The shard structure.
    pub shards: &'a ShardSet,
}

/// Owned output of [`read_snapshot`]: every component reconstructed, ready
/// to serve without re-running matching or finalization.
#[derive(Debug)]
pub struct SnapshotParts {
    /// Snapshot id persisted at write time.
    pub id: u64,
    /// `ShardSet::total_bytes` persisted at write time (revalidated against
    /// the reconstructed set).
    pub accounted_bytes: u64,
    /// The catalog.
    pub catalog: Catalog,
    /// The search graph (CSR included).
    pub graph: SearchGraph,
    /// The keyword index.
    pub keyword: KeywordIndex,
    /// The shard structure, with a freshly derived stamp.
    pub shards: ShardSet,
}

/// Section accounting returned by both the writer and the reader.
#[derive(Debug, Clone, Default)]
pub struct SnapshotInfo {
    /// `(kind, payload bytes)` per section, in file order.
    pub sections: Vec<(SectionKind, u64)>,
    /// Sum of all section payload bytes.
    pub payload_bytes: u64,
    /// Total file size including header and table.
    pub file_bytes: u64,
}

impl SnapshotInfo {
    /// Payload bytes of every section of one kind (the shard CSR sections
    /// appear multiple times).
    pub fn kind_bytes(&self, kind: SectionKind) -> u64 {
        self.sections
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, len)| len)
            .sum()
    }
}

fn encode_meta(c: &SnapshotComponents<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(c.id);
    w.u32(c.shards.shard_count() as u32);
    w.u64(c.graph.node_count() as u64);
    w.u64(c.graph.edge_count() as u64);
    w.u64(c.keyword.len() as u64);
    w.u64(c.catalog.relations().len() as u64);
    w.u64(c.shards.total_bytes());
    w.into_bytes()
}

#[derive(Debug)]
struct Meta {
    id: u64,
    shard_count: usize,
    node_count: usize,
    edge_count: usize,
    doc_count: usize,
    relation_count: usize,
    accounted_bytes: u64,
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, SnapError> {
    let mut r = ByteReader::new(bytes, "meta");
    let meta = Meta {
        id: r.u64()?,
        shard_count: r.u32()? as usize,
        node_count: r.u64()? as usize,
        edge_count: r.u64()? as usize,
        doc_count: r.u64()? as usize,
        relation_count: r.u64()? as usize,
        accounted_bytes: r.u64()?,
    };
    r.expect_end()?;
    Ok(meta)
}

/// Serialise every component into the versioned section container and write
/// it to `path` atomically: the bytes go to a `.tmp` sibling first, are
/// fsynced, and only then renamed over the target, so a crash mid-write can
/// never leave a half-written file under the snapshot name.
pub fn write_snapshot(
    path: &Path,
    components: &SnapshotComponents<'_>,
) -> Result<SnapshotInfo, SnapError> {
    let shards = components.shards;
    let graph_shards = shards.graph_shards();
    let shard_meta = codec::ShardMeta {
        plan: shards.plan().clone(),
        shard_of_doc: shards.keyword_partition().shard_of_doc().to_vec(),
        postings_bytes: shards.keyword_partition().postings_bytes().to_vec(),
        interior_dims: graph_shards
            .interior_csrs()
            .iter()
            .map(|c| (c.offsets().len(), c.targets().len()))
            .collect(),
        interior_edge_counts: graph_shards.interior_edge_counts().to_vec(),
        boundary_dims: (
            graph_shards.boundary_csr().offsets().len(),
            graph_shards.boundary_csr().targets().len(),
        ),
        boundary_edge_count: graph_shards.boundary_edge_count(),
    };

    let mut sections: Vec<(SectionKind, Vec<u8>)> = vec![
        (SectionKind::Meta, encode_meta(components)),
        (
            SectionKind::Catalog,
            codec::encode_catalog(components.catalog),
        ),
        (SectionKind::Graph, codec::encode_graph(components.graph)),
        (
            SectionKind::GraphCsr,
            codec::encode_graph_csr(components.graph.csr()),
        ),
        (
            SectionKind::Keyword,
            codec::encode_keyword(&components.keyword.view()),
        ),
        (
            SectionKind::ShardMeta,
            codec::encode_shard_meta(&shard_meta),
        ),
    ];
    for csr in graph_shards.interior_csrs() {
        sections.push((SectionKind::ShardInterior, codec::encode_csr_raw(csr)));
    }
    sections.push((
        SectionKind::ShardBoundary,
        codec::encode_csr_raw(graph_shards.boundary_csr()),
    ));

    // Assemble header + table + payloads.
    let mut table = ByteWriter::with_capacity(sections.len() * TABLE_ENTRY_BYTES);
    let mut offset = (HEADER_BYTES + sections.len() * TABLE_ENTRY_BYTES) as u64;
    for (kind, payload) in &sections {
        table.u16(kind.to_u16());
        table.u16(0);
        table.u32(0);
        table.u64(offset);
        table.u64(payload.len() as u64);
        table.u64(checksum64(payload));
        offset += payload.len() as u64;
    }
    let table = table.into_bytes();
    let mut file = ByteWriter::with_capacity(offset as usize);
    file.raw(&MAGIC);
    file.u32(FORMAT_VERSION);
    file.u32(sections.len() as u32);
    file.u64(checksum64(&table));
    file.raw(&table);
    let mut info = SnapshotInfo::default();
    for (kind, payload) in &sections {
        file.raw(payload);
        info.sections.push((*kind, payload.len() as u64));
        info.payload_bytes += payload.len() as u64;
    }
    let bytes = file.into_bytes();
    info.file_bytes = bytes.len() as u64;

    // Atomic replace: temp sibling, fsync, rename, best-effort dir fsync.
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or(SnapError::Corrupt {
            context: "snapshot path has no file name",
        })?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let write_result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| SnapError::io("creating temp file", e))?;
        f.write_all(&bytes)
            .map_err(|e| SnapError::io("writing snapshot bytes", e))?;
        f.sync_all()
            .map_err(|e| SnapError::io("fsyncing snapshot", e))?;
        fs::rename(&tmp, path).map_err(|e| SnapError::io("renaming snapshot into place", e))
    })();
    if let Err(err) = write_result {
        let _ = fs::remove_file(&tmp);
        return Err(err);
    }
    if let Some(dir) = path.parent() {
        // Durability of the rename itself; failure here does not invalidate
        // the written file.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(info)
}

struct TableEntry {
    kind: SectionKind,
    len: usize,
    checksum: u64,
}

/// Read exactly `buf.len()` bytes, mapping a short read to [`SnapError::Truncated`].
fn read_exact(file: &mut fs::File, buf: &mut [u8], context: &'static str) -> Result<(), SnapError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapError::Truncated { context }
        } else {
            SnapError::io("reading snapshot file", e)
        }
    })
}

/// Parse and validate the header and section table from the front of the
/// file, leaving the cursor at the first payload byte. `file_len` bounds the
/// contiguous-tiling check the old whole-file reader did with `bytes.len()`.
fn read_table(file: &mut fs::File, file_len: u64) -> Result<Vec<TableEntry>, SnapError> {
    let mut header = [0u8; HEADER_BYTES];
    read_exact(file, &mut header, "file header")?;
    if header[..8] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let mut r = ByteReader::new(&header[8..], "file header");
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let section_count = r.u32()? as usize;
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(SnapError::Corrupt {
            context: "implausible section count",
        });
    }
    let table_checksum = r.u64()?;
    let mut table_bytes = vec![0u8; section_count * TABLE_ENTRY_BYTES];
    read_exact(file, &mut table_bytes, "section table")?;
    if checksum64(&table_bytes) != table_checksum {
        return Err(SnapError::ChecksumMismatch {
            region: "section table",
        });
    }
    let mut entries = Vec::with_capacity(section_count);
    let mut r = ByteReader::new(&table_bytes, "section table");
    let mut expected_offset = (HEADER_BYTES + table_bytes.len()) as u64;
    for _ in 0..section_count {
        let kind = SectionKind::from_u16(r.u16()?)?;
        r.u16()?;
        r.u32()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let checksum = r.u64()?;
        // Payloads must tile the rest of the file contiguously, which is
        // what lets the reader stream them without seeking.
        if offset != expected_offset || offset.checked_add(len).is_none_or(|e| e > file_len) {
            return Err(SnapError::Truncated {
                context: "section payload",
            });
        }
        expected_offset = offset + len;
        entries.push(TableEntry {
            kind,
            len: usize::try_from(len).map_err(|_| SnapError::Truncated {
                context: "section payload",
            })?,
            checksum,
        });
    }
    if expected_offset != file_len {
        return Err(SnapError::Corrupt {
            context: "trailing bytes after last section",
        });
    }
    Ok(entries)
}

/// Require the fully-drained stream's digest to match the table entry.
fn verify_digest<R: Read>(
    stream: &SectionStream<'_, R>,
    entry: &TableEntry,
) -> Result<(), SnapError> {
    stream.expect_end()?;
    if stream.digest() != entry.checksum {
        return Err(SnapError::ChecksumMismatch {
            region: "section payload",
        });
    }
    Ok(())
}

fn no_dup<T>(slot: &Option<T>) -> Result<(), SnapError> {
    if slot.is_some() {
        Err(SnapError::Corrupt {
            context: "duplicate section",
        })
    } else {
        Ok(())
    }
}

fn require<T>(slot: Option<T>) -> Result<T, SnapError> {
    slot.ok_or(SnapError::Corrupt {
        context: "missing required section",
    })
}

/// Read and fully validate a snapshot file, reconstructing every serving
/// component.
///
/// Sections stream off the descriptor in file order, each through its own
/// [`SectionStream`] that checksums bytes as they land in their final
/// allocations — the big arrays are faulted in exactly once, which is what
/// keeps a ~100 MB boot under the millisecond budget.
pub fn read_snapshot(path: &Path) -> Result<(SnapshotParts, SnapshotInfo), SnapError> {
    let mut file = fs::File::open(path).map_err(|e| SnapError::io("opening snapshot file", e))?;
    let file_len = file
        .metadata()
        .map_err(|e| SnapError::io("statting snapshot file", e))?
        .len();
    let entries = read_table(&mut file, file_len)?;

    let mut meta: Option<Meta> = None;
    let mut catalog: Option<Catalog> = None;
    let mut graph_bytes: Option<Vec<u8>> = None;
    let mut csr: Option<q_graph::Csr> = None;
    let mut keyword: Option<KeywordIndex> = None;
    let mut shard_meta: Option<codec::ShardMeta> = None;
    let mut interior_bytes: Vec<Vec<u8>> = Vec::new();
    let mut boundary_bytes: Option<Vec<u8>> = None;

    for entry in &entries {
        match entry.kind {
            // The two big sections decode while they stream; every other
            // section is small enough to drain first (checksum before
            // decode) and hand to its ByteReader decoder.
            SectionKind::Catalog => {
                no_dup(&catalog)?;
                let mut s = SectionStream::new(&mut file, entry.len, "catalog");
                let decoded = codec::decode_catalog(&mut s)?;
                verify_digest(&s, entry)?;
                catalog = Some(decoded);
            }
            SectionKind::Keyword => {
                no_dup(&keyword)?;
                let mut s = SectionStream::new(&mut file, entry.len, "keyword index");
                let decoded = codec::decode_keyword(&mut s)?;
                verify_digest(&s, entry)?;
                keyword = Some(decoded);
            }
            kind => {
                let context = match kind {
                    SectionKind::Meta => "meta",
                    SectionKind::Graph => "graph",
                    SectionKind::GraphCsr => "graph csr",
                    SectionKind::ShardMeta => "shard meta",
                    SectionKind::ShardInterior => "interior csr",
                    _ => "boundary csr",
                };
                let mut s = SectionStream::new(&mut file, entry.len, context);
                let payload = s.take_rest()?;
                verify_digest(&s, entry)?;
                match kind {
                    SectionKind::Meta => {
                        no_dup(&meta)?;
                        meta = Some(decode_meta(&payload)?);
                    }
                    SectionKind::Graph => {
                        no_dup(&graph_bytes)?;
                        graph_bytes = Some(payload);
                    }
                    SectionKind::GraphCsr => {
                        no_dup(&csr)?;
                        csr = Some(codec::decode_graph_csr(&payload)?);
                    }
                    SectionKind::ShardMeta => {
                        no_dup(&shard_meta)?;
                        shard_meta = Some(codec::decode_shard_meta(&payload)?);
                    }
                    SectionKind::ShardInterior => interior_bytes.push(payload),
                    _ => {
                        no_dup(&boundary_bytes)?;
                        boundary_bytes = Some(payload);
                    }
                }
            }
        }
    }

    let meta = require(meta)?;
    let catalog = require(catalog)?;
    let keyword = require(keyword)?;
    let shard_meta = require(shard_meta)?;
    let graph = codec::decode_graph(&require(graph_bytes)?, require(csr)?)?;

    // Cross-validate the decoded structures against the meta anchor before
    // assembling anything shard-shaped.
    if graph.node_count() != meta.node_count
        || graph.edge_count() != meta.edge_count
        || keyword.len() != meta.doc_count
        || catalog.relations().len() != meta.relation_count
        || shard_meta.plan.shards() != meta.shard_count
    {
        return Err(SnapError::Corrupt {
            context: "meta section disagrees with decoded structures",
        });
    }
    if shard_meta.shard_of_doc.len() != keyword.len() {
        return Err(SnapError::Corrupt {
            context: "keyword partition does not cover the index",
        });
    }

    if interior_bytes.len() != meta.shard_count {
        return Err(SnapError::Corrupt {
            context: "interior section count disagrees with shard count",
        });
    }
    let expected_offsets_len = meta.node_count + 1;
    let mut interior_csrs = Vec::with_capacity(interior_bytes.len());
    for (payload, dims) in interior_bytes.iter().zip(&shard_meta.interior_dims) {
        if dims.0 != expected_offsets_len {
            return Err(SnapError::Corrupt {
                context: "interior csr not sized for the graph",
            });
        }
        interior_csrs.push(codec::decode_csr_raw(
            payload,
            dims.0,
            dims.1,
            "interior csr",
        )?);
    }
    let boundary_payload = require(boundary_bytes)?;
    if shard_meta.boundary_dims.0 != expected_offsets_len {
        return Err(SnapError::Corrupt {
            context: "boundary csr not sized for the graph",
        });
    }
    let boundary = codec::decode_csr_raw(
        &boundary_payload,
        shard_meta.boundary_dims.0,
        shard_meta.boundary_dims.1,
        "boundary csr",
    )?;
    let interior_total: usize = shard_meta.interior_edge_counts.iter().sum();
    if interior_total + shard_meta.boundary_edge_count != meta.edge_count {
        return Err(SnapError::Corrupt {
            context: "shard edge counts do not tile the graph",
        });
    }

    let graph_shards = GraphShards::from_parts(
        interior_csrs,
        boundary,
        shard_meta.interior_edge_counts,
        shard_meta.boundary_edge_count,
    );
    let keyword_shards =
        ShardedKeywordIndex::from_parts(shard_meta.shard_of_doc, shard_meta.postings_bytes);
    let shards = ShardSet::from_parts(
        &catalog,
        &graph,
        &keyword,
        shard_meta.plan,
        graph_shards,
        keyword_shards,
    );
    if shards.total_bytes() != meta.accounted_bytes {
        return Err(SnapError::Corrupt {
            context: "reconstructed shard bytes disagree with persisted accounting",
        });
    }

    let mut info = SnapshotInfo::default();
    for e in &entries {
        info.sections.push((e.kind, e.len as u64));
        info.payload_bytes += e.len as u64;
    }
    info.file_bytes = file_len;

    Ok((
        SnapshotParts {
            id: meta.id,
            accounted_bytes: meta.accounted_bytes,
            catalog,
            graph,
            keyword,
            shards,
        },
        info,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_graph::keyword::MatchConfig;
    use q_storage::{RelationSpec, SourceSpec};

    fn components() -> (Catalog, SearchGraph, KeywordIndex, ShardSet) {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name", "term_type"])
                    .row(["GO:0005134", "plasma membrane", "component"])
                    .row(["GO:0007652", "kinase activity", "function"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("entry", &["entry_ac", "name"]).row(["IPR000001", "Kringle"]),
            )
            .relation(
                RelationSpec::new("interpro2go", &["entry_ac", "go_id"])
                    .row(["IPR000001", "GO:0005134"]),
            )
            .foreign_key("interpro2go.entry_ac", "entry.entry_ac")
            .foreign_key("interpro2go.go_id", "go_term.acc")
            .load_into(&mut cat)
            .unwrap();
        let mut graph = SearchGraph::from_catalog(&cat);
        let a = cat.resolve_qualified("go_term.acc").unwrap();
        let b = cat.resolve_qualified("interpro2go.go_id").unwrap();
        graph.add_association(a, b, "mad", 0.83);
        let index = KeywordIndex::build(&cat);
        let shards = ShardSet::build(&cat, &graph, &index, 2);
        (cat, graph, index, shards)
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("q-snap-file-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_round_trip_restores_every_component() {
        let (cat, graph, index, shards) = components();
        let path = tmp_path("round_trip.qsnap");
        let written = write_snapshot(
            &path,
            &SnapshotComponents {
                id: 41,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        let (parts, read_info) = read_snapshot(&path).unwrap();
        assert_eq!(parts.id, 41);
        assert_eq!(parts.accounted_bytes, shards.total_bytes());
        assert_eq!(parts.catalog.relations(), cat.relations());
        assert_eq!(parts.graph.edges(), graph.edges());
        assert_eq!(parts.graph.csr().offsets(), graph.csr().offsets());
        assert_eq!(parts.keyword.view(), index.view());
        assert_eq!(parts.shards.shard_count(), shards.shard_count());
        assert_eq!(parts.shards.shard_bytes(), shards.shard_bytes());
        assert_eq!(parts.shards.total_bytes(), shards.total_bytes());
        assert!(parts
            .shards
            .is_fresh(&parts.catalog, &parts.graph, &parts.keyword));
        assert_eq!(written.sections.len(), read_info.sections.len());
        assert_eq!(written.payload_bytes, read_info.payload_bytes);
        assert_eq!(
            written.file_bytes,
            fs::metadata(&path).unwrap().len(),
            "info reports the real file size"
        );
        // Matching through the restored shards is identical.
        let cfg = MatchConfig::default();
        for kw in ["membrane", "kinase", "kringle", "name"] {
            assert_eq!(
                parts.shards.keyword_matches(&parts.keyword, kw, &cfg),
                shards.keyword_matches(&index, kw, &cfg),
            );
        }
    }

    #[test]
    fn shard_sections_reconcile_with_in_memory_accounting() {
        let (cat, graph, index, shards) = components();
        let path = tmp_path("accounting.qsnap");
        let info = write_snapshot(
            &path,
            &SnapshotComponents {
                id: 1,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        let csr_disk_bytes = info.kind_bytes(SectionKind::ShardInterior)
            + info.kind_bytes(SectionKind::ShardBoundary);
        let postings: u64 = shards.keyword_partition().postings_bytes().iter().sum();
        assert_eq!(csr_disk_bytes + postings, shards.total_bytes());
    }

    #[test]
    fn non_snapshot_file_is_bad_magic() {
        let path = tmp_path("not_a_snapshot.qsnap");
        fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(matches!(read_snapshot(&path), Err(SnapError::BadMagic)));
    }

    #[test]
    fn future_version_is_unsupported() {
        let (cat, graph, index, shards) = components();
        let path = tmp_path("future.qsnap");
        write_snapshot(
            &path,
            &SnapshotComponents {
                id: 1,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapError::UnsupportedVersion {
                found: 2,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn missing_file_is_io() {
        let path = tmp_path("never_written.qsnap");
        let _ = fs::remove_file(&path);
        assert!(matches!(read_snapshot(&path), Err(SnapError::Io { .. })));
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let (cat, graph, index, shards) = components();
        let path = tmp_path("flip.qsnap");
        write_snapshot(
            &path,
            &SnapshotComponents {
                id: 1,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_typed_not_panic() {
        let (cat, graph, index, shards) = components();
        let path = tmp_path("trunc.qsnap");
        write_snapshot(
            &path,
            &SnapshotComponents {
                id: 1,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 7, 23, 24, 100, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep.min(bytes.len())]).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "truncation to {keep} bytes must fail"
            );
        }
    }
}
