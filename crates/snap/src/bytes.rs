//! Little-endian byte encoding primitives and the folded 64-bit checksum.
//!
//! All multi-byte integers are little-endian; floats are stored as their
//! IEEE-754 bit patterns (`f64::to_bits`), so persisted costs and scores
//! round-trip bit-exactly. Vectors are a `u64` element count followed by the
//! raw elements. Every read is bounds-checked and *count-validated*: a
//! decoded element count must fit in the bytes that remain, so a corrupted
//! count can neither overrun the buffer nor provoke a pathological
//! allocation.

use crate::error::SnapError;

/// Folded 64-bit content checksum.
///
/// A plain byte-at-a-time CRC32 runs near 1 GB/s — ~130 ms over a 100×-tier
/// snapshot, more than the entire boot budget. This checksum instead runs
/// **four interleaved CRC-32C lanes** (lane *i* digests the *i*-th 8-byte
/// word of every 32-byte chunk, so the three-cycle CRC latencies overlap)
/// and folds the lanes together with the total length at the end. On x86-64
/// the lanes use the SSE 4.2 `crc32` instruction — the same hardware path
/// storage engines use for block checksums — and elsewhere a table-driven
/// CRC-32C computes the identical digest, so files are portable across
/// hosts. Detection, not cryptography: any single truncation or bit flip
/// changes the digest, which is all the corruption property tests (and a
/// storage-integrity check) need.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h = Checksummer::new();
    h.update(data);
    h.finalize()
}

const MUL: u64 = 0x0000_0100_0000_01B3;
const SEEDS: [u64; 4] = [
    0xcbf2_9ce4_8422_2325,
    0x9e37_79b9_7f4a_7c15,
    0xd6e8_feb8_6659_fd93,
    0xa076_1d64_78bd_642f,
];

/// Slicing-by-8 lookup tables for the reflected CRC-32C (Castagnoli)
/// polynomial — the software twin of the SSE 4.2 `crc32` instruction.
const fn crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

/// One CRC-32C step over an 8-byte word, software path. Bit-identical to
/// `_mm_crc32_u64(crc, word)`.
#[inline]
fn crc32c_u64_sw(crc: u32, word: u64) -> u32 {
    let x = word ^ crc as u64;
    let b = x.to_le_bytes();
    CRC32C_TABLES[7][b[0] as usize]
        ^ CRC32C_TABLES[6][b[1] as usize]
        ^ CRC32C_TABLES[5][b[2] as usize]
        ^ CRC32C_TABLES[4][b[3] as usize]
        ^ CRC32C_TABLES[3][b[4] as usize]
        ^ CRC32C_TABLES[2][b[5] as usize]
        ^ CRC32C_TABLES[1][b[6] as usize]
        ^ CRC32C_TABLES[0][b[7] as usize]
}

#[cfg(target_arch = "x86_64")]
fn crc32c_hw_available() -> bool {
    std::arch::is_x86_feature_detected!("sse4.2")
}

/// Digest full 32-byte chunks with the hardware `crc32` instruction.
/// Returns the number of bytes consumed.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn mix_chunks_hw(lanes: &mut [u64; 4], data: &[u8]) -> usize {
    use core::arch::x86_64::_mm_crc32_u64;
    let mut consumed = 0;
    for chunk in data.chunks_exact(32) {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
            *lane = _mm_crc32_u64(*lane, word);
        }
        consumed += 32;
    }
    consumed
}

/// Digest full 32-byte chunks with the table-driven CRC-32C. Returns the
/// number of bytes consumed.
fn mix_chunks_sw(lanes: &mut [u64; 4], data: &[u8]) -> usize {
    let mut consumed = 0;
    for chunk in data.chunks_exact(32) {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
            *lane = crc32c_u64_sw(*lane as u32, word) as u64;
        }
        consumed += 32;
    }
    consumed
}

fn mix_chunks(lanes: &mut [u64; 4], data: &[u8]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if crc32c_hw_available() {
        // SAFETY: the sse4.2 feature was just verified at runtime.
        return unsafe { mix_chunks_hw(lanes, data) };
    }
    mix_chunks_sw(lanes, data)
}

/// Incremental [`checksum64`]: feeding the same bytes through any sequence
/// of [`Checksummer::update`] calls yields the same digest as one-shot
/// `checksum64` over their concatenation.
///
/// The streaming read path depends on this: section payloads are digested
/// chunk-by-chunk as they come off the file descriptor — while still
/// cache-hot — instead of in a second full pass over a 100 MB buffer.
#[derive(Debug, Clone)]
pub struct Checksummer {
    lanes: [u64; 4],
    /// Bytes carried between `update` calls until a full 32-byte chunk
    /// accumulates.
    pending: [u8; 32],
    pending_len: usize,
    total: u64,
}

impl Default for Checksummer {
    fn default() -> Self {
        Checksummer::new()
    }
}

impl Checksummer {
    /// Fresh digest state.
    pub fn new() -> Self {
        Checksummer {
            lanes: SEEDS,
            pending: [0u8; 32],
            pending_len: 0,
            total: 0,
        }
    }

    /// Absorb more bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        if self.pending_len > 0 {
            let take = (32 - self.pending_len).min(data.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&data[..take]);
            self.pending_len += take;
            data = &data[take..];
            if self.pending_len < 32 {
                return;
            }
            let full = self.pending;
            mix_chunks(&mut self.lanes, &full);
            self.pending_len = 0;
        }
        let consumed = mix_chunks(&mut self.lanes, data);
        let rem = &data[consumed..];
        self.pending[..rem.len()].copy_from_slice(rem);
        self.pending_len = rem.len();
    }

    /// Digest of everything absorbed so far. Does not consume the state, so
    /// a caller may keep feeding bytes afterwards, but the padded remainder
    /// chunk means digests are only comparable at identical byte counts.
    pub fn finalize(&self) -> u64 {
        let mut lanes = self.lanes;
        if self.pending_len > 0 {
            let mut tail = [0u8; 32];
            tail[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            mix_chunks(&mut lanes, &tail);
        }
        let mut h = self.total.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (i, lane) in lanes.iter().enumerate() {
            h = (h ^ lane.rotate_left(i as u32 * 7))
                .wrapping_mul(MUL)
                .rotate_left(29);
        }
        h
    }
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Empty writer with `capacity` bytes pre-allocated (section payloads
    /// size this from the in-memory accounting, e.g. [`q_graph::Csr`]'s
    /// `byte_size`).
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed string (`u32` byte length + UTF-8 bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u8` vector.
    pub fn vec_u8(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `f64` vector (bit patterns).
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Which structure this reader is decoding — reported by truncation
    /// errors.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Decode from `data`, reporting `context` in truncation errors.
    pub fn new(data: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            data,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if n > self.remaining() {
            return Err(SnapError::Truncated {
                context: self.context,
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validate that a count of `elem_size`-byte elements fits in the
    /// remaining bytes, returning it as `usize`. Rejecting impossible counts
    /// up front means a corrupted length can never provoke a huge
    /// allocation.
    fn count(&self, n: u64, elem_size: usize) -> Result<usize, SnapError> {
        let n = usize::try_from(n).map_err(|_| SnapError::Truncated {
            context: self.context,
        })?;
        match n.checked_mul(elem_size) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(SnapError::Truncated {
                context: self.context,
            }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt {
            context: "invalid utf-8 in string",
        })
    }

    /// Read a length-prefixed `u8` vector.
    pub fn vec_u8(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed `u32` vector.
    ///
    /// Decodes into a pre-zeroed buffer with an index-free loop: LLVM turns
    /// the zip over `chunks_exact` into wide vector loads, which matters when
    /// a section is tens of megabytes of postings (the `extend`-an-iterator
    /// shape keeps a capacity check per element and decodes ~5x slower).
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 4)?;
        let bytes = self.take(n * 4)?;
        let mut v = vec![0u32; n];
        for (dst, src) in v.iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = u32::from_le_bytes(src.try_into().expect("4 bytes"));
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 8)?;
        let bytes = self.take(n * 8)?;
        let mut v = vec![0u64; n];
        for (dst, src) in v.iter_mut().zip(bytes.chunks_exact(8)) {
            *dst = u64::from_le_bytes(src.try_into().expect("8 bytes"));
        }
        Ok(v)
    }

    /// Read a length-prefixed `f64` vector (bit patterns).
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 8)?;
        let bytes = self.take(n * 8)?;
        let mut v = vec![0.0f64; n];
        for (dst, src) in v.iter_mut().zip(bytes.chunks_exact(8)) {
            *dst = f64::from_bits(u64::from_le_bytes(src.try_into().expect("8 bytes")));
        }
        Ok(v)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Read a count that the caller will use to loop over variable-size
    /// records, validated against a minimum per-record size.
    pub fn record_count(&mut self, min_record_size: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        self.count(n, min_record_size.max(1))
    }

    /// Require that every byte was consumed — trailing garbage means the
    /// payload does not parse as the structure it claims to be.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt {
                context: "trailing bytes after structure",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.str("plasma membrane");
        w.vec_u32(&[1, 2, 3]);
        w.vec_u64(&[u64::MAX]);
        w.vec_f64(&[1.5, f64::INFINITY]);
        w.vec_u8(&[9, 8]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "plasma membrane");
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.vec_u64().unwrap(), vec![u64::MAX]);
        let floats = r.vec_f64().unwrap();
        assert_eq!(floats[0], 1.5);
        assert!(floats[1].is_infinite());
        assert_eq!(r.vec_u8().unwrap(), vec![9, 8]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4], "short");
        assert!(matches!(
            r.u64(),
            Err(SnapError::Truncated { context: "short" })
        ));
    }

    #[test]
    fn impossible_counts_are_rejected_before_allocation() {
        // A vector claiming u64::MAX elements in a tiny buffer must fail
        // cleanly (no multi-exabyte Vec::with_capacity).
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "count");
        assert!(matches!(r.vec_u32(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_corrupt_not_panic() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "str");
        assert!(matches!(r.str(), Err(SnapError::Corrupt { .. })));
    }

    #[test]
    fn checksum_detects_flips_truncation_and_extension() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let base = checksum64(&data);
        // Any single-bit flip anywhere changes the digest.
        for pos in [0, 7, 31, 32, 999, data.len() - 1] {
            let mut flipped = data.clone();
            flipped[pos] ^= 1;
            assert_ne!(checksum64(&flipped), base, "flip at {pos} undetected");
        }
        // Truncation and zero-extension change it too.
        assert_ne!(checksum64(&data[..data.len() - 1]), base);
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(checksum64(&extended), base);
        // Empty and tiny inputs are well-defined and distinct.
        assert_ne!(checksum64(&[]), checksum64(&[0]));
        assert_ne!(checksum64(&[0]), checksum64(&[0, 0]));
    }

    #[test]
    fn streaming_checksum_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..4099u32)
            .map(|x| (x.wrapping_mul(31) >> 3) as u8)
            .collect();
        let expect = checksum64(&data);
        // Split points chosen to land inside, on, and across the 32-byte
        // chunk boundary, plus degenerate empty updates.
        for splits in [
            vec![0, 0, 4099],
            vec![1, 31, 32, 33, 4002],
            vec![32, 32, 32, 4003],
            vec![17, 17, 17, 4048],
            vec![4099],
            vec![4098, 1],
        ] {
            assert_eq!(splits.iter().sum::<usize>(), data.len());
            let mut h = Checksummer::new();
            let mut at = 0;
            for s in splits {
                h.update(&data[at..at + s]);
                at += s;
            }
            assert_eq!(h.finalize(), expect);
        }
    }

    /// Files written on an SSE 4.2 host must verify on a host without it:
    /// the hardware and table-driven CRC-32C lanes have to compute the same
    /// function, bit for bit.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_and_software_crc_lanes_agree() {
        if !crc32c_hw_available() {
            return; // nothing to compare against on this host
        }
        let data: Vec<u8> = (0..4096u32)
            .flat_map(|x| x.wrapping_mul(0x9E37_79B9).to_le_bytes())
            .collect();
        for len in [32, 64, 96, 4096, data.len()] {
            let mut hw = SEEDS;
            let mut sw = SEEDS;
            // SAFETY: sse4.2 presence was checked above.
            let ch = unsafe { mix_chunks_hw(&mut hw, &data[..len]) };
            let cs = mix_chunks_sw(&mut sw, &data[..len]);
            assert_eq!(ch, cs);
            assert_eq!(hw, sw, "lane divergence at {len} bytes");
        }
        // And per-word: every byte pattern through both single steps.
        use core::arch::x86_64::_mm_crc32_u64;
        for word in [
            0u64,
            1,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
            0x8000_0000_0000_0001,
        ] {
            for crc in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF] {
                let hw = unsafe { _mm_crc32_u64(crc as u64, word) };
                assert_eq!(hw, crc32c_u64_sw(crc, word) as u64);
            }
        }
    }

    #[test]
    fn checksum_is_deterministic() {
        let data = b"the same bytes always digest the same".to_vec();
        assert_eq!(checksum64(&data), checksum64(&data.clone()));
    }
}
