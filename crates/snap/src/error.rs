//! Typed snapshot errors.
//!
//! Every failure mode of the snapshot store — I/O, a foreign or truncated
//! file, a corrupted section, an unsupported format version — surfaces as a
//! [`SnapError`] variant. Nothing in this crate panics on malformed input:
//! the reader validates magic, version, table and per-section checksums
//! before decoding, and every decode read is bounds-checked, so a corrupt
//! file can never yield a partially-loaded graph (the corruption property
//! tests pin this).

use std::fmt;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum SnapError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing when the I/O failed.
        context: &'static str,
        /// The failing operation's error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file ended before a structure was complete.
    Truncated {
        /// The structure being read when the bytes ran out.
        context: &'static str,
    },
    /// A checksum over the section table or a section payload disagreed
    /// with the stored value — the bytes were altered after writing.
    ChecksumMismatch {
        /// The region whose checksum failed.
        region: &'static str,
    },
    /// The bytes decoded but violate an internal invariant (dangling id,
    /// impossible count, inconsistent cross-reference).
    Corrupt {
        /// The violated invariant.
        context: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io { context, source } => {
                write!(f, "snapshot i/o failed while {context}: {source}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapError::ChecksumMismatch { region } => {
                write!(f, "snapshot checksum mismatch in {region}")
            }
            SnapError::Corrupt { context } => {
                write!(f, "snapshot corrupt: {context}")
            }
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SnapError {
    /// Wrap an I/O error with what the store was doing.
    pub fn io(context: &'static str, source: std::io::Error) -> Self {
        SnapError::Io { context, source }
    }
}
