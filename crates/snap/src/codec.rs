//! Per-section payload encodings.
//!
//! Each section of a snapshot file is an independent byte string with its own
//! checksum; this module defines how every section's payload is laid out and
//! how it decodes back into the in-memory structures. Encoders walk the
//! borrowed accessors of the live structures; decoders validate every
//! invariant the `from_parts` constructors rely on (index bounds, monotone
//! offset arrays, matching column lengths) before reassembling, so a payload
//! that passes its checksum but violates an invariant still surfaces as a
//! typed [`SnapError::Corrupt`] rather than a panic or a partially-loaded
//! graph.
//!
//! The shard interior/boundary CSR sections are deliberately *headerless*:
//! their payloads are exactly the packed offset and target arrays, so each
//! section's on-disk length equals the corresponding
//! [`Csr::byte_size`] — the same accounting the `/metrics`
//! `q_snapshot_bytes` gauge reports. Their dimensions live in the shard-meta
//! section.

use q_graph::keyword::{KeywordIndex, KeywordIndexParts, KeywordIndexView};
use q_graph::{
    AssociationProvenance, Csr, Edge, EdgeId, EdgeKind, FeatureId, FeatureSpace, FeatureVector,
    Node, NodeId, SearchGraph, SearchGraphParts, ShardPlan, WeightVector,
};
use q_storage::{
    Attribute, AttributeId, Catalog, ForeignKey, Relation, RelationId, Source, SourceId, Tuple,
    Value,
};

use crate::bytes::{ByteReader, ByteWriter};
use crate::error::SnapError;
use crate::stream::SectionStream;
use std::io::Read;

// ----------------------------------------------------------------------
// Catalog section
// ----------------------------------------------------------------------

/// Encode the whole catalog: sources, relations (with their stored tuples),
/// attributes and foreign keys, each in id order.
///
/// Tuple values are stored **columnar per relation** — a tag byte per value,
/// the numeric bit patterns, and all text concatenated into one blob with
/// end offsets — so the hot boot path decodes a relation's data with four
/// bulk reads and one UTF-8 validation instead of three small reads per
/// value. Tuples carry no per-tuple arity: it is the relation's arity.
pub fn encode_catalog(cat: &Catalog) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(cat.sources().len() as u64);
    for s in cat.sources() {
        w.u32(s.id.0);
        w.str(&s.name);
        w.u64(s.relations.len() as u64);
        for r in &s.relations {
            w.u32(r.0);
        }
    }
    w.u64(cat.relations().len() as u64);
    for rel in cat.relations() {
        w.u32(rel.id.0);
        w.u32(rel.source.0);
        w.str(&rel.name);
        w.u64(rel.attributes.len() as u64);
        for a in &rel.attributes {
            w.u32(a.0);
        }
        w.u64(rel.tuples.len() as u64);
        let mut tags = Vec::with_capacity(rel.tuples.len() * rel.attributes.len());
        let mut nums: Vec<u64> = Vec::new();
        let mut text_ends: Vec<u32> = Vec::new();
        let mut blob: Vec<u8> = Vec::new();
        for t in &rel.tuples {
            debug_assert_eq!(t.arity(), rel.attributes.len());
            for v in t.values() {
                match v {
                    Value::Null => tags.push(0),
                    Value::Int(i) => {
                        tags.push(1);
                        nums.push(*i as u64);
                    }
                    Value::Float(x) => {
                        tags.push(2);
                        nums.push(x.to_bits());
                    }
                    Value::Text(s) => {
                        tags.push(3);
                        blob.extend_from_slice(s.as_bytes());
                        text_ends
                            .push(u32::try_from(blob.len()).expect("relation text under 4 GiB"));
                    }
                }
            }
        }
        w.vec_u8(&tags);
        w.vec_u64(&nums);
        w.vec_u32(&text_ends);
        w.vec_u8(&blob);
    }
    w.u64(cat.attributes().len() as u64);
    for a in cat.attributes() {
        w.u32(a.id.0);
        w.u32(a.relation.0);
        w.str(&a.name);
        w.u64(a.position as u64);
    }
    w.u64(cat.foreign_keys().len() as u64);
    for fk in cat.foreign_keys() {
        w.u32(fk.from.0);
        w.u32(fk.to.0);
    }
    w.into_bytes()
}

/// Decode one relation's columnar tuple block back into owned tuples.
fn decode_tuples(
    r: &mut SectionStream<'_, impl Read>,
    arity: usize,
) -> Result<Vec<Tuple>, SnapError> {
    let n_tuples = r.record_count(arity)?;
    let tags = r.vec_u8()?;
    let nums = r.vec_u64()?;
    let text_ends = r.vec_u32()?;
    let blob_bytes = r.vec_u8()?;
    if Some(tags.len()) != n_tuples.checked_mul(arity) {
        return Err(SnapError::Corrupt {
            context: "tuple tags do not tile the relation",
        });
    }
    let blob = String::from_utf8(blob_bytes).map_err(|_| SnapError::Corrupt {
        context: "tuple text blob is not utf-8",
    })?;
    // Everything else validates inside the single materialization pass:
    // unknown tags surface from the match, column over/underruns from the
    // iterators, and non-monotone or char-splitting text offsets from
    // `str::get` returning None.
    let mut tuples = Vec::with_capacity(n_tuples);
    if arity == 0 {
        tuples.resize_with(n_tuples, Tuple::default);
        return Ok(tuples);
    }
    let corrupt = |context| SnapError::Corrupt { context };
    let mut nums_it = nums.iter();
    let mut ends_it = text_ends.iter();
    let mut start = 0usize;
    for chunk in tags.chunks_exact(arity) {
        let mut values = Vec::with_capacity(arity);
        for &tag in chunk {
            values.push(match tag {
                0 => Value::Null,
                1 => Value::Int(
                    *nums_it
                        .next()
                        .ok_or_else(|| corrupt("tuple value columns disagree with tags"))?
                        as i64,
                ),
                2 => Value::Float(f64::from_bits(
                    *nums_it
                        .next()
                        .ok_or_else(|| corrupt("tuple value columns disagree with tags"))?,
                )),
                3 => {
                    let end = *ends_it
                        .next()
                        .ok_or_else(|| corrupt("tuple value columns disagree with tags"))?
                        as usize;
                    let text = blob
                        .get(start..end)
                        .ok_or_else(|| corrupt("tuple text offsets do not tile the blob"))?;
                    start = end;
                    Value::Text(text.to_string())
                }
                _ => return Err(corrupt("unknown value tag")),
            });
        }
        tuples.push(Tuple::new(values));
    }
    if nums_it.next().is_some() || ends_it.next().is_some() || start != blob.len() {
        return Err(corrupt("tuple value columns disagree with tags"));
    }
    Ok(tuples)
}

/// Decode a catalog section from the snapshot stream.
pub fn decode_catalog(r: &mut SectionStream<'_, impl Read>) -> Result<Catalog, SnapError> {
    let n_sources = r.record_count(5)?;
    let mut sources = Vec::with_capacity(n_sources);
    for i in 0..n_sources {
        let id = r.u32()?;
        if id as usize != i {
            return Err(SnapError::Corrupt {
                context: "source ids out of order",
            });
        }
        let name = r.str()?;
        let relations = r.vec_u32()?.into_iter().map(RelationId).collect::<Vec<_>>();
        sources.push(Source {
            id: SourceId(id),
            name,
            relations,
        });
    }
    let n_relations = r.record_count(9)?;
    let mut relations = Vec::with_capacity(n_relations);
    for i in 0..n_relations {
        let id = r.u32()?;
        if id as usize != i {
            return Err(SnapError::Corrupt {
                context: "relation ids out of order",
            });
        }
        let source = SourceId(r.u32()?);
        if source.index() >= n_sources {
            return Err(SnapError::Corrupt {
                context: "relation references unknown source",
            });
        }
        let name = r.str()?;
        let attributes = r
            .vec_u32()?
            .into_iter()
            .map(AttributeId)
            .collect::<Vec<_>>();
        let tuples = decode_tuples(r, attributes.len())?;
        relations.push(Relation {
            id: RelationId(id),
            source,
            name,
            attributes,
            tuples,
        });
    }
    let n_attributes = r.record_count(13)?;
    let mut attributes = Vec::with_capacity(n_attributes);
    for i in 0..n_attributes {
        let id = r.u32()?;
        if id as usize != i {
            return Err(SnapError::Corrupt {
                context: "attribute ids out of order",
            });
        }
        let relation = RelationId(r.u32()?);
        if relation.index() >= n_relations {
            return Err(SnapError::Corrupt {
                context: "attribute references unknown relation",
            });
        }
        let name = r.str()?;
        let position = r.u64()? as usize;
        attributes.push(Attribute {
            id: AttributeId(id),
            relation,
            name,
            position,
        });
    }
    // Relations' attribute lists must point inside the attribute table.
    for rel in &relations {
        if rel.attributes.iter().any(|a| a.index() >= n_attributes) {
            return Err(SnapError::Corrupt {
                context: "relation references unknown attribute",
            });
        }
    }
    for src in &sources {
        if src.relations.iter().any(|r| r.index() >= n_relations) {
            return Err(SnapError::Corrupt {
                context: "source references unknown relation",
            });
        }
    }
    let n_fks = r.record_count(8)?;
    let mut foreign_keys = Vec::with_capacity(n_fks);
    for _ in 0..n_fks {
        let from = AttributeId(r.u32()?);
        let to = AttributeId(r.u32()?);
        if from.index() >= n_attributes || to.index() >= n_attributes {
            return Err(SnapError::Corrupt {
                context: "foreign key references unknown attribute",
            });
        }
        foreign_keys.push(ForeignKey::new(from, to));
    }
    r.expect_end()?;
    Ok(Catalog::from_parts(
        sources,
        relations,
        attributes,
        foreign_keys,
    ))
}

// ----------------------------------------------------------------------
// Search graph section (nodes, edges, cost model — CSR lives in its own
// section)
// ----------------------------------------------------------------------

fn encode_node(w: &mut ByteWriter, node: &Node) {
    match node {
        Node::Relation(r) => {
            w.u8(0);
            w.u32(r.0);
        }
        Node::Attribute(a) => {
            w.u8(1);
            w.u32(a.0);
        }
        Node::Value { attribute, value } => {
            w.u8(2);
            w.u32(attribute.0);
            w.str(value);
        }
        Node::Keyword(k) => {
            w.u8(3);
            w.str(k);
        }
    }
}

fn decode_node(r: &mut ByteReader<'_>) -> Result<Node, SnapError> {
    Ok(match r.u8()? {
        0 => Node::Relation(RelationId(r.u32()?)),
        1 => Node::Attribute(AttributeId(r.u32()?)),
        2 => Node::Value {
            attribute: AttributeId(r.u32()?),
            value: r.str()?,
        },
        3 => Node::Keyword(r.str()?),
        _ => {
            return Err(SnapError::Corrupt {
                context: "unknown node tag",
            })
        }
    })
}

fn edge_kind_tag(kind: EdgeKind) -> u8 {
    match kind {
        EdgeKind::AttributeRelation => 0,
        EdgeKind::ForeignKey => 1,
        EdgeKind::Association => 2,
        EdgeKind::KeywordMatch => 3,
        EdgeKind::ValueAttribute => 4,
        EdgeKind::KeywordValue => 5,
    }
}

fn edge_kind_from_tag(tag: u8) -> Result<EdgeKind, SnapError> {
    Ok(match tag {
        0 => EdgeKind::AttributeRelation,
        1 => EdgeKind::ForeignKey,
        2 => EdgeKind::Association,
        3 => EdgeKind::KeywordMatch,
        4 => EdgeKind::ValueAttribute,
        5 => EdgeKind::KeywordValue,
        _ => {
            return Err(SnapError::Corrupt {
                context: "unknown edge kind tag",
            })
        }
    })
}

/// Encode the search graph minus its CSR: nodes, edges with feature vectors,
/// the feature space, the learned weights and epoch, and association
/// provenance.
pub fn encode_graph(graph: &SearchGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(graph.node_count() as u64);
    for (_, node) in graph.nodes() {
        encode_node(&mut w, node);
    }
    w.u64(graph.edge_count() as u64);
    for (i, edge) in graph.edges().iter().enumerate() {
        // Edge ids are dense and equal to their position, so they are not
        // persisted.
        debug_assert_eq!(edge.id.index(), i);
        w.u32(edge.a.0);
        w.u32(edge.b.0);
        w.u8(edge_kind_tag(edge.kind));
        let entries: Vec<(FeatureId, f64)> = edge.features.iter().collect();
        w.u32(entries.len() as u32);
        for (f, v) in entries {
            w.u32(f.0);
            w.f64(v);
        }
    }
    let space = graph.feature_space();
    w.u64(space.names().len() as u64);
    for name in space.names() {
        w.str(name);
    }
    w.vec_f64(space.default_weight_slice());
    w.vec_f64(graph.weights().as_slice());
    w.u64(graph.weight_epoch());
    let provenance = graph.provenance_sorted();
    w.u64(provenance.len() as u64);
    for (edge, entries) in provenance {
        w.u32(edge.0);
        w.u32(entries.len() as u32);
        for p in entries {
            w.str(&p.matcher);
            w.f64(p.confidence);
        }
    }
    w.into_bytes()
}

/// Decode a graph section, pairing it with the CSR decoded from the
/// adjacent CSR section.
pub fn decode_graph(bytes: &[u8], csr: Csr) -> Result<SearchGraph, SnapError> {
    let mut r = ByteReader::new(bytes, "graph");
    let n_nodes = r.record_count(5)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(decode_node(&mut r)?);
    }
    let n_edges = r.record_count(9)?;
    let mut edges = Vec::with_capacity(n_edges);
    for i in 0..n_edges {
        let a = NodeId(r.u32()?);
        let b = NodeId(r.u32()?);
        // Reconstruction indexes nodes by endpoint, so dangling endpoints
        // must be rejected here.
        if a.index() >= n_nodes || b.index() >= n_nodes {
            return Err(SnapError::Corrupt {
                context: "edge endpoint out of range",
            });
        }
        let kind = edge_kind_from_tag(r.u8()?)?;
        let n_entries = r.u32()? as usize;
        if n_entries
            .checked_mul(12)
            .is_none_or(|sz| sz > r.remaining())
        {
            return Err(SnapError::Truncated { context: "graph" });
        }
        let mut pairs = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            pairs.push((FeatureId(r.u32()?), r.f64()?));
        }
        edges.push(Edge {
            id: EdgeId(i as u32),
            a,
            b,
            kind,
            features: FeatureVector::from_pairs(pairs),
        });
    }
    let n_features = r.record_count(4)?;
    let mut names = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        names.push(r.str()?);
    }
    let default_weights = r.vec_f64()?;
    if default_weights.len() != n_features {
        return Err(SnapError::Corrupt {
            context: "feature names and default weights disagree",
        });
    }
    let weights = r.vec_f64()?;
    let weight_epoch = r.u64()?;
    let n_prov = r.record_count(8)?;
    let mut provenance = Vec::with_capacity(n_prov);
    for _ in 0..n_prov {
        let edge = EdgeId(r.u32()?);
        if edge.index() >= n_edges {
            return Err(SnapError::Corrupt {
                context: "provenance references unknown edge",
            });
        }
        let n_entries = r.u32()? as usize;
        if n_entries
            .checked_mul(12)
            .is_none_or(|sz| sz > r.remaining())
        {
            return Err(SnapError::Truncated { context: "graph" });
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            entries.push(AssociationProvenance {
                matcher: r.str()?,
                confidence: r.f64()?,
            });
        }
        provenance.push((edge, entries));
    }
    r.expect_end()?;
    validate_csr(&csr, n_nodes, "graph csr")?;
    if csr.entry_count() > 2 * n_edges {
        return Err(SnapError::Corrupt {
            context: "graph csr holds more entries than edges allow",
        });
    }
    Ok(SearchGraph::from_parts(SearchGraphParts {
        nodes,
        edges,
        csr,
        features: FeatureSpace::from_parts(names, default_weights),
        weights: WeightVector::from_raw(weights),
        weight_epoch,
        provenance,
    }))
}

// ----------------------------------------------------------------------
// CSR sections
// ----------------------------------------------------------------------

/// Encode a CSR as its two raw packed arrays with **no header or length
/// prefixes**: `offsets` as little-endian `u32`s followed by `targets` as
/// `(u32 edge, u32 node)` pairs. The payload length is therefore exactly
/// [`Csr::byte_size`], which is what lets the on-disk section sizes
/// reconcile byte-for-byte with the in-memory `q_snapshot_bytes` accounting.
pub fn encode_csr_raw(csr: &Csr) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(csr.byte_size());
    for o in csr.offsets() {
        w.u32(*o);
    }
    for (e, n) in csr.targets() {
        w.u32(e.0);
        w.u32(n.0);
    }
    debug_assert_eq!(w.len(), csr.byte_size());
    w.into_bytes()
}

/// Decode a headerless CSR given its dimensions (carried by the shard-meta
/// or graph section).
pub fn decode_csr_raw(
    bytes: &[u8],
    offsets_len: usize,
    targets_len: usize,
    context: &'static str,
) -> Result<Csr, SnapError> {
    let expected = offsets_len
        .checked_mul(4)
        .and_then(|o| targets_len.checked_mul(8).and_then(|t| o.checked_add(t)));
    if expected != Some(bytes.len()) {
        return Err(SnapError::Corrupt { context });
    }
    let mut r = ByteReader::new(bytes, context);
    let mut offsets = Vec::with_capacity(offsets_len);
    for _ in 0..offsets_len {
        offsets.push(r.u32()?);
    }
    let mut targets = Vec::with_capacity(targets_len);
    for _ in 0..targets_len {
        targets.push((EdgeId(r.u32()?), NodeId(r.u32()?)));
    }
    r.expect_end()?;
    if offsets.last().copied().unwrap_or(0) as usize != targets_len
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SnapError::Corrupt { context });
    }
    Ok(Csr::from_parts(offsets, targets))
}

/// Validate that a decoded CSR is internally consistent for `node_count`
/// nodes: the offset array is a monotone prefix sum over the target array
/// sized one-past-the-last node, so every `neighbors` slice is in bounds.
fn validate_csr(csr: &Csr, node_count: usize, context: &'static str) -> Result<(), SnapError> {
    let offsets = csr.offsets();
    let ok = (offsets.is_empty() && node_count == 0 && csr.targets().is_empty())
        || (offsets.len() == node_count + 1
            && offsets.first() == Some(&0)
            && offsets.last().copied().unwrap_or(0) as usize == csr.targets().len()
            && offsets.windows(2).all(|w| w[0] <= w[1]));
    if ok {
        Ok(())
    } else {
        Err(SnapError::Corrupt { context })
    }
}

/// Encode the global CSR section (length-prefixed, unlike the per-shard raw
/// sections).
pub fn encode_graph_csr(csr: &Csr) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(csr.byte_size() + 16);
    w.u64(csr.offsets().len() as u64);
    w.u64(csr.targets().len() as u64);
    w.raw(&encode_csr_raw(csr));
    w.into_bytes()
}

/// Decode the global CSR section.
pub fn decode_graph_csr(bytes: &[u8]) -> Result<Csr, SnapError> {
    let mut r = ByteReader::new(bytes, "graph csr");
    let offsets_len = r.record_count(0)?;
    let targets_len = {
        let n = r.u64()?;
        usize::try_from(n).map_err(|_| SnapError::Truncated {
            context: "graph csr",
        })?
    };
    let body = r.raw(r.remaining())?;
    decode_csr_raw(body, offsets_len, targets_len, "graph csr")
}

// ----------------------------------------------------------------------
// Keyword index section
// ----------------------------------------------------------------------

/// Encode the keyword index's columnar state.
pub fn encode_keyword(view: &KeywordIndexView<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.vec_u8(view.target_kinds);
    w.vec_u32(view.target_ids);
    w.vec_u8(view.text_blob.as_bytes());
    w.vec_u32(view.text_ends);
    w.vec_u32(view.token_ids);
    w.vec_u32(view.token_ends);
    w.vec_u64(view.doc_trigrams);
    w.vec_u32(view.trigram_ends);
    // Token names are stored as one blob plus end offsets (not 90k+
    // length-prefixed strings): one bulk read and one UTF-8 validation on
    // the boot path.
    let mut name_blob: Vec<u8> = Vec::new();
    let mut name_ends: Vec<u32> = Vec::with_capacity(view.token_names.len());
    for name in view.token_names {
        name_blob.extend_from_slice(name.as_bytes());
        name_ends.push(u32::try_from(name_blob.len()).expect("token names under 4 GiB"));
    }
    w.vec_u8(&name_blob);
    w.vec_u32(&name_ends);
    w.vec_u32(view.token_postings);
    w.vec_u32(view.token_posting_ends);
    w.vec_u64(view.trigram_keys);
    w.vec_u32(view.trigram_postings);
    w.vec_u32(view.trigram_posting_ends);
    w.vec_f64(view.idf);
    w.vec_f64(view.doc_norm_sq);
    w.into_bytes()
}

/// End-offset arrays must be monotone and land exactly on the flat array's
/// length, or run-slicing would panic.
fn validate_ends(ends: &[u32], flat_len: usize, context: &'static str) -> Result<(), SnapError> {
    let monotone = ends.windows(2).all(|w| w[0] <= w[1]);
    if monotone && ends.last().copied().unwrap_or(0) as usize == flat_len {
        Ok(())
    } else {
        Err(SnapError::Corrupt { context })
    }
}

/// Decode a keyword section back into a servable index.
///
/// Takes the snapshot stream directly: the big flat arrays (trigrams,
/// postings) are read straight into their final allocations so each byte is
/// touched exactly once on the boot path.
pub fn decode_keyword(r: &mut SectionStream<'_, impl Read>) -> Result<KeywordIndex, SnapError> {
    let target_kinds = r.vec_u8()?;
    let target_ids = r.vec_u32()?;
    let text_blob = String::from_utf8(r.vec_u8()?).map_err(|_| SnapError::Corrupt {
        context: "keyword text blob is not utf-8",
    })?;
    let text_ends = r.vec_u32()?;
    let token_ids = r.vec_u32()?;
    let token_ends = r.vec_u32()?;
    let doc_trigrams = r.vec_u64()?;
    let trigram_ends = r.vec_u32()?;
    let name_blob = String::from_utf8(r.vec_u8()?).map_err(|_| SnapError::Corrupt {
        context: "keyword token names are not utf-8",
    })?;
    let name_ends = r.vec_u32()?;
    let n_tokens = name_ends.len();
    let mut token_names = Vec::with_capacity(n_tokens);
    let mut name_start = 0usize;
    for &end in &name_ends {
        let name = name_blob
            .get(name_start..end as usize)
            .ok_or(SnapError::Corrupt {
                context: "keyword token name offsets do not tile the blob",
            })?;
        name_start = end as usize;
        token_names.push(name.to_string());
    }
    if name_start != name_blob.len() {
        return Err(SnapError::Corrupt {
            context: "keyword token name offsets do not tile the blob",
        });
    }
    let token_postings = r.vec_u32()?;
    let token_posting_ends = r.vec_u32()?;
    let trigram_keys = r.vec_u64()?;
    let trigram_postings = r.vec_u32()?;
    let trigram_posting_ends = r.vec_u32()?;
    let idf = r.vec_f64()?;
    let doc_norm_sq = r.vec_f64()?;
    r.expect_end()?;

    let docs = target_kinds.len();
    if target_ids.len() != docs
        || text_ends.len() != docs
        || token_ends.len() != docs
        || trigram_ends.len() != docs
        || doc_norm_sq.len() != docs
    {
        return Err(SnapError::Corrupt {
            context: "keyword document columns disagree on length",
        });
    }
    if idf.len() != n_tokens || token_posting_ends.len() != n_tokens {
        return Err(SnapError::Corrupt {
            context: "keyword token columns disagree on length",
        });
    }
    if trigram_posting_ends.len() != trigram_keys.len() {
        return Err(SnapError::Corrupt {
            context: "keyword trigram columns disagree on length",
        });
    }
    validate_ends(&text_ends, text_blob.len(), "keyword text offsets")?;
    validate_ends(&token_ends, token_ids.len(), "keyword token offsets")?;
    validate_ends(&trigram_ends, doc_trigrams.len(), "keyword trigram offsets")?;
    validate_ends(
        &token_posting_ends,
        token_postings.len(),
        "keyword token posting offsets",
    )?;
    validate_ends(
        &trigram_posting_ends,
        trigram_postings.len(),
        "keyword trigram posting offsets",
    )?;
    // Text runs are sliced as &str, so every boundary must fall on a char
    // boundary.
    if text_ends
        .iter()
        .any(|&e| !text_blob.is_char_boundary(e as usize))
    {
        return Err(SnapError::Corrupt {
            context: "keyword text offset splits a utf-8 character",
        });
    }
    if token_ids.iter().any(|&t| t as usize >= n_tokens) {
        return Err(SnapError::Corrupt {
            context: "keyword token id out of range",
        });
    }
    if token_postings
        .iter()
        .chain(trigram_postings.iter())
        .any(|&d| d as usize >= docs)
    {
        return Err(SnapError::Corrupt {
            context: "keyword posting references unknown document",
        });
    }
    Ok(KeywordIndex::from_parts(KeywordIndexParts {
        target_kinds,
        target_ids,
        text_blob,
        text_ends,
        token_ids,
        token_ends,
        doc_trigrams,
        trigram_ends,
        token_names,
        token_postings,
        token_posting_ends,
        trigram_keys,
        trigram_postings,
        trigram_posting_ends,
        idf,
        doc_norm_sq,
    }))
}

// ----------------------------------------------------------------------
// Shard meta section
// ----------------------------------------------------------------------

/// Decoded shard-meta section: the plan and keyword partition plus the
/// dimensions of the headerless interior/boundary CSR sections.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// The relation → shard plan.
    pub plan: ShardPlan,
    /// Document → shard assignment of the keyword partition.
    pub shard_of_doc: Vec<u32>,
    /// Estimated postings bytes per shard.
    pub postings_bytes: Vec<u64>,
    /// `(offsets_len, targets_len)` of each interior CSR, in shard order.
    pub interior_dims: Vec<(usize, usize)>,
    /// Edges interior to each shard.
    pub interior_edge_counts: Vec<usize>,
    /// `(offsets_len, targets_len)` of the boundary CSR.
    pub boundary_dims: (usize, usize),
    /// Cross-shard edges in the boundary section.
    pub boundary_edge_count: usize,
}

/// Encode shard plan, keyword partition and CSR dimensions.
pub fn encode_shard_meta(meta: &ShardMeta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(meta.plan.shards() as u32);
    w.vec_u32(meta.plan.relation_shards());
    w.vec_u32(&meta.shard_of_doc);
    w.vec_u64(&meta.postings_bytes);
    w.u64(meta.interior_dims.len() as u64);
    for (i, (offsets_len, targets_len)) in meta.interior_dims.iter().enumerate() {
        w.u64(*offsets_len as u64);
        w.u64(*targets_len as u64);
        w.u64(meta.interior_edge_counts[i] as u64);
    }
    w.u64(meta.boundary_dims.0 as u64);
    w.u64(meta.boundary_dims.1 as u64);
    w.u64(meta.boundary_edge_count as u64);
    w.into_bytes()
}

/// Decode a shard-meta section.
pub fn decode_shard_meta(bytes: &[u8]) -> Result<ShardMeta, SnapError> {
    let mut r = ByteReader::new(bytes, "shard meta");
    let shards = r.u32()? as usize;
    if shards == 0 || shards > 4096 {
        return Err(SnapError::Corrupt {
            context: "implausible shard count",
        });
    }
    let relation_shards = r.vec_u32()?;
    if relation_shards.iter().any(|&s| s as usize >= shards) {
        return Err(SnapError::Corrupt {
            context: "relation assigned to shard outside the plan",
        });
    }
    let shard_of_doc = r.vec_u32()?;
    if shard_of_doc.iter().any(|&s| s as usize >= shards) {
        return Err(SnapError::Corrupt {
            context: "document assigned to shard outside the plan",
        });
    }
    let postings_bytes = r.vec_u64()?;
    if postings_bytes.len() != shards {
        return Err(SnapError::Corrupt {
            context: "keyword partition shard count disagrees with plan",
        });
    }
    let k = r.record_count(24)?;
    if k != shards {
        return Err(SnapError::Corrupt {
            context: "interior csr count disagrees with plan",
        });
    }
    let mut interior_dims = Vec::with_capacity(k);
    let mut interior_edge_counts = Vec::with_capacity(k);
    for _ in 0..k {
        let offsets_len = r.u64()? as usize;
        let targets_len = r.u64()? as usize;
        interior_dims.push((offsets_len, targets_len));
        interior_edge_counts.push(r.u64()? as usize);
    }
    let boundary_dims = (r.u64()? as usize, r.u64()? as usize);
    let boundary_edge_count = r.u64()? as usize;
    r.expect_end()?;
    Ok(ShardMeta {
        plan: ShardPlan::from_parts(shards, relation_shards),
        shard_of_doc,
        postings_bytes,
        interior_dims,
        interior_edge_counts,
        boundary_dims,
        boundary_edge_count,
    })
}

#[cfg(test)]
mod tests {
    // The closures handed to `streamed` look redundant but are not — see its
    // doc comment.
    #![allow(clippy::redundant_closure)]

    use super::*;
    use q_storage::{RelationSpec, SourceSpec};
    use std::io::Cursor;

    /// Drive a stream decoder over an in-memory payload, the way
    /// `read_snapshot` drives it over a file. Callers wrap the decoder fn in
    /// a closure (not "redundant": the fn items only implement `FnOnce` for
    /// one concrete stream lifetime, not the higher-ranked bound this
    /// signature needs).
    fn streamed<T>(
        bytes: &[u8],
        context: &'static str,
        decode: impl FnOnce(&mut SectionStream<'_, Cursor<&[u8]>>) -> Result<T, SnapError>,
    ) -> Result<T, SnapError> {
        let mut cursor = Cursor::new(bytes);
        let mut stream = SectionStream::new(&mut cursor, bytes.len(), context);
        decode(&mut stream)
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name", "term_type"])
                    .row(["GO:0005134", "plasma membrane", "component"])
                    .row(["GO:0007652", "kinase activity", "function"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro2go", &["entry_ac", "go_id"])
                    .row(["IPR000001", "GO:0005134"]),
            )
            .foreign_key("interpro2go.go_id", "go_term.acc")
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn catalog_round_trips() {
        let cat = catalog();
        let bytes = encode_catalog(&cat);
        let back = streamed(&bytes, "catalog", |s| decode_catalog(s)).unwrap();
        assert_eq!(back.sources(), cat.sources());
        assert_eq!(back.relations(), cat.relations());
        assert_eq!(back.attributes(), cat.attributes());
        assert_eq!(back.foreign_keys(), cat.foreign_keys());
        assert_eq!(
            back.source_by_name("interpro").unwrap().id,
            cat.source_by_name("interpro").unwrap().id,
        );
    }

    #[test]
    fn columnar_tuples_round_trip_every_value_kind() {
        // The spec builders only produce Text values, so hand-assemble a
        // catalog exercising all four tags, multi-byte UTF-8, the empty
        // string, and a zero-arity relation (whose tuple count survives with
        // no value columns at all).
        let mixed = Relation {
            id: RelationId(0),
            source: SourceId(0),
            name: "mixed".into(),
            attributes: vec![AttributeId(0), AttributeId(1), AttributeId(2)],
            tuples: vec![
                Tuple::new(vec![
                    Value::Int(-7),
                    Value::Text("plasma Δμ membrane".into()),
                    Value::Float(0.25),
                ]),
                Tuple::new(vec![
                    Value::Null,
                    Value::Text(String::new()),
                    Value::Int(i64::MIN),
                ]),
                Tuple::new(vec![
                    Value::Float(f64::NEG_INFINITY),
                    Value::Text("κιν".into()),
                    Value::Null,
                ]),
            ],
        };
        let empty_arity = Relation {
            id: RelationId(1),
            source: SourceId(0),
            name: "unit".into(),
            attributes: vec![],
            tuples: vec![Tuple::default(); 3],
        };
        let cat = Catalog::from_parts(
            vec![Source {
                id: SourceId(0),
                name: "synthetic".into(),
                relations: vec![RelationId(0), RelationId(1)],
            }],
            vec![mixed, empty_arity],
            (0..3)
                .map(|i| Attribute {
                    id: AttributeId(i),
                    relation: RelationId(0),
                    name: format!("a{i}"),
                    position: i as usize,
                })
                .collect(),
            vec![],
        );
        let bytes = encode_catalog(&cat);
        let back = streamed(&bytes, "catalog", |s| decode_catalog(s)).unwrap();
        assert_eq!(back.relations(), cat.relations());
        assert_eq!(back.sources(), cat.sources());
    }

    #[test]
    fn graph_round_trips_including_costs_and_provenance() {
        let cat = catalog();
        let mut graph = SearchGraph::from_catalog(&cat);
        let a = cat.resolve_qualified("go_term.acc").unwrap();
        let b = cat.resolve_qualified("interpro2go.go_id").unwrap();
        graph.add_association(a, b, "mad", 0.83);
        let graph_bytes = encode_graph(&graph);
        let csr_bytes = encode_graph_csr(graph.csr());
        let csr = decode_graph_csr(&csr_bytes).unwrap();
        let back = decode_graph(&graph_bytes, csr).unwrap();
        assert_eq!(back.node_count(), graph.node_count());
        assert_eq!(back.edge_count(), graph.edge_count());
        assert_eq!(back.weight_epoch(), graph.weight_epoch());
        assert_eq!(back.weights(), graph.weights());
        assert_eq!(back.edges(), graph.edges());
        assert_eq!(back.csr().offsets(), graph.csr().offsets());
        assert_eq!(back.csr().targets(), graph.csr().targets());
        assert_eq!(back.provenance_sorted(), graph.provenance_sorted());
    }

    #[test]
    fn keyword_round_trips_to_an_identical_view() {
        let cat = catalog();
        let index = KeywordIndex::build(&cat);
        let bytes = encode_keyword(&index.view());
        let back = streamed(&bytes, "keyword index", |s| decode_keyword(s)).unwrap();
        assert_eq!(back.view(), index.view());
    }

    #[test]
    fn csr_raw_payload_is_exactly_byte_size() {
        let cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        let bytes = encode_csr_raw(graph.csr());
        assert_eq!(bytes.len(), graph.csr().byte_size());
        let back = decode_csr_raw(
            &bytes,
            graph.csr().offsets().len(),
            graph.csr().targets().len(),
            "test",
        )
        .unwrap();
        assert_eq!(back.offsets(), graph.csr().offsets());
        assert_eq!(back.targets(), graph.csr().targets());
    }

    #[test]
    fn shard_meta_round_trips() {
        let meta = ShardMeta {
            plan: ShardPlan::from_parts(2, vec![0, 1, 0]),
            shard_of_doc: vec![0, 1, 1, 0],
            postings_bytes: vec![120, 88],
            interior_dims: vec![(5, 8), (5, 2)],
            interior_edge_counts: vec![4, 1],
            boundary_dims: (5, 2),
            boundary_edge_count: 1,
        };
        let bytes = encode_shard_meta(&meta);
        assert_eq!(decode_shard_meta(&bytes).unwrap(), meta);
    }

    #[test]
    fn dangling_edge_endpoint_is_corrupt() {
        let cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        let mut bytes = encode_graph(&graph);
        // Overwrite the first edge's `a` endpoint (right after the node
        // table) with an out-of-range id.
        let mut r = ByteReader::new(&bytes, "scan");
        let n_nodes = r.u64().unwrap();
        for _ in 0..n_nodes {
            decode_node(&mut r).unwrap();
        }
        r.u64().unwrap(); // edge count
        let edge_a_pos = bytes.len() - r.remaining();
        bytes[edge_a_pos..edge_a_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let csr = decode_graph_csr(&encode_graph_csr(graph.csr())).unwrap();
        assert!(matches!(
            decode_graph(&bytes, csr),
            Err(SnapError::Corrupt { .. })
        ));
    }
}
