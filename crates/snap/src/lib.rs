//! Persistent snapshot store: a versioned on-disk format for the full
//! serving state — catalog, search graph, packed CSR adjacency, columnar
//! keyword index and shard structure — so a server boots by loading flat
//! arrays instead of re-running matching and finalization.
//!
//! The format is a small section container (see [`mod@file`] for the layout
//! diagram): a PNG-style magic, a format version, a checksummed section
//! table, and one checksummed little-endian payload per component. Writes
//! are atomic (temp sibling + fsync + rename); reads validate magic,
//! version, table and per-section checksums and every decode-level invariant
//! before any structure is assembled, so a truncated, bit-flipped or
//! foreign file always surfaces as a typed [`SnapError`] — never a panic,
//! never a partially-loaded graph.
//!
//! The per-shard CSR sections are stored headerless: their payload sizes are
//! exactly the in-memory [`q_graph::Csr::byte_size`] accounting, which lets
//! the serving layer's `q_snapshot_bytes` gauge reconcile byte-for-byte with
//! what is on disk.

pub mod bytes;
pub mod codec;
pub mod error;
pub mod file;
pub mod stream;

pub use bytes::{checksum64, Checksummer};
pub use error::SnapError;
pub use file::{
    read_snapshot, write_snapshot, SectionKind, SnapshotComponents, SnapshotInfo, SnapshotParts,
    FORMAT_VERSION, MAGIC,
};
pub use stream::SectionStream;
