//! Streaming section reader: the load-path twin of [`crate::bytes::ByteReader`].
//!
//! Loading a 100×-tier snapshot through a whole-file buffer costs three
//! passes over ~100 MB — fault-and-fill the file buffer, checksum it, then
//! copy every array out of it — and the page faults of the two 100 MB
//! allocations dominate boot time. [`SectionStream`] collapses this to one
//! pass: payload bytes stream off the file descriptor **directly into the
//! final `Vec`s**, and the per-section checksum is folded over each chunk
//! right after the kernel copies it in, while it is still cache-hot. Small
//! reads (counts, tags, strings) go through an internal refill buffer so the
//! syscall count stays proportional to megabytes, not fields.
//!
//! The reader is generic over [`Read`] so codec unit tests drive it from an
//! in-memory cursor; the real load path hands it a `File`.

use std::io::Read;

use crate::bytes::Checksummer;
use crate::error::SnapError;

/// Refill granularity for small reads.
const BUF_BYTES: usize = 256 * 1024;
/// Direct reads are issued in slices of this size so the checksummer always
/// digests bytes that are still in cache — it must stay comfortably under
/// L2, or the fused checksum pass re-streams every byte from DRAM.
const DIRECT_CHUNK: usize = 256 * 1024;

/// Prefault a large destination buffer in one syscall before the stream
/// writes through it. A fresh multi-megabyte `Vec` is otherwise populated by
/// one 4 KiB soft fault per page — a usermode trap each — and those faults,
/// not the copy, dominate large-array loads. `MADV_POPULATE_WRITE` has the
/// kernel set up all the PTEs in a single pass. Purely advisory: failure
/// (other platforms, old kernels) costs nothing, so the result is ignored.
#[cfg(target_os = "linux")]
fn prefault(buf: &mut [u8]) {
    const MADV_POPULATE_WRITE: i32 = 23;
    const PAGE: usize = 4096;
    extern "C" {
        fn madvise(addr: *mut std::ffi::c_void, length: usize, advice: i32) -> i32;
    }
    // madvise wants page-aligned addresses and malloc gives none; rounding
    // the range inward stays entirely within the allocation.
    let addr = buf.as_mut_ptr() as usize;
    let start = addr.next_multiple_of(PAGE);
    let end = (addr + buf.len()) & !(PAGE - 1);
    if end > start {
        // SAFETY: [start, end) lies inside the exclusively-borrowed live
        // allocation `buf`, and populating pages does not alter contents.
        unsafe {
            madvise(
                start as *mut std::ffi::c_void,
                end - start,
                MADV_POPULATE_WRITE,
            );
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn prefault(_buf: &mut [u8]) {}

/// View a `u64` slice as its raw bytes for reading and digesting.
///
/// SAFETY: `u64` has no padding and no invalid bit patterns, the byte view
/// covers exactly `len * 8` initialised bytes, and the exclusive borrow of
/// `v` guarantees no aliasing for the lifetime of the view. Writing arbitrary
/// bytes through the view leaves every element a valid `u64`.
fn u64s_as_bytes_mut(v: &mut [u64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), v.len() * 8) }
}

/// See [`u64s_as_bytes_mut`]; identical reasoning for `u32`.
fn u32s_as_bytes_mut(v: &mut [u32]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), v.len() * 4) }
}

/// See [`u64s_as_bytes_mut`]; `f64` also accepts every bit pattern (NaN
/// payloads included), so filling from disk bytes cannot produce an invalid
/// value.
fn f64s_as_bytes_mut(v: &mut [f64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), v.len() * 8) }
}

/// Bounds-checked little-endian decoder over one section of a snapshot
/// stream.
///
/// Mirrors the [`crate::bytes::ByteReader`] API (every read is count-validated
/// against the bytes the section has left) and additionally digests every
/// consumed byte, so [`SectionStream::digest`] yields the payload checksum
/// for free.
#[derive(Debug)]
pub struct SectionStream<'a, R: Read> {
    inner: &'a mut R,
    /// Section bytes still in the underlying reader (not yet in `buf`).
    unread: usize,
    /// Refill buffer window: valid bytes live at `buf[pos..end]`.
    buf: Vec<u8>,
    pos: usize,
    end: usize,
    hasher: Checksummer,
    /// Which structure this stream is decoding — reported by truncation
    /// errors.
    context: &'static str,
}

impl<'a, R: Read> SectionStream<'a, R> {
    /// Stream `len` bytes of section payload out of `inner`.
    pub fn new(inner: &'a mut R, len: usize, context: &'static str) -> Self {
        SectionStream {
            inner,
            unread: len,
            buf: vec![0u8; BUF_BYTES.min(len.max(64))],
            pos: 0,
            end: 0,
            hasher: Checksummer::new(),
            context,
        }
    }

    /// Bytes not yet consumed by the decoder.
    pub fn remaining(&self) -> usize {
        self.unread + (self.end - self.pos)
    }

    fn truncated(&self) -> SnapError {
        SnapError::Truncated {
            context: self.context,
        }
    }

    /// Ensure at least `need` contiguous bytes are buffered.
    fn refill(&mut self, need: usize) -> Result<(), SnapError> {
        if self.end - self.pos >= need {
            return Ok(());
        }
        if need > self.remaining() {
            return Err(self.truncated());
        }
        if need > self.buf.len() {
            self.buf
                .resize(need.next_power_of_two().min(self.remaining().max(need)), 0);
        }
        self.buf.copy_within(self.pos..self.end, 0);
        self.end -= self.pos;
        self.pos = 0;
        while self.end - self.pos < need {
            let want = (self.buf.len() - self.end).min(self.unread);
            if want == 0 {
                return Err(self.truncated());
            }
            let n = self
                .inner
                .read(&mut self.buf[self.end..self.end + want])
                .map_err(|e| SnapError::io("reading snapshot section", e))?;
            if n == 0 {
                return Err(self.truncated());
            }
            self.end += n;
            self.unread -= n;
        }
        Ok(())
    }

    /// Consume `n` bytes through the refill buffer, digesting them.
    fn take(&mut self, n: usize) -> Result<&[u8], SnapError> {
        self.refill(n)?;
        let slice = &self.buf[self.pos..self.pos + n];
        self.hasher.update(slice);
        self.pos += n;
        Ok(slice)
    }

    /// Fill `dst` straight from the stream (buffered bytes first), digesting
    /// each kernel-copied chunk while it is cache-hot.
    fn read_direct(&mut self, dst: &mut [u8]) -> Result<(), SnapError> {
        if dst.len() > self.remaining() {
            return Err(self.truncated());
        }
        if dst.len() >= DIRECT_CHUNK {
            prefault(dst);
        }
        let buffered = (self.end - self.pos).min(dst.len());
        dst[..buffered].copy_from_slice(&self.buf[self.pos..self.pos + buffered]);
        self.hasher.update(&dst[..buffered]);
        self.pos += buffered;
        let mut filled = buffered;
        while filled < dst.len() {
            let want = (dst.len() - filled).min(DIRECT_CHUNK);
            let n = self
                .inner
                .read(&mut dst[filled..filled + want])
                .map_err(|e| SnapError::io("reading snapshot section", e))?;
            if n == 0 {
                return Err(self.truncated());
            }
            self.unread -= n;
            self.hasher.update(&dst[filled..filled + n]);
            filled += n;
        }
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validate that a count of `elem_size`-byte elements fits in the bytes
    /// the section has left (same contract as `ByteReader::count`).
    fn count(&self, n: u64, elem_size: usize) -> Result<usize, SnapError> {
        let n = usize::try_from(n).map_err(|_| self.truncated())?;
        match n.checked_mul(elem_size) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(self.truncated()),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.truncated());
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt {
            context: "invalid utf-8 in string",
        })
    }

    /// Read a length-prefixed `u8` vector directly into its final buffer.
    pub fn vec_u8(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 1)?;
        let mut v = vec![0u8; n];
        self.read_direct(&mut v)?;
        Ok(v)
    }

    /// Read a length-prefixed `u32` vector directly into its final buffer.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 4)?;
        let mut v = vec![0u32; n];
        self.read_direct(u32s_as_bytes_mut(&mut v))?;
        if cfg!(target_endian = "big") {
            for x in v.iter_mut() {
                *x = u32::from_le(*x);
            }
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` vector directly into its final buffer.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 8)?;
        let mut v = vec![0u64; n];
        self.read_direct(u64s_as_bytes_mut(&mut v))?;
        if cfg!(target_endian = "big") {
            for x in v.iter_mut() {
                *x = u64::from_le(*x);
            }
        }
        Ok(v)
    }

    /// Read a length-prefixed `f64` vector directly into its final buffer.
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.u64()?;
        let n = self.count(n, 8)?;
        let mut v = vec![0.0f64; n];
        self.read_direct(f64s_as_bytes_mut(&mut v))?;
        if cfg!(target_endian = "big") {
            for x in v.iter_mut() {
                *x = f64::from_bits(u64::from_le(x.to_bits()));
            }
        }
        Ok(v)
    }

    /// Read a count that the caller will use to loop over variable-size
    /// records, validated against a minimum per-record size.
    pub fn record_count(&mut self, min_record_size: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        self.count(n, min_record_size.max(1))
    }

    /// Consume the rest of the section into an owned buffer (for the small
    /// sections that still decode through `ByteReader`).
    pub fn take_rest(&mut self) -> Result<Vec<u8>, SnapError> {
        let mut v = vec![0u8; self.remaining()];
        self.read_direct(&mut v)?;
        Ok(v)
    }

    /// Require that every section byte was consumed — trailing garbage means
    /// the payload does not parse as the structure it claims to be.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt {
                context: "trailing bytes after structure",
            })
        }
    }

    /// Digest of every byte consumed so far (the payload checksum once the
    /// section is fully decoded).
    pub fn digest(&self) -> u64 {
        self.hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::{checksum64, ByteWriter};
    use std::io::Cursor;

    #[test]
    fn mirrors_byte_reader_semantics_and_digests_what_it_reads() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.str("plasma membrane");
        w.vec_u8(&[9, 8, 7]);
        w.vec_u32(&[1, 2, 3]);
        w.vec_u64(&[u64::MAX, 5]);
        w.vec_f64(&[1.5, f64::INFINITY]);
        let bytes = w.into_bytes();
        let expect_digest = checksum64(&bytes);
        let mut cur = Cursor::new(bytes.clone());
        let mut s = SectionStream::new(&mut cur, bytes.len(), "test");
        assert_eq!(s.u8().unwrap(), 7);
        assert_eq!(s.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(s.u64().unwrap(), u64::MAX - 1);
        assert_eq!(s.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.str().unwrap(), "plasma membrane");
        assert_eq!(s.vec_u8().unwrap(), vec![9, 8, 7]);
        assert_eq!(s.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(s.vec_u64().unwrap(), vec![u64::MAX, 5]);
        let floats = s.vec_f64().unwrap();
        assert_eq!(floats[0], 1.5);
        assert!(floats[1].is_infinite());
        s.expect_end().unwrap();
        assert_eq!(s.digest(), expect_digest);
    }

    #[test]
    fn direct_reads_cross_the_refill_buffer_boundary() {
        // A vector far larger than the refill buffer must land intact and
        // digest identically to the one-shot checksum.
        let big: Vec<u64> = (0..1_000_000u64).map(|x| x.wrapping_mul(0x9E37)).collect();
        let mut w = ByteWriter::new();
        w.u32(41);
        w.vec_u64(&big);
        w.u32(99);
        let bytes = w.into_bytes();
        let expect_digest = checksum64(&bytes);
        let mut cur = Cursor::new(bytes.clone());
        let mut s = SectionStream::new(&mut cur, bytes.len(), "test");
        assert_eq!(s.u32().unwrap(), 41);
        assert_eq!(s.vec_u64().unwrap(), big);
        assert_eq!(s.u32().unwrap(), 99);
        s.expect_end().unwrap();
        assert_eq!(s.digest(), expect_digest);
    }

    #[test]
    fn truncation_and_impossible_counts_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        w.u32(1);
        let bytes = w.into_bytes();
        let mut cur = Cursor::new(bytes.clone());
        let mut s = SectionStream::new(&mut cur, bytes.len(), "count");
        assert!(matches!(s.vec_u32(), Err(SnapError::Truncated { .. })));

        // A section longer than the underlying stream truncates mid-read.
        let mut cur = Cursor::new(vec![0u8; 16]);
        let mut s = SectionStream::new(&mut cur, 64, "short");
        assert!(matches!(s.take_rest(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn a_section_consumes_only_its_own_bytes() {
        // Two sections back-to-back in one stream: the first stream must
        // leave the cursor exactly at the boundary.
        let mut w = ByteWriter::new();
        w.vec_u32(&[10, 20]);
        let first_len = w.len();
        w.u64(0xFEED);
        let bytes = w.into_bytes();
        let mut cur = Cursor::new(bytes);
        let mut s = SectionStream::new(&mut cur, first_len, "first");
        assert_eq!(s.vec_u32().unwrap(), vec![10, 20]);
        s.expect_end().unwrap();
        drop(s);
        let mut s = SectionStream::new(&mut cur, 8, "second");
        assert_eq!(s.u64().unwrap(), 0xFEED);
        s.expect_end().unwrap();
    }
}
