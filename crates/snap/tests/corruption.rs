//! Corruption property tests for the snapshot store.
//!
//! A snapshot mutated in any way — truncated at an arbitrary byte, a bit
//! flipped anywhere in the file, the format version bumped — must yield a
//! typed [`SnapError`] from `read_snapshot`: never a panic, never a
//! partially-loaded graph. The unmutated control file must keep loading
//! after every mutation round, pinning that validation failures have no
//! side effects on the reader.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use q_graph::{KeywordIndex, SearchGraph, ShardSet};
use q_snap::{read_snapshot, write_snapshot, SnapError, SnapshotComponents, FORMAT_VERSION};
use q_storage::{Catalog, RelationSpec, SourceSpec};

fn build_components() -> (Catalog, SearchGraph, KeywordIndex, ShardSet) {
    let mut cat = Catalog::new();
    SourceSpec::new("go")
        .relation(
            RelationSpec::new("go_term", &["acc", "name", "term_type"])
                .row(["GO:0005134", "plasma membrane", "component"])
                .row(["GO:0007652", "kinase activity", "function"])
                .row(["GO:0016301", "kinase binding", "function"]),
        )
        .load_into(&mut cat)
        .unwrap();
    SourceSpec::new("interpro")
        .relation(RelationSpec::new("entry", &["entry_ac", "name"]).row(["IPR000001", "Kringle"]))
        .relation(
            RelationSpec::new("interpro2go", &["entry_ac", "go_id"])
                .row(["IPR000001", "GO:0005134"]),
        )
        .foreign_key("interpro2go.entry_ac", "entry.entry_ac")
        .foreign_key("interpro2go.go_id", "go_term.acc")
        .load_into(&mut cat)
        .unwrap();
    let mut graph = SearchGraph::from_catalog(&cat);
    let a = cat.resolve_qualified("go_term.acc").unwrap();
    let b = cat.resolve_qualified("interpro2go.go_id").unwrap();
    graph.add_association(a, b, "mad", 0.83);
    let index = KeywordIndex::build(&cat);
    let shards = ShardSet::build(&cat, &graph, &index, 2);
    (cat, graph, index, shards)
}

/// The pristine snapshot bytes every property mutates a copy of.
fn pristine() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (cat, graph, index, shards) = build_components();
        let path = scratch_path("pristine.qsnap");
        write_snapshot(
            &path,
            &SnapshotComponents {
                id: 7,
                catalog: &cat,
                graph: &graph,
                keyword: &index,
                shards: &shards,
            },
        )
        .unwrap();
        fs::read(&path).unwrap()
    })
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("q-snap-corruption-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Write mutated bytes and require a typed read failure. The call itself is
/// the panic probe: any panic inside `read_snapshot` fails the test.
fn assert_rejected(name: &str, bytes: &[u8]) -> SnapError {
    let path = scratch_path(name);
    fs::write(&path, bytes).unwrap();
    match read_snapshot(&path) {
        Err(err) => err,
        Ok(_) => panic!("mutated snapshot unexpectedly loaded"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating the file at any byte is a typed error.
    #[test]
    fn truncation_never_panics_and_never_loads(frac in 0.0f64..1.0) {
        let bytes = pristine();
        let keep = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = assert_rejected("trunc.qsnap", &bytes[..keep]);
        prop_assert!(matches!(
            err,
            SnapError::BadMagic
                | SnapError::Truncated { .. }
                | SnapError::ChecksumMismatch { .. }
                | SnapError::Corrupt { .. }
        ));
    }

    /// Flipping any single bit is a typed error — the layered checksums
    /// leave no unprotected byte.
    #[test]
    fn single_bit_flips_never_panic_and_never_load(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = pristine().to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let err = assert_rejected("flip.qsnap", &bytes);
        prop_assert!(matches!(
            err,
            SnapError::BadMagic
                | SnapError::UnsupportedVersion { .. }
                | SnapError::Truncated { .. }
                | SnapError::ChecksumMismatch { .. }
                | SnapError::Corrupt { .. }
        ));
    }

    /// Any version other than the supported one is rejected up front.
    #[test]
    fn version_bumps_are_unsupported(raw in 0u32..1000) {
        // The vendored proptest shim has no `prop_assume`; remap the one
        // supported version onto 0 (also unsupported) instead of skipping.
        let version = if raw == FORMAT_VERSION { 0 } else { raw };
        let mut bytes = pristine().to_vec();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let err = assert_rejected("version.qsnap", &bytes);
        prop_assert!(matches!(
            err,
            SnapError::UnsupportedVersion { found, supported }
                if found == version && supported == FORMAT_VERSION
        ));
    }

    /// Random garbage of any size never panics the reader.
    #[test]
    fn arbitrary_garbage_never_panics(data in proptest::collection::vec(0u8..=255, 0..512)) {
        assert_rejected("garbage.qsnap", &data);
    }
}

#[test]
fn pristine_snapshot_still_loads_after_all_mutation_rounds() {
    // Control: the unmutated bytes load fine, so the rejections above are
    // about the mutations, not the fixture.
    let path = scratch_path("control.qsnap");
    fs::write(&path, pristine()).unwrap();
    let (parts, _) = read_snapshot(&path).unwrap();
    assert_eq!(parts.id, 7);
    let (_, graph, index, shards) = build_components();
    assert_eq!(parts.graph.edges(), graph.edges());
    assert_eq!(parts.keyword.view(), index.view());
    assert_eq!(parts.shards.total_bytes(), shards.total_bytes());
}
