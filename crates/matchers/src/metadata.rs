//! Metadata matcher — the COMA++ substitute.
//!
//! COMA++ [Do & Rahm 2007] is a proprietary composite matcher; the paper
//! drives it as a black box over metadata only ("we used COMA++'s default
//! structural relationship and substring matchers over metadata"). This
//! module provides an open implementation with the same interface and the
//! same qualitative behaviour:
//!
//! * pairwise relation-vs-relation matching,
//! * name-based sub-matchers (token, trigram, edit-distance, substring)
//!   combined by weighted average,
//! * a structural sub-matcher that rewards attribute pairs whose *relations*
//!   also look related (COMA++'s path/context heuristic),
//! * no use of instance data, and
//! * confidence scores already normalised to `[0, 1]`, which in practice sit
//!   higher on average than MAD's scores — the property that drives the
//!   "average of matchers follows COMA++" observation around Figure 11.

use serde::{Deserialize, Serialize};

use q_storage::{Catalog, RelationId};

use crate::matcher::{keep_top_y_per_attribute, AttributeAlignment, SchemaMatcher};
use crate::strings;

/// Weights of the individual sub-matchers and acceptance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetadataMatcherConfig {
    /// Weight of token-set Jaccard similarity.
    pub token_weight: f64,
    /// Weight of character-trigram Dice similarity.
    pub trigram_weight: f64,
    /// Weight of normalised edit similarity.
    pub edit_weight: f64,
    /// Weight of substring/affix containment.
    pub containment_weight: f64,
    /// Weight of the structural (relation-context) bonus.
    pub structural_weight: f64,
    /// Minimum combined confidence for an alignment to be reported.
    pub threshold: f64,
}

impl Default for MetadataMatcherConfig {
    fn default() -> Self {
        MetadataMatcherConfig {
            token_weight: 0.35,
            trigram_weight: 0.2,
            edit_weight: 0.15,
            containment_weight: 0.15,
            structural_weight: 0.15,
            threshold: 0.3,
        }
    }
}

/// The metadata (schema-name) matcher.
#[derive(Debug, Clone, Default)]
pub struct MetadataMatcher {
    config: MetadataMatcherConfig,
}

impl MetadataMatcher {
    /// Matcher with default sub-matcher weights.
    pub fn new() -> Self {
        MetadataMatcher {
            config: MetadataMatcherConfig::default(),
        }
    }

    /// Matcher with custom configuration.
    pub fn with_config(config: MetadataMatcherConfig) -> Self {
        MetadataMatcher { config }
    }

    /// Name similarity between two attribute names (no structural context).
    pub fn name_similarity(&self, a: &str, b: &str) -> f64 {
        let c = &self.config;
        let base_weight = c.token_weight + c.trigram_weight + c.edit_weight + c.containment_weight;
        if base_weight <= 0.0 {
            return 0.0;
        }
        let score = c.token_weight * strings::token_jaccard(a, b)
            + c.trigram_weight * strings::trigram_dice(a, b)
            + c.edit_weight * strings::edit_similarity(a, b)
            + c.containment_weight * strings::containment(a, b);
        (score / base_weight).clamp(0.0, 1.0)
    }

    /// Combined confidence for an attribute pair given their relations'
    /// structural similarity.
    fn pair_confidence(&self, attr_a: &str, attr_b: &str, relation_similarity: f64) -> f64 {
        let c = &self.config;
        let name_sim = self.name_similarity(attr_a, attr_b);
        let total_weight = 1.0 + c.structural_weight;
        ((name_sim + c.structural_weight * relation_similarity * name_sim.max(0.3)) / total_weight)
            .clamp(0.0, 1.0)
    }
}

impl SchemaMatcher for MetadataMatcher {
    fn name(&self) -> &str {
        "metadata"
    }

    fn match_relations(
        &self,
        catalog: &Catalog,
        new_relation: RelationId,
        existing_relation: RelationId,
        top_y: usize,
    ) -> Vec<AttributeAlignment> {
        let (Some(new_rel), Some(existing_rel)) = (
            catalog.relation(new_relation),
            catalog.relation(existing_relation),
        ) else {
            return Vec::new();
        };
        let relation_similarity = self.name_similarity(&new_rel.name, &existing_rel.name);
        let mut alignments = Vec::new();
        for new_attr_id in &new_rel.attributes {
            let new_attr = catalog.attribute(*new_attr_id).expect("attribute exists");
            for existing_attr_id in &existing_rel.attributes {
                let existing_attr = catalog
                    .attribute(*existing_attr_id)
                    .expect("attribute exists");
                let confidence =
                    self.pair_confidence(&new_attr.name, &existing_attr.name, relation_similarity);
                if confidence >= self.config.threshold {
                    alignments.push(AttributeAlignment::new(
                        *new_attr_id,
                        *existing_attr_id,
                        confidence,
                    ));
                }
            }
        }
        keep_top_y_per_attribute(alignments, top_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(RelationSpec::new("go_term", &["acc", "name", "term_type"]))
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(RelationSpec::new("interpro2go", &["go_id", "entry_ac"]))
            .relation(RelationSpec::new("interpro_entry", &["entry_ac", "name"]))
            .relation(RelationSpec::new("interpro_pub", &["pub_id", "title"]))
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn identical_names_align_with_high_confidence() {
        let cat = catalog();
        let m = MetadataMatcher::new();
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let entry = cat.relation_by_name("interpro_entry").unwrap().id;
        let alignments = m.match_relations(&cat, i2g, entry, 2);
        let entry_ac_new = cat.resolve_qualified("interpro2go.entry_ac").unwrap();
        let entry_ac_existing = cat.resolve_qualified("interpro_entry.entry_ac").unwrap();
        let found = alignments
            .iter()
            .find(|a| a.new_attribute == entry_ac_new && a.existing_attribute == entry_ac_existing)
            .expect("entry_ac aligns with entry_ac");
        assert!(found.confidence > 0.8);
    }

    #[test]
    fn unrelated_names_score_below_related_names() {
        let m = MetadataMatcher::new();
        assert!(m.name_similarity("go_id", "acc") < m.name_similarity("go_id", "go_acc"));
        assert!(m.name_similarity("title", "pub_id") < m.name_similarity("pub_id", "pub_id"));
    }

    #[test]
    fn is_blind_to_instance_data() {
        // Two catalogs with the same schema but different data must produce
        // identical alignments, since the metadata matcher ignores tuples.
        let cat_empty = catalog();
        let mut cat_full = catalog();
        let term = cat_full.relation_by_name("go_term").unwrap().id;
        cat_full
            .insert_rows(
                term,
                vec![vec![
                    q_storage::Value::from("GO:1"),
                    q_storage::Value::from("x"),
                    q_storage::Value::from("t"),
                ]],
            )
            .unwrap();
        let m = MetadataMatcher::new();
        let i2g = cat_empty.relation_by_name("interpro2go").unwrap().id;
        let go = cat_empty.relation_by_name("go_term").unwrap().id;
        assert_eq!(
            m.match_relations(&cat_empty, i2g, go, 3),
            m.match_relations(&cat_full, i2g, go, 3)
        );
    }

    #[test]
    fn top_y_limits_candidates_per_attribute() {
        let cat = catalog();
        let m = MetadataMatcher::with_config(MetadataMatcherConfig {
            threshold: 0.0,
            ..MetadataMatcherConfig::default()
        });
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let go = cat.relation_by_name("go_term").unwrap().id;
        let y1 = m.match_relations(&cat, i2g, go, 1);
        let counts = y1
            .iter()
            .filter(|a| a.new_attribute == cat.resolve_qualified("interpro2go.go_id").unwrap());
        assert!(counts.count() <= 1);
    }

    #[test]
    fn match_against_merges_multiple_relations() {
        let cat = catalog();
        let m = MetadataMatcher::new();
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let others: Vec<RelationId> = cat
            .relations()
            .iter()
            .map(|r| r.id)
            .filter(|r| *r != i2g)
            .collect();
        let alignments = m.match_against(&cat, i2g, &others, 2);
        // entry_ac should find interpro_entry.entry_ac among its top picks.
        let entry_ac_new = cat.resolve_qualified("interpro2go.entry_ac").unwrap();
        let entry_ac_existing = cat.resolve_qualified("interpro_entry.entry_ac").unwrap();
        assert!(alignments
            .iter()
            .any(|a| a.new_attribute == entry_ac_new && a.existing_attribute == entry_ac_existing));
        // And no attribute gets more than 2 candidates.
        assert!(
            alignments
                .iter()
                .filter(|a| a.new_attribute == entry_ac_new)
                .count()
                <= 2
        );
    }

    #[test]
    fn threshold_filters_weak_alignments() {
        let cat = catalog();
        let strict = MetadataMatcher::with_config(MetadataMatcherConfig {
            threshold: 0.95,
            ..MetadataMatcherConfig::default()
        });
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let pubr = cat.relation_by_name("interpro_pub").unwrap().id;
        assert!(strict.match_relations(&cat, i2g, pubr, 3).is_empty());
    }

    #[test]
    fn confidence_is_always_normalised() {
        let cat = catalog();
        let m = MetadataMatcher::new();
        for new_rel in cat.relations() {
            for existing_rel in cat.relations() {
                if new_rel.id == existing_rel.id {
                    continue;
                }
                for a in m.match_relations(&cat, new_rel.id, existing_rel.id, 5) {
                    assert!(a.confidence >= 0.0 && a.confidence <= 1.0);
                }
            }
        }
    }
}
