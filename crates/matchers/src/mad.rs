//! Modified Adsorption (MAD) label propagation matcher (Section 3.2.2,
//! Algorithm 1).
//!
//! MAD builds a *column–value graph*: one node per attribute and one node per
//! distinct textual data value, with an edge between a value and every
//! attribute containing it. Each attribute node is injected with its own
//! label; labels then propagate through shared values, so attributes whose
//! value sets overlap — even only transitively — end up with similar label
//! distributions. The resulting distributions yield attribute alignments with
//! confidences, without any pairwise source comparison.
//!
//! Hyper-parameters follow the paper's experimental setup: µ1 = µ2 = 1,
//! µ3 = 0.01, 3 iterations, degree-one value nodes pruned, numeric values
//! pruned, random-walk probabilities from the entropy heuristic of Talukdar &
//! Crammer (2009). The per-iteration update is parallelised with
//! crossbeam-scoped threads, standing in for the paper's Hadoop MapReduce
//! implementation.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use q_storage::{AttributeId, Catalog, RelationId, Value};

use crate::matcher::{keep_top_y_per_attribute, AttributeAlignment, SchemaMatcher};

/// MAD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MadConfig {
    /// Weight of the injected-seed term (µ1).
    pub mu1: f64,
    /// Weight of the neighbourhood-agreement term (µ2).
    pub mu2: f64,
    /// Weight of the abandonment / dummy-label regulariser (µ3).
    pub mu3: f64,
    /// Maximum number of propagation iterations (the paper runs 3).
    pub iterations: usize,
    /// Early-stop tolerance on the largest per-node label change.
    pub tolerance: f64,
    /// β of the entropy heuristic that sets `p_cont`, `p_inj`, `p_abnd`.
    pub beta: f64,
    /// Remove value nodes with degree 1 before propagating.
    pub prune_degree_one: bool,
    /// Remove numeric values before propagating.
    pub prune_numeric: bool,
    /// Keep at most this many labels per node between iterations (0 = all).
    pub max_labels_per_node: usize,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for MadConfig {
    fn default() -> Self {
        MadConfig {
            mu1: 1.0,
            mu2: 1.0,
            mu3: 0.01,
            iterations: 3,
            tolerance: 1e-4,
            beta: 2.0,
            prune_degree_one: true,
            prune_numeric: true,
            max_labels_per_node: 32,
            threads: 0,
        }
    }
}

/// Sparse label distribution: label index -> score. A `BTreeMap` (not a
/// `HashMap`) so that float accumulation and truncation tie-breaking are
/// deterministic across runs — propagation scores feed top-Y cutoffs, and
/// hash-order-dependent summation made those cutoffs flip between runs.
type LabelVec = BTreeMap<u32, f64>;

/// CSR-style packed adjacency of the column–value graph: one flat
/// `(neighbour, weight)` array indexed by prefix-sum offsets. Built once in
/// [`MadMatcher::propagate`] and reused across every propagation iteration
/// (and the random-walk probability pass), instead of chasing a
/// `Vec<Vec<…>>` pointer per node per iteration.
struct PackedAdjacency {
    offsets: Vec<u32>,
    targets: Vec<(u32, f64)>,
}

impl PackedAdjacency {
    /// Pack nested neighbour lists, preserving per-node neighbour order.
    fn pack(adjacency: &[Vec<(usize, f64)>]) -> Self {
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for list in adjacency {
            total += list.len() as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        for list in adjacency {
            targets.extend(list.iter().map(|(n, w)| (*n as u32, *w)));
        }
        PackedAdjacency { offsets, targets }
    }

    #[inline]
    fn neighbors(&self, v: usize) -> &[(u32, f64)] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weighted degree of a node (Σ W_vu).
    #[inline]
    fn degree(&self, v: usize) -> f64 {
        self.neighbors(v).iter().map(|(_, w)| w).sum()
    }

    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Outcome of one MAD propagation run.
#[derive(Debug, Clone)]
pub struct MadResult {
    /// The label universe: label index i corresponds to `labels[i]`.
    labels: Vec<AttributeId>,
    /// Per-attribute label scores (excluding the dummy label), sorted
    /// descending by score. Ordered map so alignment derivation is
    /// deterministic.
    distributions: BTreeMap<AttributeId, Vec<(AttributeId, f64)>>,
    /// Number of nodes in the propagation graph after pruning.
    pub node_count: usize,
    /// Number of edges in the propagation graph after pruning.
    pub edge_count: usize,
    /// Iterations actually run.
    pub iterations_run: usize,
}

impl MadResult {
    /// Label scores estimated for an attribute (own label excluded), sorted
    /// by decreasing score.
    pub fn distribution(&self, attribute: AttributeId) -> &[(AttributeId, f64)] {
        self.distributions
            .get(&attribute)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All attributes that received a distribution.
    pub fn attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.distributions.keys().copied()
    }

    /// Number of labels propagated.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Derive the top-Y attribute alignments per attribute, keeping only
    /// scores at or above `threshold` and only pairs that span two different
    /// relations.
    pub fn top_alignments(
        &self,
        catalog: &Catalog,
        top_y: usize,
        threshold: f64,
    ) -> Vec<AttributeAlignment> {
        let mut alignments = Vec::new();
        for (attr, dist) in &self.distributions {
            let attr_rel = catalog.attribute(*attr).map(|a| a.relation);
            for (other, score) in dist.iter().take(top_y) {
                if *score < threshold {
                    continue;
                }
                let other_rel = catalog.attribute(*other).map(|a| a.relation);
                if attr_rel.is_some() && attr_rel == other_rel {
                    continue;
                }
                alignments.push(AttributeAlignment::new(*attr, *other, *score));
            }
        }
        keep_top_y_per_attribute(alignments, top_y)
    }
}

/// The MAD matcher.
#[derive(Debug, Clone, Default)]
pub struct MadMatcher {
    config: MadConfig,
}

impl MadMatcher {
    /// Matcher with the paper's default hyper-parameters.
    pub fn new() -> Self {
        MadMatcher {
            config: MadConfig::default(),
        }
    }

    /// Matcher with custom hyper-parameters.
    pub fn with_config(config: MadConfig) -> Self {
        MadMatcher { config }
    }

    /// Current configuration.
    pub fn config(&self) -> &MadConfig {
        &self.config
    }

    /// Run label propagation over the column–value graph of the given
    /// relations (all relations of the catalog if `relations` is empty).
    pub fn propagate(&self, catalog: &Catalog, relations: &[RelationId]) -> MadResult {
        let relations: Vec<RelationId> = if relations.is_empty() {
            catalog.relations().iter().map(|r| r.id).collect()
        } else {
            relations.to_vec()
        };

        // ---------------- Build the column–value graph ----------------
        // Node 0..A-1: attribute nodes; A..: value nodes.
        let mut attr_nodes: Vec<AttributeId> = Vec::new();
        for rel_id in &relations {
            if let Some(rel) = catalog.relation(*rel_id) {
                attr_nodes.extend(rel.attributes.iter().copied());
            }
        }
        let attr_index: HashMap<AttributeId, usize> = attr_nodes
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, i))
            .collect();

        // value text -> attributes containing it
        let mut value_postings: HashMap<String, Vec<usize>> = HashMap::new();
        for rel_id in &relations {
            let Some(rel) = catalog.relation(*rel_id) else {
                continue;
            };
            for tuple in &rel.tuples {
                for (attr_id, value) in rel.attributes.iter().zip(tuple.values()) {
                    if self.config.prune_numeric && !value.is_textual() {
                        continue;
                    }
                    if !self.config.prune_numeric && matches!(value, Value::Null) {
                        continue;
                    }
                    let Some(norm) = value.normalized() else {
                        continue;
                    };
                    let node = attr_index[attr_id];
                    let entry = value_postings.entry(norm).or_default();
                    if !entry.contains(&node) {
                        entry.push(node);
                    }
                }
            }
        }

        let num_attrs = attr_nodes.len();
        let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_attrs];
        let mut value_node_count = 0usize;
        let mut edge_count = 0usize;
        // Sort by value text before numbering value nodes: hash order would
        // otherwise permute adjacency lists (and thus float accumulation
        // order) from run to run.
        let mut value_postings: Vec<(String, Vec<usize>)> = value_postings.into_iter().collect();
        value_postings.sort_by(|a, b| a.0.cmp(&b.0));
        for (_value, attrs) in value_postings {
            if self.config.prune_degree_one && attrs.len() < 2 {
                continue;
            }
            let value_node = num_attrs + value_node_count;
            value_node_count += 1;
            adjacency.push(Vec::new());
            for a in attrs {
                adjacency[a].push((value_node, 1.0));
                adjacency[value_node].push((a, 1.0));
                edge_count += 1;
            }
        }
        // Pack the neighbour lists once; every pass below (probabilities,
        // normalisation constants, all propagation iterations) reads the
        // flat arrays.
        let adjacency = PackedAdjacency::pack(&adjacency);
        let n = adjacency.node_count();

        // ---------------- Random-walk probabilities ----------------
        // Entropy heuristic from Talukdar & Crammer (2009).
        let mut p_cont = vec![0.0f64; n];
        let mut p_inj = vec![0.0f64; n];
        let mut p_abnd = vec![0.0f64; n];
        for v in 0..n {
            let degree: f64 = adjacency.degree(v);
            if degree <= 0.0 {
                p_abnd[v] = 1.0;
                continue;
            }
            let entropy: f64 = adjacency
                .neighbors(v)
                .iter()
                .map(|(_, w)| {
                    let p = w / degree;
                    -p * p.ln()
                })
                .sum();
            let c = self.config.beta.ln() / (self.config.beta + entropy.exp()).ln();
            let d = if v < num_attrs {
                (1.0 - c) * entropy.sqrt()
            } else {
                0.0
            };
            let z = (c + d).max(1.0);
            p_cont[v] = c / z;
            p_inj[v] = d / z;
            p_abnd[v] = (1.0 - p_cont[v] - p_inj[v]).max(0.0);
        }

        // ---------------- Seed labels ----------------
        // Label i = attr_nodes[i]; dummy label index = num_attrs.
        let dummy_label = num_attrs as u32;
        let mut current: Vec<LabelVec> = vec![LabelVec::new(); n];
        let mut injected: Vec<LabelVec> = vec![LabelVec::new(); n];
        for v in 0..num_attrs {
            injected[v].insert(v as u32, 1.0);
            current[v].insert(v as u32, 1.0);
        }

        // Normalisation constant M_vv of Algorithm 1, line 2.
        let m_vv: Vec<f64> = (0..n)
            .map(|v| {
                let degree: f64 = adjacency.degree(v);
                self.config.mu1 * p_inj[v] + self.config.mu2 * p_cont[v] * degree + self.config.mu3
            })
            .collect();

        // ---------------- Propagate ----------------
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let mut iterations_run = 0usize;
        for _ in 0..self.config.iterations {
            iterations_run += 1;
            let next = self.iteration(
                &adjacency,
                &current,
                &injected,
                &p_cont,
                &p_inj,
                &p_abnd,
                &m_vv,
                dummy_label,
                threads,
            );
            let max_change = current
                .iter()
                .zip(&next)
                .map(|(a, b)| label_vec_change(a, b))
                .fold(0.0f64, f64::max);
            current = next;
            if max_change < self.config.tolerance {
                break;
            }
        }

        // ---------------- Collect distributions ----------------
        let mut distributions: BTreeMap<AttributeId, Vec<(AttributeId, f64)>> = BTreeMap::new();
        for (v, attr) in attr_nodes.iter().enumerate() {
            let mut scores: Vec<(AttributeId, f64)> = current[v]
                .iter()
                .filter(|(label, _)| **label != dummy_label && **label != v as u32)
                .map(|(label, score)| (attr_nodes[*label as usize], *score))
                .collect();
            scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            distributions.insert(*attr, scores);
        }

        MadResult {
            labels: attr_nodes,
            distributions,
            node_count: n,
            edge_count,
            iterations_run,
        }
    }

    /// One Jacobi iteration of Algorithm 1, optionally parallelised. Reads
    /// the packed adjacency built once per `propagate` call.
    #[allow(clippy::too_many_arguments)]
    fn iteration(
        &self,
        adjacency: &PackedAdjacency,
        current: &[LabelVec],
        injected: &[LabelVec],
        p_cont: &[f64],
        p_inj: &[f64],
        p_abnd: &[f64],
        m_vv: &[f64],
        dummy_label: u32,
        threads: usize,
    ) -> Vec<LabelVec> {
        let n = adjacency.node_count();
        let cfg = self.config;
        let update_node = |v: usize| -> LabelVec {
            // D_v = Σ_u (p_cont_v W_vu + p_cont_u W_uv) L_u
            let mut d: LabelVec = LabelVec::new();
            for (u, w) in adjacency.neighbors(v) {
                let u = *u as usize;
                let coeff = p_cont[v] * w + p_cont[u] * w;
                if coeff == 0.0 {
                    continue;
                }
                for (label, score) in &current[u] {
                    *d.entry(*label).or_insert(0.0) += coeff * score;
                }
            }
            // L_v = 1/M_vv (µ1 p_inj_v I_v + µ2 D_v + µ3 p_abnd_v R_v)
            let mut out: LabelVec = LabelVec::new();
            for (label, score) in &injected[v] {
                *out.entry(*label).or_insert(0.0) += cfg.mu1 * p_inj[v] * score;
            }
            for (label, score) in d {
                *out.entry(label).or_insert(0.0) += cfg.mu2 * score;
            }
            *out.entry(dummy_label).or_insert(0.0) += cfg.mu3 * p_abnd[v];
            let m = m_vv[v].max(1e-12);
            for score in out.values_mut() {
                *score /= m;
            }
            // Bound the number of labels kept per node.
            if cfg.max_labels_per_node > 0 && out.len() > cfg.max_labels_per_node {
                let mut entries: Vec<(u32, f64)> = out.into_iter().collect();
                entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                entries.truncate(cfg.max_labels_per_node);
                out = entries.into_iter().collect();
            }
            out
        };

        if threads <= 1 || n < 256 {
            return (0..n).map(update_node).collect();
        }

        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                if start >= end {
                    continue;
                }
                let update_node = &update_node;
                handles.push(
                    scope.spawn(move || (start..end).map(update_node).collect::<Vec<LabelVec>>()),
                );
            }
            // Handles are in chunk order, so joining in order rebuilds 0..n.
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("mad worker thread panicked"))
                .collect()
        })
    }
}

fn label_vec_change(a: &LabelVec, b: &LabelVec) -> f64 {
    let mut change = 0.0f64;
    for (label, score) in b {
        change = change.max((score - a.get(label).copied().unwrap_or(0.0)).abs());
    }
    for (label, score) in a {
        if !b.contains_key(label) {
            change = change.max(score.abs());
        }
    }
    change
}

impl SchemaMatcher for MadMatcher {
    fn name(&self) -> &str {
        "mad"
    }

    fn match_relations(
        &self,
        catalog: &Catalog,
        new_relation: RelationId,
        existing_relation: RelationId,
        top_y: usize,
    ) -> Vec<AttributeAlignment> {
        let result = self.propagate(catalog, &[new_relation, existing_relation]);
        let new_attrs: Vec<AttributeId> = catalog
            .relation(new_relation)
            .map(|r| r.attributes.clone())
            .unwrap_or_default();
        let alignments = result
            .top_alignments(catalog, top_y, 0.0)
            .into_iter()
            .filter(|a| new_attrs.contains(&a.new_attribute))
            .collect();
        keep_top_y_per_attribute(alignments, top_y)
    }

    /// MAD does not need pairwise comparisons: one global propagation over
    /// the new relation plus all existing relations yields alignments for
    /// every attribute at once.
    fn match_against(
        &self,
        catalog: &Catalog,
        new_relation: RelationId,
        existing_relations: &[RelationId],
        top_y: usize,
    ) -> Vec<AttributeAlignment> {
        let mut relations = vec![new_relation];
        relations.extend(existing_relations.iter().copied());
        relations.dedup();
        let result = self.propagate(catalog, &relations);
        let new_attrs: Vec<AttributeId> = catalog
            .relation(new_relation)
            .map(|r| r.attributes.clone())
            .unwrap_or_default();
        let alignments = result
            .top_alignments(catalog, top_y, 0.0)
            .into_iter()
            .filter(|a| new_attrs.contains(&a.new_attribute))
            .collect();
        keep_top_y_per_attribute(alignments, top_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    /// Catalog mimicking Figure 4: go_term.acc and interpro2go.go_id share
    /// most of their values; pub.title shares nothing with either.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:0009521", "photosystem"])
                    .row(["GO:0007652", "mating behavior"])
                    .row(["GO:0005134", "interleukin binding"])
                    .row(["GO:0031012", "extracellular matrix"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro2go", &["go_id", "entry_ac"])
                    .row(["GO:0009521", "IPR01"])
                    .row(["GO:0007652", "IPR02"])
                    .row(["GO:0005134", "IPR03"]),
            )
            .relation(
                RelationSpec::new("interpro_pub", &["pub_id", "title"])
                    .row(["P1", "Crystal structure of a kinase"])
                    .row(["P2", "Photosystem organisation"]),
            )
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn overlapping_attributes_receive_each_others_labels() {
        let cat = catalog();
        let mad = MadMatcher::new();
        let result = mad.propagate(&cat, &[]);
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        let dist = result.distribution(acc);
        assert!(
            dist.first().map(|(a, _)| *a) == Some(go_id),
            "go_term.acc should be labelled with interpro2go.go_id, got {dist:?}"
        );
        // And vice versa.
        let dist_back = result.distribution(go_id);
        assert_eq!(dist_back.first().map(|(a, _)| *a), Some(acc));
    }

    #[test]
    fn non_overlapping_attributes_do_not_align() {
        let cat = catalog();
        let mad = MadMatcher::new();
        let result = mad.propagate(&cat, &[]);
        let title = cat.resolve_qualified("interpro_pub.title").unwrap();
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        let dist = result.distribution(title);
        assert!(
            !dist.iter().any(|(a, s)| *a == go_id && *s > 0.05),
            "title should not strongly align with go_id: {dist:?}"
        );
    }

    #[test]
    fn top_alignments_recover_the_gold_pair() {
        let cat = catalog();
        let mad = MadMatcher::new();
        let result = mad.propagate(&cat, &[]);
        let alignments = result.top_alignments(&cat, 1, 0.0);
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        assert!(alignments.iter().any(|a| (a.new_attribute == acc
            && a.existing_attribute == go_id)
            || (a.new_attribute == go_id && a.existing_attribute == acc)));
    }

    #[test]
    fn degree_one_pruning_shrinks_the_graph() {
        let cat = catalog();
        let pruned = MadMatcher::new().propagate(&cat, &[]);
        let unpruned = MadMatcher::with_config(MadConfig {
            prune_degree_one: false,
            ..MadConfig::default()
        })
        .propagate(&cat, &[]);
        assert!(pruned.node_count < unpruned.node_count);
    }

    #[test]
    fn numeric_values_are_pruned_by_default() {
        let mut cat = Catalog::new();
        SourceSpec::new("s")
            .relation(RelationSpec::new("a", &["x"]).row(["123"]).row(["456"]))
            .relation(RelationSpec::new("b", &["y"]).row(["123"]).row(["456"]))
            .load_into(&mut cat)
            .unwrap();
        let mad = MadMatcher::new();
        let result = mad.propagate(&cat, &[]);
        // Only the two attribute nodes remain; no alignment via numbers.
        assert!(result.top_alignments(&cat, 1, 0.0).is_empty());
        // Allowing numeric values recovers the alignment.
        let permissive = MadMatcher::with_config(MadConfig {
            prune_numeric: false,
            ..MadConfig::default()
        });
        let result = permissive.propagate(&cat, &[]);
        assert!(!result.top_alignments(&cat, 1, 0.0).is_empty());
    }

    #[test]
    fn pairwise_interface_restricts_to_the_pair() {
        let cat = catalog();
        let mad = MadMatcher::new();
        let go_term = cat.relation_by_name("go_term").unwrap().id;
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let alignments = mad.match_relations(&cat, i2g, go_term, 2);
        assert!(!alignments.is_empty());
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        assert!(alignments
            .iter()
            .any(|a| a.new_attribute == go_id && a.existing_attribute == acc));
        // All proposed alignments start from the new relation's attributes.
        for a in &alignments {
            let rel = cat.attribute(a.new_attribute).unwrap().relation;
            assert_eq!(rel, i2g);
        }
    }

    #[test]
    fn global_match_against_uses_a_single_propagation() {
        let cat = catalog();
        let mad = MadMatcher::new();
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let others: Vec<RelationId> = cat
            .relations()
            .iter()
            .map(|r| r.id)
            .filter(|r| *r != i2g)
            .collect();
        let alignments = mad.match_against(&cat, i2g, &others, 2);
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        assert!(alignments
            .iter()
            .any(|a| a.new_attribute == go_id && a.existing_attribute == acc));
    }

    #[test]
    fn confidences_are_within_unit_interval() {
        let cat = catalog();
        let result = MadMatcher::new().propagate(&cat, &[]);
        for a in result.top_alignments(&cat, 5, 0.0) {
            assert!(a.confidence >= 0.0 && a.confidence <= 1.0);
        }
    }

    #[test]
    fn iterations_are_bounded_by_config() {
        let cat = catalog();
        let mad = MadMatcher::with_config(MadConfig {
            iterations: 1,
            ..MadConfig::default()
        });
        let result = mad.propagate(&cat, &[]);
        assert_eq!(result.iterations_run, 1);
        assert!(result.label_count() > 0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let cat = catalog();
        let serial = MadMatcher::with_config(MadConfig {
            threads: 1,
            ..MadConfig::default()
        })
        .propagate(&cat, &[]);
        let parallel = MadMatcher::with_config(MadConfig {
            threads: 4,
            ..MadConfig::default()
        })
        .propagate(&cat, &[]);
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let ds = serial.distribution(acc);
        let dp = parallel.distribution(acc);
        assert_eq!(ds.len(), dp.len());
        for ((a1, s1), (a2, s2)) in ds.iter().zip(dp.iter()) {
            assert_eq!(a1, a2);
            assert!((s1 - s2).abs() < 1e-9);
        }
    }
}
