//! The black-box matcher interface.

use serde::{Deserialize, Serialize};

use q_storage::{AttributeId, Catalog, RelationId, SourceId};

/// One proposed attribute alignment with a normalised confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeAlignment {
    /// Attribute of the newly registered relation.
    pub new_attribute: AttributeId,
    /// Attribute of an existing relation it aligns with.
    pub existing_attribute: AttributeId,
    /// Confidence in `[0, 1]` (already normalised, as the paper requires of
    /// black-box matchers before forming edge costs).
    pub confidence: f64,
}

impl AttributeAlignment {
    /// Construct an alignment, clamping the confidence into `[0, 1]`.
    pub fn new(
        new_attribute: AttributeId,
        existing_attribute: AttributeId,
        confidence: f64,
    ) -> Self {
        AttributeAlignment {
            new_attribute,
            existing_attribute,
            confidence: confidence.clamp(0.0, 1.0),
        }
    }
}

/// A pluggable pairwise schema matcher (the `BASEMATCHER` of Algorithms 2
/// and 3).
///
/// `match_relations` aligns the attributes of `new_relation` against those
/// of `existing_relation`, returning at most `top_y` candidate alignments per
/// new attribute. Matchers report every pair they scored via the returned
/// alignments' length only; the number of raw attribute comparisons is
/// `arity(new) × arity(existing)` and is tracked by the aligners.
pub trait SchemaMatcher {
    /// Short machine name used for edge provenance and learned per-matcher
    /// features (e.g. `"metadata"`, `"mad"`).
    fn name(&self) -> &str;

    /// Pairwise alignment between one new relation and one existing relation.
    fn match_relations(
        &self,
        catalog: &Catalog,
        new_relation: RelationId,
        existing_relation: RelationId,
        top_y: usize,
    ) -> Vec<AttributeAlignment>;

    /// Align a new relation against a set of existing relations, keeping the
    /// overall top-`top_y` alignments per new attribute. The default
    /// implementation calls [`SchemaMatcher::match_relations`] pairwise, which
    /// matches how black-box matchers like COMA++ are driven in the paper.
    fn match_against(
        &self,
        catalog: &Catalog,
        new_relation: RelationId,
        existing_relations: &[RelationId],
        top_y: usize,
    ) -> Vec<AttributeAlignment> {
        let mut all: Vec<AttributeAlignment> = Vec::new();
        for existing in existing_relations {
            if *existing == new_relation {
                continue;
            }
            all.extend(self.match_relations(catalog, new_relation, *existing, top_y));
        }
        keep_top_y_per_attribute(all, top_y)
    }

    /// Incremental scoring entry point for live source incorporation: score
    /// only the newly registered source's columns against the existing
    /// catalog, keeping the overall top-`top_y` alignments per new
    /// attribute.
    ///
    /// Every relation of `source` is matched against every relation of every
    /// *other* source (the new source's internal pairs are never scored —
    /// its schema arrived whole, so internal joins come from its declared
    /// foreign keys, not matcher guesses). Relations are visited in catalog
    /// order, so the proposal list — and with it the order association edges
    /// are added to the search graph — is deterministic.
    fn match_source(
        &self,
        catalog: &Catalog,
        source: SourceId,
        top_y: usize,
    ) -> Vec<AttributeAlignment> {
        let existing: Vec<RelationId> = catalog
            .relations()
            .iter()
            .filter(|r| r.source != source)
            .map(|r| r.id)
            .collect();
        let Some(src) = catalog.source(source) else {
            return Vec::new();
        };
        let mut all: Vec<AttributeAlignment> = Vec::new();
        for new_relation in &src.relations {
            all.extend(self.match_against(catalog, *new_relation, &existing, top_y));
        }
        keep_top_y_per_attribute(all, top_y)
    }
}

/// Keep only the `top_y` best alignments for each new attribute.
pub fn keep_top_y_per_attribute(
    mut alignments: Vec<AttributeAlignment>,
    top_y: usize,
) -> Vec<AttributeAlignment> {
    alignments.sort_by(|a, b| {
        a.new_attribute
            .cmp(&b.new_attribute)
            .then(b.confidence.total_cmp(&a.confidence))
            // Deterministic tie-break so equal-confidence candidates don't
            // make the top-Y cutoff depend on input order.
            .then(a.existing_attribute.cmp(&b.existing_attribute))
    });
    let mut out = Vec::new();
    let mut current: Option<AttributeId> = None;
    let mut kept = 0usize;
    for a in alignments.drain(..) {
        if current != Some(a.new_attribute) {
            current = Some(a.new_attribute);
            kept = 0;
        }
        if kept < top_y {
            out.push(a);
            kept += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_clamps_confidence() {
        let a = AttributeAlignment::new(AttributeId(0), AttributeId(1), 1.7);
        assert_eq!(a.confidence, 1.0);
        let b = AttributeAlignment::new(AttributeId(0), AttributeId(1), -0.3);
        assert_eq!(b.confidence, 0.0);
    }

    #[test]
    fn top_y_keeps_best_per_attribute() {
        let alignments = vec![
            AttributeAlignment::new(AttributeId(0), AttributeId(10), 0.5),
            AttributeAlignment::new(AttributeId(0), AttributeId(11), 0.9),
            AttributeAlignment::new(AttributeId(0), AttributeId(12), 0.7),
            AttributeAlignment::new(AttributeId(1), AttributeId(13), 0.2),
        ];
        let kept = keep_top_y_per_attribute(alignments, 2);
        assert_eq!(kept.len(), 3);
        // Attribute 0 keeps its two most confident candidates.
        let confs: Vec<f64> = kept
            .iter()
            .filter(|a| a.new_attribute == AttributeId(0))
            .map(|a| a.confidence)
            .collect();
        assert_eq!(confs, vec![0.9, 0.7]);
        // Attribute 1 keeps its single candidate.
        assert!(kept
            .iter()
            .any(|a| a.new_attribute == AttributeId(1) && (a.confidence - 0.2).abs() < 1e-12));
    }

    #[test]
    fn match_source_scores_only_new_columns_against_existing_sources() {
        use crate::MetadataMatcher;
        use q_storage::{RelationSpec, SourceSpec};
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(RelationSpec::new("go_term", &["acc", "name"]))
            .load_into(&mut cat)
            .unwrap();
        let new = SourceSpec::new("pubdb")
            .relation(RelationSpec::new("pub", &["pub_id", "name"]))
            .relation(RelationSpec::new("author", &["author_id", "name"]))
            .load_into(&mut cat)
            .unwrap();
        let matcher = MetadataMatcher::new();
        let alignments = matcher.match_source(&cat, new, 3);
        assert!(!alignments.is_empty());
        let go_attrs: Vec<AttributeId> =
            cat.relation_by_name("go_term").unwrap().attributes.clone();
        for a in &alignments {
            // New side always belongs to the new source; existing side never.
            let new_rel = cat.attribute(a.new_attribute).unwrap().relation;
            assert_eq!(cat.relation(new_rel).unwrap().source, new);
            assert!(go_attrs.contains(&a.existing_attribute));
        }
        // The two same-named `name` columns inside the new source were not
        // paired with each other.
        assert!(!alignments.iter().any(|a| {
            let existing_rel = cat.attribute(a.existing_attribute).unwrap().relation;
            cat.relation(existing_rel).unwrap().source == new
        }));
        // An unknown source scores nothing.
        assert!(matcher.match_source(&cat, SourceId(99), 3).is_empty());
    }

    #[test]
    fn top_y_zero_drops_everything() {
        let alignments = vec![AttributeAlignment::new(AttributeId(0), AttributeId(1), 0.9)];
        assert!(keep_top_y_per_attribute(alignments, 0).is_empty());
    }
}
