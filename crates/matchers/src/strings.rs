//! String-similarity primitives shared by the metadata matcher.
//!
//! These are the standard sub-matchers a COMA++-style composite matcher
//! combines: token overlap, character trigrams, normalised edit distance and
//! affix/substring containment.

use std::collections::HashSet;

/// Lower-case and keep only alphanumeric characters and separators.
pub fn normalize(name: &str) -> String {
    name.trim().to_lowercase()
}

/// Split an identifier into tokens on `_`, `-`, whitespace and digit/letter
/// boundaries (`entry_ac` -> `["entry", "ac"]`, `go_id` -> `["go", "id"]`).
pub fn tokenize(name: &str) -> Vec<String> {
    normalize(name)
        .split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Jaccard similarity between the token sets of two identifiers.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokenize(a).into_iter().collect();
    let tb: HashSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Character trigram set of a normalised identifier (with padding).
pub fn trigrams(name: &str) -> HashSet<String> {
    let padded = format!("  {}  ", normalize(name));
    let chars: Vec<char> = padded.chars().collect();
    let mut grams = HashSet::new();
    for w in chars.windows(3) {
        grams.insert(w.iter().collect());
    }
    grams
}

/// Dice coefficient over character trigrams.
pub fn trigram_dice(a: &str, b: &str) -> f64 {
    let ga = trigrams(a);
    let gb = trigrams(b);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let common = ga.intersection(&gb).count() as f64;
    2.0 * common / (ga.len() + gb.len()) as f64
}

/// Levenshtein edit distance.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit similarity: `1 - distance / max_len`, on the normalised strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    let max_len = na.chars().count().max(nb.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    1.0 - edit_distance(&na, &nb) as f64 / max_len as f64
}

/// Substring / prefix containment similarity (`pub` vs `publication`).
pub fn containment(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    if na == nb {
        return 1.0;
    }
    if na.contains(&nb) || nb.contains(&na) {
        let shorter = na.len().min(nb.len()) as f64;
        let longer = na.len().max(nb.len()) as f64;
        shorter / longer
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_identifiers() {
        assert_eq!(tokenize("entry_ac"), vec!["entry", "ac"]);
        assert_eq!(tokenize("GO ID"), vec!["go", "id"]);
        assert_eq!(tokenize("__"), Vec::<String>::new());
    }

    #[test]
    fn token_jaccard_identical_and_disjoint() {
        assert!((token_jaccard("entry_ac", "entry_ac") - 1.0).abs() < 1e-12);
        assert!((token_jaccard("entry_ac", "ac_entry") - 1.0).abs() < 1e-12);
        assert_eq!(token_jaccard("go_id", "title"), 0.0);
        assert!(token_jaccard("entry_ac", "entry_id") > 0.0);
    }

    #[test]
    fn edit_distance_classic_cases() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
    }

    #[test]
    fn edit_similarity_is_bounded() {
        assert!((edit_similarity("acc", "acc") - 1.0).abs() < 1e-12);
        let s = edit_similarity("acc", "accession");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn trigram_dice_detects_shared_substrings() {
        assert!(trigram_dice("go_id", "goid") > 0.3);
        assert!(trigram_dice("go_id", "title") < 0.2);
        assert!((trigram_dice("name", "name") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_prefers_full_overlap() {
        assert!((containment("pub", "publication") - 3.0 / 11.0).abs() < 1e-12);
        assert_eq!(containment("pub", "title"), 0.0);
        assert_eq!(containment("pub", "pub"), 1.0);
    }
}
