//! Schema-matching primitives for the Q system (Section 3.2).
//!
//! Q treats schema matchers as pluggable black boxes that emit
//! `(attribute pair, confidence)` alignments. Two complementary matchers are
//! provided, mirroring the paper's choice of COMA++ and MAD:
//!
//! * [`MetadataMatcher`] — a similarity-based metadata matcher in the style
//!   of COMA++ (the proprietary tool used by the paper): it combines token,
//!   trigram, edit-distance, substring and structural sub-matchers over
//!   relation and attribute *names*, and is blind to instance data.
//! * [`MadMatcher`] — the paper's new instance-level matcher: Modified
//!   Adsorption (MAD) label propagation over a column–value graph
//!   (Algorithm 1), which discovers type-compatible attributes through
//!   transitive value overlap without pairwise source comparisons.
//!
//! Both implement the [`SchemaMatcher`] trait so the aligners in `q-align`
//! and the Q pipeline in `q-core` can use either (or both) interchangeably.

pub mod mad;
pub mod matcher;
pub mod metadata;
pub mod strings;

pub use mad::{MadConfig, MadMatcher, MadResult};
pub use matcher::{keep_top_y_per_attribute, AttributeAlignment, SchemaMatcher};
pub use metadata::{MetadataMatcher, MetadataMatcherConfig};
