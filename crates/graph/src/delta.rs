//! Reachability pricing of an ingestion delta: how cheaply can the new
//! edges reach a given node of the merged graph?
//!
//! Live ingestion publishes a grown graph and must decide, per cached
//! answer, whether the growth can place a new join tree into that answer's
//! ranked list. Any such tree contains at least one *bridge* edge — a new
//! edge with an endpoint in the pre-existing graph — plus, for every
//! keyword of the query, a path from that bridge to one of the keyword's
//! match nodes. [`DeltaPricer`] computes the cost side of that argument:
//! one multi-source Dijkstra over the merged graph, seeded at the bridge
//! edges' endpoints with the bridge's own cost as the starting distance.
//! The resulting `dist(v)` is a lower bound on the cost of any tree that
//! both crosses a bridge and touches `v`, so
//!
//! ```text
//! price(entry) = max over keywords k of
//!                  min over match nodes a of k of dist(a)
//! ```
//!
//! lower-bounds every tree the ingestion enables for that entry — a
//! per-entry bound, strictly tighter than the global cheapest-bridge floor
//! (which is `min over all v of dist(v)`).
//!
//! The search reuses the PR 4 miss-path machinery: the 4-ary
//! [`IndexedHeap`] with in-place decrease-key and generation-stamped dense
//! distance buffers, so pricing the next publish is O(1) to start — no
//! per-publish buffer zeroing.

use crate::heap::IndexedHeap;
use crate::node::NodeId;
use crate::steiner::GraphView;

/// Reusable multi-source Dijkstra state for delta reachability pricing.
/// One instance prices any number of publishes over graphs of any size
/// (buffers grow to the largest graph seen and are then reused).
#[derive(Debug, Clone, Default)]
pub struct DeltaPricer {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    heap: IndexedHeap,
}

impl DeltaPricer {
    /// Run the multi-source search over `graph` from `seeds`: each seed is
    /// a node paired with its starting distance (for an ingestion delta,
    /// each bridge edge contributes both endpoints at the bridge's cost —
    /// the cheapest way to "be at" that endpoint having crossed the
    /// bridge). Duplicate seed nodes keep their minimum. Negative costs are
    /// clamped to zero like every other search in this crate.
    pub fn run<G: GraphView>(&mut self, graph: &G, seeds: &[(NodeId, f64)]) {
        let n = graph.node_count();
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        self.heap.reset(n);
        for &(node, cost) in seeds {
            let c = cost.max(0.0);
            if node.index() < n && c < self.dist_of(node) {
                self.visit(node.index(), c);
                self.heap.push(c, node.0);
            }
        }
        while let Some((d, node)) = self.heap.pop() {
            for &(edge, next) in graph.neighbors(NodeId(node)) {
                let nd = d + graph.edge_cost(edge).max(0.0);
                if nd < self.dist_of(next) - 1e-12 {
                    self.visit(next.index(), nd);
                    self.heap.push(nd, next.0);
                }
            }
        }
    }

    /// Distance of a node in the latest [`run`](Self::run) (∞ if no seed
    /// reaches it, or before any run).
    #[inline]
    pub fn dist(&self, node: NodeId) -> f64 {
        self.dist_of(node)
    }

    /// Cheapest distance into a node set (∞ for an empty set): the cost
    /// bound for "the delta reaches one of these nodes".
    pub fn cheapest_into(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|n| self.dist_of(*n))
            .fold(f64::INFINITY, f64::min)
    }

    #[inline]
    fn dist_of(&self, node: NodeId) -> f64 {
        let i = node.index();
        if i < self.stamp.len() && self.stamp[i] == self.generation && self.generation > 0 {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn visit(&mut self, node: usize, dist: f64) {
        self.dist[node] = dist;
        self.stamp[node] = self.generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeId;

    /// A line graph 0—1—2—…—n with unit edge costs.
    struct Line {
        adjacency: Vec<Vec<(EdgeId, NodeId)>>,
    }

    impl Line {
        fn new(nodes: usize) -> Self {
            let mut adjacency = vec![Vec::new(); nodes];
            for e in 0..nodes.saturating_sub(1) {
                adjacency[e].push((EdgeId(e as u32), NodeId(e as u32 + 1)));
                adjacency[e + 1].push((EdgeId(e as u32), NodeId(e as u32)));
            }
            Line { adjacency }
        }
    }

    impl GraphView for Line {
        fn node_count(&self) -> usize {
            self.adjacency.len()
        }
        fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
            &self.adjacency[node.index()]
        }
        fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
            (NodeId(edge.0), NodeId(edge.0 + 1))
        }
        fn edge_cost(&self, _edge: EdgeId) -> f64 {
            1.0
        }
    }

    #[test]
    fn distances_grow_away_from_the_seed() {
        let g = Line::new(5);
        let mut pricer = DeltaPricer::default();
        pricer.run(&g, &[(NodeId(0), 0.5)]);
        for (node, want) in [(0u32, 0.5), (1, 1.5), (2, 2.5), (3, 3.5), (4, 4.5)] {
            assert_eq!(pricer.dist(NodeId(node)), want);
        }
    }

    #[test]
    fn multiple_seeds_take_the_cheapest_and_duplicates_keep_the_minimum() {
        let g = Line::new(5);
        let mut pricer = DeltaPricer::default();
        pricer.run(&g, &[(NodeId(0), 0.2), (NodeId(4), 0.1), (NodeId(4), 9.0)]);
        assert_eq!(pricer.dist(NodeId(0)), 0.2);
        assert_eq!(pricer.dist(NodeId(1)), 1.2);
        // Node 3 is cheaper from the far seed.
        assert_eq!(pricer.dist(NodeId(3)), 1.1);
        assert_eq!(pricer.dist(NodeId(4)), 0.1);
        assert_eq!(
            pricer.cheapest_into(&[NodeId(1), NodeId(3)]),
            1.1,
            "set pricing takes the cheapest member"
        );
        assert_eq!(pricer.cheapest_into(&[]), f64::INFINITY);
    }

    #[test]
    fn reruns_reset_state_without_refilling_buffers() {
        let g = Line::new(4);
        let mut pricer = DeltaPricer::default();
        pricer.run(&g, &[(NodeId(0), 0.0)]);
        assert_eq!(pricer.dist(NodeId(3)), 3.0);
        pricer.run(&g, &[(NodeId(3), 0.0)]);
        assert_eq!(pricer.dist(NodeId(0)), 3.0);
        assert_eq!(pricer.dist(NodeId(3)), 0.0);
        // No seeds: everything is unreachable.
        pricer.run(&g, &[]);
        assert_eq!(pricer.dist(NodeId(0)), f64::INFINITY);
    }

    #[test]
    fn fresh_pricer_reports_infinity_everywhere() {
        let pricer = DeltaPricer::default();
        assert_eq!(pricer.dist(NodeId(7)), f64::INFINITY);
        assert_eq!(pricer.cheapest_into(&[NodeId(0)]), f64::INFINITY);
    }
}
