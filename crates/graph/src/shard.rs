//! Sharding of the search graph and keyword index by relation group.
//!
//! A [`ShardPlan`] partitions relations into `K` shards (all relations of a
//! source co-locate, so the "relation group" of the plan is the source).
//! [`GraphShards`] splits the packed CSR adjacency accordingly: each shard
//! owns a sub-CSR of the edges *interior* to it (both endpoints in the
//! shard), while cross-shard association and foreign-key edges live in a
//! single shared *boundary* CSR. Per node, the interior range of its own
//! shard plus the boundary range is exactly the global neighbourhood — the
//! coverage invariant pinned by [`GraphShards::covers`].
//!
//! The miss hot path deliberately keeps *traversing* the global CSR: the
//! Dijkstra relaxation rule breaks distance ties by adjacency order, so a
//! traversal stitched from per-shard ranges would have to re-merge them into
//! global edge order per visit to stay byte-identical — paying the merge on
//! every relaxation instead of never. What the shards carry instead is the
//! fanned *matching* path (each shard scores its own keyword candidates, see
//! [`ShardedKeywordIndex`]), the
//! boundary-edge structure, and the per-shard memory accounting surfaced as
//! `/metrics` gauges.

use serde::{Deserialize, Serialize};

use q_storage::{Catalog, RelationId};

use crate::csr::Csr;
use crate::edge::{EdgeId, EdgeKind};
use crate::keyword::{KeywordIndex, KeywordMatch, MatchConfig, ShardedKeywordIndex};
use crate::node::{Node, NodeId};
use crate::search_graph::SearchGraph;

/// A partition of the catalog's relations into `K` shards, keyed by owning
/// source so every relation group stays together.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: usize,
    /// Relation id index → shard. Relations unknown to the plan (registered
    /// after it was built) fall back to shard 0 until the next rebuild.
    relation_shard: Vec<u32>,
}

impl ShardPlan {
    /// Partition by source: all relations of source `s` land in shard
    /// `s % shards`. `shards` is clamped to at least 1.
    pub fn by_source(catalog: &Catalog, shards: usize) -> Self {
        let shards = shards.max(1);
        let len = catalog
            .relations()
            .iter()
            .map(|r| r.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut relation_shard = vec![0u32; len];
        for rel in catalog.relations() {
            relation_shard[rel.id.index()] = (rel.source.index() % shards) as u32;
        }
        ShardPlan {
            shards,
            relation_shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.max(1)
    }

    /// The raw relation → shard assignment (what a persistent snapshot
    /// stores).
    pub fn relation_shards(&self) -> &[u32] {
        &self.relation_shard
    }

    /// Reassemble a plan from its persisted parts.
    pub fn from_parts(shards: usize, relation_shard: Vec<u32>) -> Self {
        ShardPlan {
            shards: shards.max(1),
            relation_shard,
        }
    }

    /// Shard owning a relation (0 for relations unknown to the plan).
    pub fn shard_of_relation(&self, relation: RelationId) -> usize {
        self.relation_shard
            .get(relation.index())
            .copied()
            .unwrap_or(0) as usize
    }

    /// Shard owning a search-graph node, through its owning relation.
    /// `None` for query-local node kinds (keywords, values), which never
    /// appear in the base graph.
    pub fn shard_of_node(&self, graph: &SearchGraph, node: NodeId) -> Option<usize> {
        match graph.node(node) {
            Node::Relation(r) => Some(self.shard_of_relation(*r)),
            Node::Attribute(a) => graph
                .relation_of_attribute(*a)
                .map(|r| self.shard_of_relation(r)),
            Node::Value { .. } | Node::Keyword(_) => None,
        }
    }
}

/// The search graph's adjacency split along a [`ShardPlan`]: one packed
/// interior sub-CSR per shard plus the shared boundary section holding every
/// cross-shard edge.
#[derive(Debug, Clone, Default)]
pub struct GraphShards {
    interior: Vec<Csr>,
    boundary: Csr,
    interior_edge_counts: Vec<usize>,
    boundary_edge_count: usize,
}

impl GraphShards {
    /// Partition the graph's edges: an edge whose endpoints resolve to the
    /// same shard is interior to it; everything else (cross-shard
    /// associations and foreign keys) goes to the shared boundary section.
    pub fn build(graph: &SearchGraph, plan: &ShardPlan) -> Self {
        let k = plan.shards();
        let mut interior_edges: Vec<Vec<(EdgeId, NodeId, NodeId)>> = vec![Vec::new(); k];
        let mut boundary_edges: Vec<(EdgeId, NodeId, NodeId)> = Vec::new();
        for edge in graph.edges() {
            let sa = plan.shard_of_node(graph, edge.a);
            let sb = plan.shard_of_node(graph, edge.b);
            match (sa, sb) {
                (Some(a), Some(b)) if a == b => interior_edges[a].push((edge.id, edge.a, edge.b)),
                _ => boundary_edges.push((edge.id, edge.a, edge.b)),
            }
        }
        let n = graph.node_count();
        GraphShards {
            interior_edge_counts: interior_edges.iter().map(Vec::len).collect(),
            boundary_edge_count: boundary_edges.len(),
            interior: interior_edges
                .iter()
                .map(|edges| Csr::build(n, edges.iter().copied()))
                .collect(),
            boundary: Csr::build(n, boundary_edges.iter().copied()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.interior.len()
    }

    /// The per-shard interior sub-CSRs, in shard order.
    pub fn interior_csrs(&self) -> &[Csr] {
        &self.interior
    }

    /// The shared boundary CSR (cross-shard edges).
    pub fn boundary_csr(&self) -> &Csr {
        &self.boundary
    }

    /// Per-shard interior edge counts, in shard order.
    pub fn interior_edge_counts(&self) -> &[usize] {
        &self.interior_edge_counts
    }

    /// Reassemble a split from its persisted parts.
    pub fn from_parts(
        interior: Vec<Csr>,
        boundary: Csr,
        interior_edge_counts: Vec<usize>,
        boundary_edge_count: usize,
    ) -> Self {
        debug_assert_eq!(interior.len(), interior_edge_counts.len());
        GraphShards {
            interior,
            boundary,
            interior_edge_counts,
            boundary_edge_count,
        }
    }

    /// Edges interior to one shard.
    pub fn interior_edge_count(&self, shard: usize) -> usize {
        self.interior_edge_counts.get(shard).copied().unwrap_or(0)
    }

    /// Cross-shard edges held in the shared boundary section.
    pub fn boundary_edge_count(&self) -> usize {
        self.boundary_edge_count
    }

    /// Interior neighbourhood of a node within one shard.
    pub fn interior_neighbors(&self, shard: usize, node: NodeId) -> &[(EdgeId, NodeId)] {
        self.interior
            .get(shard)
            .map_or(&[], |csr| csr.neighbors(node))
    }

    /// Boundary neighbourhood of a node (cross-shard edges only).
    pub fn boundary_neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        self.boundary.neighbors(node)
    }

    /// Packed bytes of one shard's interior sub-CSR.
    pub fn interior_bytes(&self, shard: usize) -> usize {
        self.interior.get(shard).map_or(0, Csr::byte_size)
    }

    /// Packed bytes of the shared boundary section.
    pub fn boundary_bytes(&self) -> usize {
        self.boundary.byte_size()
    }

    /// The coverage invariant: for every node owned by some shard, the union
    /// of its interior range (in its own shard) and its boundary range is
    /// exactly its global neighbourhood. Used by the equivalence test layer;
    /// linear in the adjacency size.
    pub fn covers(&self, graph: &SearchGraph, plan: &ShardPlan) -> bool {
        for (node, _) in graph.nodes() {
            let Some(shard) = plan.shard_of_node(graph, node) else {
                return false;
            };
            let mut split: Vec<(EdgeId, NodeId)> = self
                .interior_neighbors(shard, node)
                .iter()
                .chain(self.boundary_neighbors(node))
                .copied()
                .collect();
            let mut global: Vec<(EdgeId, NodeId)> = graph.neighbors(node).to_vec();
            split.sort_unstable();
            global.sort_unstable();
            if split != global {
                return false;
            }
        }
        true
    }
}

/// Structural stamp a [`ShardSet`] was built against. The stamp tracks only
/// *structure* (relations, documents, nodes, edges) — weight epochs bump on
/// feedback without changing what belongs to which shard, so repriced graphs
/// keep their shard set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStamp {
    relations: usize,
    documents: usize,
    nodes: usize,
    edges: usize,
}

impl ShardStamp {
    fn current(catalog: &Catalog, graph: &SearchGraph, index: &KeywordIndex) -> Self {
        ShardStamp {
            relations: catalog.relations().len(),
            documents: index.len(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
        }
    }
}

/// Everything the sharded serving path needs, built together so the plan,
/// the graph split and the keyword partition always agree: the shard plan,
/// the per-shard sub-CSRs with their boundary section, the partitioned
/// keyword index, and the freshness stamp.
#[derive(Debug, Clone, Default)]
pub struct ShardSet {
    plan: ShardPlan,
    graph_shards: GraphShards,
    keyword: ShardedKeywordIndex,
    stamp: ShardStamp,
}

impl ShardSet {
    /// Build the full shard structure for `shards` shards.
    pub fn build(
        catalog: &Catalog,
        graph: &SearchGraph,
        index: &KeywordIndex,
        shards: usize,
    ) -> Self {
        let plan = ShardPlan::by_source(catalog, shards);
        ShardSet {
            graph_shards: GraphShards::build(graph, &plan),
            keyword: ShardedKeywordIndex::build(index, catalog, &plan),
            stamp: ShardStamp::current(catalog, graph, index),
            plan,
        }
    }

    /// True while the structures this set was built from are unchanged (no
    /// relation/document/node/edge was added since). Weight-only changes
    /// keep a set fresh.
    pub fn is_fresh(&self, catalog: &Catalog, graph: &SearchGraph, index: &KeywordIndex) -> bool {
        self.stamp == ShardStamp::current(catalog, graph, index)
    }

    /// Reassemble a shard set from persisted parts. The freshness stamp is
    /// re-derived from the structures the set serves — loading a snapshot
    /// restores exactly the state the set was built against, so the stamp is
    /// fresh by construction.
    pub fn from_parts(
        catalog: &Catalog,
        graph: &SearchGraph,
        index: &KeywordIndex,
        plan: ShardPlan,
        graph_shards: GraphShards,
        keyword: ShardedKeywordIndex,
    ) -> Self {
        ShardSet {
            plan,
            graph_shards,
            keyword,
            stamp: ShardStamp::current(catalog, graph, index),
        }
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The graph-side split.
    pub fn graph_shards(&self) -> &GraphShards {
        &self.graph_shards
    }

    /// The keyword-index partition.
    pub fn keyword_partition(&self) -> &ShardedKeywordIndex {
        &self.keyword
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.plan.shards()
    }

    /// Cross-shard edges in the shared boundary section.
    pub fn boundary_edge_count(&self) -> usize {
        self.graph_shards.boundary_edge_count()
    }

    /// Keyword matching through the per-shard fan-out — byte-identical to
    /// [`KeywordIndex::matches`] (falls back to it outright if `index` has
    /// grown past this set's stamp).
    pub fn keyword_matches(
        &self,
        index: &KeywordIndex,
        keyword: &str,
        config: &MatchConfig,
    ) -> Vec<KeywordMatch> {
        if self.keyword.doc_count() != index.len() {
            return index.matches(keyword, config);
        }
        self.keyword.matches_sharded(index, keyword, config)
    }

    /// Bytes owned by each shard: its interior sub-CSR plus its keyword
    /// postings share.
    pub fn shard_bytes(&self) -> Vec<u64> {
        let postings = self.keyword.postings_bytes();
        (0..self.shard_count())
            .map(|s| {
                self.graph_shards.interior_bytes(s) as u64 + postings.get(s).copied().unwrap_or(0)
            })
            .collect()
    }

    /// Total snapshot bytes: every shard's share plus the shared boundary
    /// section.
    pub fn total_bytes(&self) -> u64 {
        self.shard_bytes().iter().sum::<u64>() + self.graph_shards.boundary_bytes() as u64
    }

    /// Count of cross-shard edges of one kind in the boundary section —
    /// observability for the scale experiment (how many synthetic FK links
    /// actually cross shards).
    pub fn boundary_edges_of_kind(&self, graph: &SearchGraph, kind: EdgeKind) -> usize {
        graph
            .edges()
            .iter()
            .filter(|e| {
                e.kind == kind && {
                    let sa = self.plan.shard_of_node(graph, e.a);
                    let sb = self.plan.shard_of_node(graph, e.b);
                    sa != sb || sa.is_none()
                }
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("entry", &["entry_ac", "name"]).row(["IPR1", "Kringle domain"]),
            )
            .relation(
                RelationSpec::new("interpro2go", &["entry_ac", "go_id"]).row(["IPR1", "GO:1"]),
            )
            .foreign_key("interpro2go.entry_ac", "entry.entry_ac")
            .foreign_key("interpro2go.go_id", "go_term.acc")
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("pubs")
            .relation(RelationSpec::new("pub", &["pub_id", "title"]).row(["P1", "Membranes"]))
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn plan_keeps_a_sources_relations_together() {
        let cat = catalog();
        for k in [1, 2, 4, 7] {
            let plan = ShardPlan::by_source(&cat, k);
            assert_eq!(plan.shards(), k);
            for rel in cat.relations() {
                assert_eq!(
                    plan.shard_of_relation(rel.id),
                    rel.source.index() % k,
                    "relation {} strays from its source's shard",
                    rel.name
                );
            }
        }
    }

    #[test]
    fn shards_cover_the_global_adjacency_for_any_shard_count() {
        let cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        for k in [1, 2, 4, 7] {
            let plan = ShardPlan::by_source(&cat, k);
            let shards = GraphShards::build(&graph, &plan);
            assert_eq!(shards.shard_count(), k);
            assert!(shards.covers(&graph, &plan), "coverage broken at K={k}");
            let interior: usize = (0..k).map(|s| shards.interior_edge_count(s)).sum();
            assert_eq!(
                interior + shards.boundary_edge_count(),
                graph.edge_count(),
                "every edge is either interior or boundary"
            );
        }
    }

    #[test]
    fn single_shard_has_no_boundary_and_cross_source_fks_cross_shards() {
        let cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        let one = GraphShards::build(&graph, &ShardPlan::by_source(&cat, 1));
        assert_eq!(one.boundary_edge_count(), 0);
        // The interpro→go foreign key links sources 0 and 1, which land in
        // different shards at K=2.
        let two = GraphShards::build(&graph, &ShardPlan::by_source(&cat, 2));
        assert!(two.boundary_edge_count() > 0);
    }

    #[test]
    fn shard_set_accounts_bytes_and_tracks_freshness() {
        let mut cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        let index = KeywordIndex::build(&cat);
        let set = ShardSet::build(&cat, &graph, &index, 4);
        assert!(set.is_fresh(&cat, &graph, &index));
        assert_eq!(set.shard_bytes().len(), 4);
        assert!(set.total_bytes() > 0);
        assert!(set.shard_bytes().iter().sum::<u64>() <= set.total_bytes());
        // Matching through the set is byte-identical to the index.
        let cfg = MatchConfig::default();
        for kw in ["name", "membrane", "kringle"] {
            assert_eq!(
                set.keyword_matches(&index, kw, &cfg),
                index.matches(kw, &cfg)
            );
        }
        // Growing the catalog stales the set.
        SourceSpec::new("late")
            .relation(RelationSpec::new("late_rel", &["id", "note"]).row(["L1", "late"]))
            .load_into(&mut cat)
            .unwrap();
        assert!(!set.is_fresh(&cat, &graph, &index));
    }

    #[test]
    fn stale_keyword_partition_falls_back_to_the_unsharded_path() {
        let mut cat = catalog();
        let graph = SearchGraph::from_catalog(&cat);
        let index = KeywordIndex::build(&cat);
        let set = ShardSet::build(&cat, &graph, &index, 2);
        // Grow the index past the partition's stamp: the set must serve the
        // unsharded result rather than consult a misaligned partition.
        let src = cat.add_source("grown").unwrap();
        let rel = cat
            .add_relation(src, "grown_rel", &["id", "label"])
            .unwrap();
        let mut grown = index.clone();
        grown.add_relation(&cat, rel);
        let cfg = MatchConfig::default();
        for kw in ["name", "label", "membrane"] {
            assert_eq!(
                set.keyword_matches(&grown, kw, &cfg),
                grown.matches(kw, &cfg)
            );
        }
    }
}
