//! Keyword matching against schema elements and data values (Section 2.2).
//!
//! Q matches each query keyword against relation names, attribute names and
//! pre-indexed data values using a keyword similarity metric — tf-idf by
//! default in the paper, with edit-distance / n-grams as alternatives. The
//! [`KeywordIndex`] here scores candidates with a combination of
//! idf-weighted token cosine similarity and character-trigram Dice
//! similarity, which behaves like the paper's default for the bioinformatics
//! vocabularies used in the evaluation.
//!
//! # Columnar layout
//!
//! The index stores its documents *columnar*: one shared text blob with
//! per-document end offsets, a canonical token dictionary with flat
//! per-document token-id runs, and per-document runs of packed `u64`
//! character trigrams (three scalar values ≤ `0x10FFFF` < 2²¹, packed into
//! 21-bit lanes — injective, so trigram set intersection over the packed
//! keys equals intersection over the strings). Postings are flat arrays
//! sliced by end offsets. Two properties follow:
//!
//! * a persistent snapshot can reconstruct a serving index from the raw
//!   columns with a handful of bulk copies ([`KeywordIndex::from_parts`])
//!   instead of millions of per-document string/hash-set allocations, and
//! * the whole index is deterministic by construction — postings are built
//!   in ascending document order, the dictionary is canonically sorted, and
//!   no per-document hash iteration order can leak into scores.
//!
//! Scoring is bit-identical to the previous per-document representation:
//! the idf values are computed from the same document frequencies, the
//! cosine dot product accumulates in query-token order, and the Dice
//! numerator is a sorted-merge intersection count over the packed trigram
//! sets.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use q_storage::{AttributeId, Catalog, RelationId, Value};

use crate::shard::ShardPlan;

/// What a keyword matched.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchTarget {
    /// A relation name.
    Relation(RelationId),
    /// An attribute name.
    Attribute(AttributeId),
    /// A data value of an attribute.
    Value {
        /// Attribute the value belongs to.
        attribute: AttributeId,
        /// Normalised value text.
        value: String,
    },
}

/// One keyword match with its similarity score in `(0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeywordMatch {
    /// The matched schema element or value.
    pub target: MatchTarget,
    /// Similarity score; the query-graph mismatch cost is `1 - similarity`.
    pub similarity: f64,
}

/// Tunable matching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Minimum similarity for a match to be reported.
    pub min_similarity: f64,
    /// Maximum number of matches returned per keyword.
    pub max_matches: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            min_similarity: 0.35,
            max_matches: 16,
        }
    }
}

/// Packed-target discriminants of the columnar document store. A `Value`
/// target stores only its attribute id — its value text *is* the document
/// text (both construction sites index a value under its own normalised
/// text), so materialisation reads it back from the text blob.
const TARGET_RELATION: u8 = 0;
const TARGET_ATTRIBUTE: u8 = 1;
const TARGET_VALUE: u8 = 2;

/// Prepared query-side state for one keyword lookup — see
/// [`KeywordIndex::query_terms`].
struct QueryTerms {
    /// One entry per query-token *occurrence* (duplicates and order kept —
    /// the cosine dot product accumulates in this order): the dictionary
    /// id, or `None` for out-of-vocabulary tokens.
    token_ids: Vec<Option<u32>>,
    /// Sorted distinct packed trigrams of the normalised keyword.
    trigrams: Vec<u64>,
    norm: String,
    norm_sq: f64,
    candidates: Vec<usize>,
}

/// Owned columnar contents of a [`KeywordIndex`]: the exact field set a
/// persistent snapshot stores. [`KeywordIndex::from_parts`] reconstructs a
/// serving index from these without re-running tokenisation, trigram
/// extraction or finalisation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeywordIndexParts {
    /// Per-document target discriminant (relation / attribute / value).
    pub target_kinds: Vec<u8>,
    /// Per-document target id (relation id or attribute id).
    pub target_ids: Vec<u32>,
    /// All normalised document texts, concatenated.
    pub text_blob: String,
    /// Per-document end offset into `text_blob`.
    pub text_ends: Vec<u32>,
    /// Flat per-document token-id runs (occurrence order, duplicates kept).
    pub token_ids: Vec<u32>,
    /// Per-document end offset into `token_ids`.
    pub token_ends: Vec<u32>,
    /// Flat per-document sorted distinct packed trigram runs.
    pub doc_trigrams: Vec<u64>,
    /// Per-document end offset into `doc_trigrams`.
    pub trigram_ends: Vec<u32>,
    /// Canonical (sorted) token dictionary.
    pub token_names: Vec<String>,
    /// Flat token postings: ascending document indices per token id.
    pub token_postings: Vec<u32>,
    /// Per-token end offset into `token_postings`.
    pub token_posting_ends: Vec<u32>,
    /// Sorted distinct packed trigram keys.
    pub trigram_keys: Vec<u64>,
    /// Flat trigram postings: ascending document indices per key.
    pub trigram_postings: Vec<u32>,
    /// Per-key end offset into `trigram_postings`.
    pub trigram_posting_ends: Vec<u32>,
    /// Inverse document frequency per token id.
    pub idf: Vec<f64>,
    /// Per-document idf-weighted squared token norm.
    pub doc_norm_sq: Vec<f64>,
}

/// Borrowed view of the same columns — what a snapshot writer reads, and
/// what the convergence tests compare (transient lookup state excluded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeywordIndexView<'a> {
    /// See [`KeywordIndexParts::target_kinds`].
    pub target_kinds: &'a [u8],
    /// See [`KeywordIndexParts::target_ids`].
    pub target_ids: &'a [u32],
    /// See [`KeywordIndexParts::text_blob`].
    pub text_blob: &'a str,
    /// See [`KeywordIndexParts::text_ends`].
    pub text_ends: &'a [u32],
    /// See [`KeywordIndexParts::token_ids`].
    pub token_ids: &'a [u32],
    /// See [`KeywordIndexParts::token_ends`].
    pub token_ends: &'a [u32],
    /// See [`KeywordIndexParts::doc_trigrams`].
    pub doc_trigrams: &'a [u64],
    /// See [`KeywordIndexParts::trigram_ends`].
    pub trigram_ends: &'a [u32],
    /// See [`KeywordIndexParts::token_names`].
    pub token_names: &'a [String],
    /// See [`KeywordIndexParts::token_postings`].
    pub token_postings: &'a [u32],
    /// See [`KeywordIndexParts::token_posting_ends`].
    pub token_posting_ends: &'a [u32],
    /// See [`KeywordIndexParts::trigram_keys`].
    pub trigram_keys: &'a [u64],
    /// See [`KeywordIndexParts::trigram_postings`].
    pub trigram_postings: &'a [u32],
    /// See [`KeywordIndexParts::trigram_posting_ends`].
    pub trigram_posting_ends: &'a [u32],
    /// See [`KeywordIndexParts::idf`].
    pub idf: &'a [f64],
    /// See [`KeywordIndexParts::doc_norm_sq`].
    pub doc_norm_sq: &'a [f64],
}

/// tf-idf / trigram index over schema elements and data values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeywordIndex {
    // Persistent columnar state — see [`KeywordIndexParts`] for field docs.
    target_kinds: Vec<u8>,
    target_ids: Vec<u32>,
    text_blob: String,
    text_ends: Vec<u32>,
    token_ids: Vec<u32>,
    token_ends: Vec<u32>,
    doc_trigrams: Vec<u64>,
    trigram_ends: Vec<u32>,
    token_names: Vec<String>,
    token_postings: Vec<u32>,
    token_posting_ends: Vec<u32>,
    trigram_keys: Vec<u64>,
    trigram_postings: Vec<u32>,
    trigram_posting_ends: Vec<u32>,
    idf: Vec<f64>,
    doc_norm_sq: Vec<f64>,
    /// Transient token-name → id map for interning during `add_document`;
    /// invalidated by `finalize` (the remap renumbers ids) and by
    /// `from_parts`, rebuilt lazily when its size disagrees with the
    /// dictionary.
    token_lookup: HashMap<String, u32>,
    /// Transient set of every indexed target, for O(1) duplicate rejection
    /// in `add_document` — a linear scan there is quadratic in corpus size
    /// and dominates snapshot builds past ~10⁵ documents. Exactly one entry
    /// per document; rebuilt lazily when the sizes disagree (e.g. after
    /// `from_parts`).
    seen_targets: HashSet<MatchTarget>,
}

/// Half-open range `doc`'s run occupies in a flat column with end offsets.
#[inline]
fn run(ends: &[u32], idx: usize) -> (usize, usize) {
    let start = if idx == 0 { 0 } else { ends[idx - 1] as usize };
    (start, ends[idx] as usize)
}

impl KeywordIndex {
    /// Index every relation name, attribute name and distinct textual data
    /// value in the catalog.
    pub fn build(catalog: &Catalog) -> Self {
        let mut idx = KeywordIndex::default();
        for rel in catalog.relations() {
            idx.add_document(MatchTarget::Relation(rel.id), &rel.name);
            for attr_id in &rel.attributes {
                if let Some(attr) = catalog.attribute(*attr_id) {
                    idx.add_document(MatchTarget::Attribute(attr.id), &attr.name);
                }
            }
        }
        for rel in catalog.relations() {
            for attr_id in &rel.attributes {
                let attr = catalog.attribute(*attr_id).expect("attribute exists");
                let mut seen = HashSet::new();
                for tuple in &rel.tuples {
                    if let Some(value) = tuple.get(attr.position) {
                        if !matches!(value, Value::Text(_)) {
                            continue;
                        }
                        if let Some(norm) = value.normalized() {
                            if seen.insert(norm.clone()) {
                                idx.add_document(
                                    MatchTarget::Value {
                                        attribute: attr.id,
                                        value: norm.clone(),
                                    },
                                    &norm,
                                );
                            }
                        }
                    }
                }
            }
        }
        idx.finalize(catalog);
        idx
    }

    /// Add the schema elements and values of one relation to an existing
    /// index (used when a new source is registered).
    pub fn add_relation(&mut self, catalog: &Catalog, relation: RelationId) {
        let Some(rel) = catalog.relation(relation) else {
            return;
        };
        self.add_document(MatchTarget::Relation(rel.id), &rel.name);
        for attr_id in &rel.attributes {
            if let Some(attr) = catalog.attribute(*attr_id) {
                self.add_document(MatchTarget::Attribute(attr.id), &attr.name);
                let mut seen = HashSet::new();
                for tuple in &rel.tuples {
                    if let Some(Value::Text(_)) = tuple.get(attr.position) {
                        if let Some(norm) = tuple.get(attr.position).and_then(Value::normalized) {
                            if seen.insert(norm.clone()) {
                                self.add_document(
                                    MatchTarget::Value {
                                        attribute: attr.id,
                                        value: norm.clone(),
                                    },
                                    &norm,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.finalize(catalog);
    }

    /// Reconstruct a finalized serving index from persisted columns. The
    /// caller (the snapshot layer) is responsible for the columns being a
    /// faithful copy of a previously finalized index; internal consistency
    /// of the offsets is checked in debug builds.
    pub fn from_parts(parts: KeywordIndexParts) -> Self {
        let idx = KeywordIndex {
            target_kinds: parts.target_kinds,
            target_ids: parts.target_ids,
            text_blob: parts.text_blob,
            text_ends: parts.text_ends,
            token_ids: parts.token_ids,
            token_ends: parts.token_ends,
            doc_trigrams: parts.doc_trigrams,
            trigram_ends: parts.trigram_ends,
            token_names: parts.token_names,
            token_postings: parts.token_postings,
            token_posting_ends: parts.token_posting_ends,
            trigram_keys: parts.trigram_keys,
            trigram_postings: parts.trigram_postings,
            trigram_posting_ends: parts.trigram_posting_ends,
            idf: parts.idf,
            doc_norm_sq: parts.doc_norm_sq,
            token_lookup: HashMap::new(),
            seen_targets: HashSet::new(),
        };
        debug_assert_eq!(idx.text_ends.len(), idx.len());
        debug_assert_eq!(idx.token_ends.len(), idx.len());
        debug_assert_eq!(idx.trigram_ends.len(), idx.len());
        debug_assert_eq!(idx.doc_norm_sq.len(), idx.len());
        debug_assert_eq!(idx.idf.len(), idx.token_names.len());
        debug_assert_eq!(idx.token_posting_ends.len(), idx.token_names.len());
        debug_assert_eq!(idx.trigram_posting_ends.len(), idx.trigram_keys.len());
        idx
    }

    /// Borrowed view of the persistent columns (what a snapshot persists).
    pub fn view(&self) -> KeywordIndexView<'_> {
        KeywordIndexView {
            target_kinds: &self.target_kinds,
            target_ids: &self.target_ids,
            text_blob: &self.text_blob,
            text_ends: &self.text_ends,
            token_ids: &self.token_ids,
            token_ends: &self.token_ends,
            doc_trigrams: &self.doc_trigrams,
            trigram_ends: &self.trigram_ends,
            token_names: &self.token_names,
            token_postings: &self.token_postings,
            token_posting_ends: &self.token_posting_ends,
            trigram_keys: &self.trigram_keys,
            trigram_postings: &self.trigram_postings,
            trigram_posting_ends: &self.trigram_posting_ends,
            idf: &self.idf,
            doc_norm_sq: &self.doc_norm_sq,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.target_kinds.len()
    }

    /// True if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.target_kinds.is_empty()
    }

    /// Normalised text of one document.
    fn doc_text(&self, idx: usize) -> &str {
        let (start, end) = run(&self.text_ends, idx);
        &self.text_blob[start..end]
    }

    /// Token-id occurrences of one document (duplicates kept).
    fn doc_token_ids(&self, idx: usize) -> &[u32] {
        let (start, end) = run(&self.token_ends, idx);
        &self.token_ids[start..end]
    }

    /// Sorted distinct packed trigrams of one document.
    fn doc_trigram_keys(&self, idx: usize) -> &[u64] {
        let (start, end) = run(&self.trigram_ends, idx);
        &self.doc_trigrams[start..end]
    }

    /// Posting list (ascending document indices) of one token id.
    fn token_posting_list(&self, token: u32) -> &[u32] {
        let (start, end) = run(&self.token_posting_ends, token as usize);
        &self.token_postings[start..end]
    }

    /// Posting list of the trigram key at `pos` in `trigram_keys`.
    fn trigram_posting_list(&self, pos: usize) -> &[u32] {
        let (start, end) = run(&self.trigram_posting_ends, pos);
        &self.trigram_postings[start..end]
    }

    /// Dictionary id of a token (binary search over the canonical sorted
    /// dictionary; only valid on a finalized index, which is the only kind
    /// the query paths ever see).
    fn token_id(&self, name: &str) -> Option<u32> {
        self.token_names
            .binary_search_by(|t| t.as_str().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// Materialise the [`MatchTarget`] of one document.
    pub(crate) fn target(&self, idx: usize) -> MatchTarget {
        let id = self.target_ids[idx];
        match self.target_kinds[idx] {
            TARGET_RELATION => MatchTarget::Relation(RelationId(id)),
            TARGET_ATTRIBUTE => MatchTarget::Attribute(AttributeId(id)),
            _ => MatchTarget::Value {
                attribute: AttributeId(id),
                value: self.doc_text(idx).to_string(),
            },
        }
    }

    /// Relation owning one document's target, resolved against the catalog.
    pub(crate) fn target_relation(&self, idx: usize, catalog: &Catalog) -> Option<RelationId> {
        let id = self.target_ids[idx];
        match self.target_kinds[idx] {
            TARGET_RELATION => Some(RelationId(id)),
            _ => catalog.attribute(AttributeId(id)).map(|attr| attr.relation),
        }
    }

    /// Deterministic estimate of one document's postings footprint:
    /// normalised text, token strings + posting entries, trigram strings +
    /// posting entries, and the fixed per-document state. An estimate — not
    /// an allocator measurement — but stable across builds, which is what
    /// the accounting tests and `/metrics` gauges need.
    pub(crate) fn doc_byte_estimate(&self, idx: usize) -> u64 {
        let tokens: usize = self
            .doc_token_ids(idx)
            .iter()
            .map(|&t| self.token_names[t as usize].len() + 8)
            .sum();
        let trigrams = self.doc_trigram_keys(idx).len() * (3 + 8);
        (self.doc_text(idx).len() + tokens + trigrams + 24) as u64
    }

    /// Match one keyword (which may be a multi-word phrase) against the
    /// index, returning scored matches in decreasing similarity order.
    pub fn matches(&self, keyword: &str, config: &MatchConfig) -> Vec<KeywordMatch> {
        let Some(terms) = self.query_terms(keyword) else {
            return Vec::new();
        };
        let mut scored: Vec<KeywordMatch> = terms
            .candidates
            .iter()
            .map(|&idx| KeywordMatch {
                target: self.target(idx),
                similarity: self.score(&terms, idx),
            })
            .filter(|m| m.similarity >= config.min_similarity)
            .collect();
        // Stable sort: similarity ties keep ascending document order.
        scored.sort_by(|a, b| b.similarity.total_cmp(&a.similarity));
        scored.truncate(config.max_matches);
        scored
    }

    /// Per-call query-side state shared by every scoring path: token ids,
    /// packed trigrams, normalised text, idf-weighted squared norm, and the
    /// candidate documents (anything sharing a token or a trigram), sorted
    /// by document index and deduplicated — equal-similarity matches must
    /// rank in indexing order, never in the iteration order of a per-call
    /// hash set, which would make match lists (and with them query-graph
    /// edge ids and Steiner tree edge sets between cost ties) differ from
    /// call to call. `None` when the keyword normalises to nothing.
    ///
    /// One construction site keeps [`KeywordIndex::matches`] and the
    /// ingestion survival probe [`KeywordIndex::keyword_matches_in`]
    /// scoring the same candidate set — the survival rule is only sound
    /// while the probe sees everything a fresh match call would.
    fn query_terms(&self, keyword: &str) -> Option<QueryTerms> {
        let tokens = tokenize(keyword);
        let norm = normalize(keyword);
        let query_trigrams = packed_trigrams(&norm);
        if tokens.is_empty() && query_trigrams.is_empty() {
            return None;
        }
        let token_ids: Vec<Option<u32>> = tokens.iter().map(|t| self.token_id(t)).collect();
        let mut candidates: Vec<usize> = Vec::new();
        for id in token_ids.iter().flatten() {
            candidates.extend(self.token_posting_list(*id).iter().map(|&d| d as usize));
        }
        for g in &query_trigrams {
            if let Ok(pos) = self.trigram_keys.binary_search(g) {
                candidates.extend(self.trigram_posting_list(pos).iter().map(|&d| d as usize));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let norm_sq = token_ids
            .iter()
            .map(|id| {
                let w = id.map_or(1.0, |i| self.idf[i as usize]);
                w * w
            })
            .sum();
        Some(QueryTerms {
            token_ids,
            trigrams: query_trigrams,
            norm,
            norm_sq,
            candidates,
        })
    }

    /// Similarity of one candidate document against prepared query terms.
    fn score(&self, terms: &QueryTerms, doc_index: usize) -> f64 {
        let text = self.doc_text(doc_index);
        if terms.norm == text {
            return 1.0;
        }
        // idf-weighted token cosine. Documents hold a handful of tokens, so
        // a linear scan beats building a hash set per candidate. An
        // out-of-vocabulary query token cannot occur in any document.
        let doc_tokens = self.doc_token_ids(doc_index);
        let mut dot = 0.0;
        for id in terms.token_ids.iter().flatten() {
            if doc_tokens.contains(id) {
                let w = self.idf[*id as usize];
                dot += w * w;
            }
        }
        let qn = terms.norm_sq;
        let dn = self.doc_norm_sq.get(doc_index).copied().unwrap_or(0.0);
        let token_cos = if qn > 0.0 && dn > 0.0 {
            dot / (qn.sqrt() * dn.sqrt())
        } else {
            0.0
        };
        // Character trigram Dice over the packed sorted sets.
        let doc_grams = self.doc_trigram_keys(doc_index);
        let common = sorted_intersection_count(&terms.trigrams, doc_grams);
        let dice = if terms.trigrams.is_empty() || doc_grams.is_empty() {
            0.0
        } else {
            2.0 * common as f64 / (terms.trigrams.len() + doc_grams.len()) as f64
        };
        // Substring containment bonus (e.g. "publication" vs "pub").
        let containment = if !terms.norm.is_empty()
            && (text.contains(terms.norm.as_str()) || terms.norm.contains(text))
        {
            let shorter = terms.norm.len().min(text.len()) as f64;
            let longer = terms.norm.len().max(text.len()) as f64;
            0.9 * shorter / longer
        } else {
            0.0
        };
        token_cos.max(dice).max(containment).min(0.999)
    }

    fn add_document(&mut self, target: MatchTarget, text: &str) {
        if self.seen_targets.len() != self.len() {
            // Transient duplicate-rejection set is stale (fresh load from a
            // snapshot): rebuild it from the documents.
            let rebuilt: HashSet<MatchTarget> = (0..self.len()).map(|i| self.target(i)).collect();
            self.seen_targets = rebuilt;
        }
        if self.seen_targets.contains(&target) {
            return;
        }
        let norm = normalize(text);
        let (kind, id) = match &target {
            MatchTarget::Relation(r) => (TARGET_RELATION, r.0),
            MatchTarget::Attribute(a) => (TARGET_ATTRIBUTE, a.0),
            MatchTarget::Value { attribute, value } => {
                // The packed layout stores a value target as its attribute
                // id only; the value text is recovered from the document
                // text, so the two must agree.
                debug_assert_eq!(
                    value, &norm,
                    "value target must be indexed under its own text"
                );
                (TARGET_VALUE, attribute.0)
            }
        };
        self.seen_targets.insert(target);
        self.target_kinds.push(kind);
        self.target_ids.push(id);
        self.text_blob.push_str(&norm);
        self.text_ends.push(self.text_blob.len() as u32);
        if self.token_lookup.len() != self.token_names.len() {
            // Interning map is stale (post-finalize renumbering or fresh
            // load): rebuild it from the dictionary.
            self.token_lookup = self
                .token_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i as u32))
                .collect();
        }
        for tok in tokenize(&norm) {
            let id = match self.token_lookup.get(&tok) {
                Some(&id) => id,
                None => {
                    let id = self.token_names.len() as u32;
                    self.token_names.push(tok.clone());
                    self.token_lookup.insert(tok, id);
                    id
                }
            };
            self.token_ids.push(id);
        }
        self.token_ends.push(self.token_ids.len() as u32);
        self.doc_trigrams.extend(packed_trigrams(&norm));
        self.trigram_ends.push(self.doc_trigrams.len() as u32);
    }

    /// True when the keyword would match (at or above the configured
    /// similarity floor) any indexed document belonging to one of the given
    /// relations. The live-ingestion cache survival rule uses this to decide
    /// whether a newly incorporated source could add keyword matches — and
    /// with them new Steiner terminals — to a cached query.
    pub fn keyword_matches_in(
        &self,
        keyword: &str,
        catalog: &Catalog,
        relations: &[RelationId],
        config: &MatchConfig,
    ) -> bool {
        let Some(terms) = self.query_terms(keyword) else {
            return false;
        };
        terms.candidates.iter().any(|&idx| {
            let Some(rel) = self.target_relation(idx, catalog) else {
                return false;
            };
            relations.contains(&rel) && self.score(&terms, idx) >= config.min_similarity
        })
    }

    /// Canonical document order: schema documents (relation name, then its
    /// attribute names in positional order) grouped by relation id, followed
    /// by value documents grouped the same way (distinct values keeping row
    /// order via the sort's stability). A batch [`KeywordIndex::build`]
    /// already emits documents in exactly this order, so sorting makes
    /// [`KeywordIndex::add_relation`] converge to the batch index — the
    /// golden-answer ingestion test relies on incrementally grown and
    /// from-scratch indexes being byte-identical.
    fn canonical_key_of(&self, catalog: &Catalog, idx: usize) -> (u8, u32, u32) {
        let id = self.target_ids[idx];
        match self.target_kinds[idx] {
            TARGET_RELATION => (0, id, 0),
            TARGET_ATTRIBUTE => match catalog.attribute(AttributeId(id)) {
                Some(attr) => (0, attr.relation.0, attr.position as u32 + 1),
                None => (2, id, 0),
            },
            _ => match catalog.attribute(AttributeId(id)) {
                Some(attr) => (1, attr.relation.0, attr.position as u32 + 1),
                None => (2, id, u32::MAX),
            },
        }
    }

    /// Rebuild every per-document column in permuted order (`perm[new]` is
    /// the old index of the document now at `new`).
    fn permute_documents(&mut self, perm: &[u32]) {
        let n = perm.len();
        let mut kinds = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut blob = String::with_capacity(self.text_blob.len());
        let mut text_ends = Vec::with_capacity(n);
        let mut token_ids = Vec::with_capacity(self.token_ids.len());
        let mut token_ends = Vec::with_capacity(n);
        let mut grams = Vec::with_capacity(self.doc_trigrams.len());
        let mut trigram_ends = Vec::with_capacity(n);
        for &old in perm {
            let old = old as usize;
            kinds.push(self.target_kinds[old]);
            ids.push(self.target_ids[old]);
            blob.push_str(self.doc_text(old));
            text_ends.push(blob.len() as u32);
            token_ids.extend_from_slice(self.doc_token_ids(old));
            token_ends.push(token_ids.len() as u32);
            grams.extend_from_slice(self.doc_trigram_keys(old));
            trigram_ends.push(grams.len() as u32);
        }
        self.target_kinds = kinds;
        self.target_ids = ids;
        self.text_blob = blob;
        self.text_ends = text_ends;
        self.token_ids = token_ids;
        self.token_ends = token_ends;
        self.doc_trigrams = grams;
        self.trigram_ends = trigram_ends;
    }

    fn finalize(&mut self, catalog: &Catalog) {
        let n = self.len();
        // 1. Canonical document order (stable permutation sort).
        let keys: Vec<(u8, u32, u32)> = (0..n).map(|i| self.canonical_key_of(catalog, i)).collect();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        if perm.iter().enumerate().any(|(new, &old)| new as u32 != old) {
            self.permute_documents(&perm);
        }
        // 2. Canonical token dictionary: sorted names, ids remapped. Token
        //    names are distinct by construction, so the order is total.
        if !self.token_names.windows(2).all(|w| w[0] < w[1]) {
            let mut order: Vec<u32> = (0..self.token_names.len() as u32).collect();
            order.sort_by(|&a, &b| self.token_names[a as usize].cmp(&self.token_names[b as usize]));
            let mut remap = vec![0u32; order.len()];
            for (new_id, &old_id) in order.iter().enumerate() {
                remap[old_id as usize] = new_id as u32;
            }
            for id in &mut self.token_ids {
                *id = remap[*id as usize];
            }
            let mut sorted = Vec::with_capacity(self.token_names.len());
            for &old in &order {
                sorted.push(std::mem::take(&mut self.token_names[old as usize]));
            }
            self.token_names = sorted;
        }
        self.token_lookup.clear();
        // 3. Token postings (distinct per document, ascending document
        //    order) via a count-then-fill pass, and idf from the document
        //    frequencies.
        let token_count = self.token_names.len();
        let mut df = vec![0u32; token_count];
        let mut scratch: Vec<u32> = Vec::new();
        for doc in 0..n {
            scratch.clear();
            scratch.extend_from_slice(self.doc_token_ids(doc));
            scratch.sort_unstable();
            scratch.dedup();
            for &t in &scratch {
                df[t as usize] += 1;
            }
        }
        let mut token_posting_ends = Vec::with_capacity(token_count);
        let mut total = 0u32;
        for &d in &df {
            total += d;
            token_posting_ends.push(total);
        }
        let mut cursor: Vec<u32> = Vec::with_capacity(token_count);
        let mut start = 0u32;
        for &e in &token_posting_ends {
            cursor.push(start);
            start = e;
        }
        let mut token_postings = vec![0u32; total as usize];
        for doc in 0..n {
            scratch.clear();
            scratch.extend_from_slice(self.doc_token_ids(doc));
            scratch.sort_unstable();
            scratch.dedup();
            for &t in &scratch {
                token_postings[cursor[t as usize] as usize] = doc as u32;
                cursor[t as usize] += 1;
            }
        }
        self.token_postings = token_postings;
        self.token_posting_ends = token_posting_ends;
        let total_docs = n as f64;
        self.idf = df
            .iter()
            .map(|&d| (1.0 + total_docs / d as f64).ln())
            .collect();
        // 4. Per-document idf-weighted squared norms (token occurrence
        //    order, duplicates included — identical accumulation order to a
        //    per-document token walk).
        let doc_norm_sq: Vec<f64> = (0..n)
            .map(|doc| {
                self.doc_token_ids(doc)
                    .iter()
                    .map(|&t| {
                        let w = self.idf[t as usize];
                        w * w
                    })
                    .sum()
            })
            .collect();
        self.doc_norm_sq = doc_norm_sq;
        // 5. Trigram postings: sorted distinct keys, ascending document
        //    indices per key (document trigram runs are already distinct).
        let mut gram_df: HashMap<u64, u32> = HashMap::new();
        for &g in &self.doc_trigrams {
            *gram_df.entry(g).or_insert(0) += 1;
        }
        let mut keys: Vec<u64> = gram_df.keys().copied().collect();
        keys.sort_unstable();
        let pos_of: HashMap<u64, u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        let mut trigram_posting_ends = Vec::with_capacity(keys.len());
        let mut total = 0u32;
        for &g in &keys {
            total += gram_df[&g];
            trigram_posting_ends.push(total);
        }
        let mut cursor: Vec<u32> = Vec::with_capacity(keys.len());
        let mut start = 0u32;
        for &e in &trigram_posting_ends {
            cursor.push(start);
            start = e;
        }
        let mut trigram_postings = vec![0u32; total as usize];
        for doc in 0..n {
            for &g in self.doc_trigram_keys(doc) {
                let p = pos_of[&g] as usize;
                trigram_postings[cursor[p] as usize] = doc as u32;
                cursor[p] += 1;
            }
        }
        self.trigram_keys = keys;
        self.trigram_postings = trigram_postings;
        self.trigram_posting_ends = trigram_posting_ends;
    }
}

/// A partition of a [`KeywordIndex`]'s documents into relation-group shards,
/// with per-shard postings byte accounting.
///
/// The index itself stays global — idf weights and document order must not
/// depend on the shard count, or similarity scores (and with them match
/// lists and Steiner tie-breaks) would change when resharding. What the
/// partition adds is a *fanned* candidate-matching path: each shard scores
/// and filters only its own candidate documents, and
/// [`ShardedKeywordIndex::matches_sharded`] merges the per-shard survivor
/// lists back into the exact global candidate order before ranking, so the
/// result is byte-identical to [`KeywordIndex::matches`] for any shard
/// count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardedKeywordIndex {
    /// Document index → owning shard.
    shard_of_doc: Vec<u32>,
    /// Estimated postings bytes owned by each shard.
    postings_bytes: Vec<u64>,
    shards: usize,
}

impl ShardedKeywordIndex {
    /// Assign every document of `index` to the shard of its owning relation
    /// under `plan`. Documents whose relation no longer resolves land in
    /// shard 0.
    pub fn build(index: &KeywordIndex, catalog: &Catalog, plan: &ShardPlan) -> Self {
        let shards = plan.shards();
        let mut shard_of_doc = Vec::with_capacity(index.len());
        let mut postings_bytes = vec![0u64; shards];
        for idx in 0..index.len() {
            let shard = index
                .target_relation(idx, catalog)
                .map_or(0, |r| plan.shard_of_relation(r));
            shard_of_doc.push(shard as u32);
            postings_bytes[shard] += index.doc_byte_estimate(idx);
        }
        ShardedKeywordIndex {
            shard_of_doc,
            postings_bytes,
            shards,
        }
    }

    /// Reassemble a partition persisted by a snapshot.
    pub fn from_parts(shard_of_doc: Vec<u32>, postings_bytes: Vec<u64>) -> Self {
        let shards = postings_bytes.len();
        ShardedKeywordIndex {
            shard_of_doc,
            postings_bytes,
            shards,
        }
    }

    /// Document index → owning shard (what a snapshot persists).
    pub fn shard_of_doc(&self) -> &[u32] {
        &self.shard_of_doc
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of partitioned documents (must match the index it was built
    /// from to be usable).
    pub fn doc_count(&self) -> usize {
        self.shard_of_doc.len()
    }

    /// Estimated postings bytes owned by each shard.
    pub fn postings_bytes(&self) -> &[u64] {
        &self.postings_bytes
    }

    /// Match one keyword through the per-shard fan-out: candidates are
    /// scored and threshold-filtered shard by shard, then the survivor lists
    /// are merged back into ascending document order — exactly the global
    /// candidate order [`KeywordIndex::matches`] scores — before the shared
    /// ranking rule (stable descending similarity, `max_matches` cutoff)
    /// runs. Byte-identical to the unsharded path for any shard count.
    pub fn matches_sharded(
        &self,
        index: &KeywordIndex,
        keyword: &str,
        config: &MatchConfig,
    ) -> Vec<KeywordMatch> {
        debug_assert_eq!(self.shard_of_doc.len(), index.len());
        let Some(terms) = index.query_terms(keyword) else {
            return Vec::new();
        };
        // Fan: each shard scores only its own candidates. Candidate lists
        // are per-shard subsequences of the globally ascending candidate
        // list, so each survivor list comes out ascending too.
        let mut per_shard: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.shards.max(1)];
        let last = per_shard.len() - 1;
        for &idx in &terms.candidates {
            let shard = self.shard_of_doc.get(idx).copied().unwrap_or(0) as usize;
            let similarity = index.score(&terms, idx);
            if similarity >= config.min_similarity {
                per_shard[shard.min(last)].push((idx, similarity));
            }
        }
        // Merge: concatenating the shard lists and re-sorting by document
        // index restores the exact global order (indices are distinct).
        let mut merged: Vec<(usize, f64)> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(idx, _)| idx);
        let mut scored: Vec<KeywordMatch> = merged
            .into_iter()
            .map(|(idx, similarity)| KeywordMatch {
                target: index.target(idx),
                similarity,
            })
            .collect();
        // Stable sort: similarity ties keep ascending document order.
        scored.sort_by(|a, b| b.similarity.total_cmp(&a.similarity));
        scored.truncate(config.max_matches);
        scored
    }
}

fn normalize(text: &str) -> String {
    text.trim().to_lowercase()
}

/// Split into alphanumeric tokens; underscores and punctuation separate
/// tokens so that `entry_ac` matches the keyword "entry".
fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Sorted distinct packed character trigrams of the normalised text (with
/// word-boundary padding). Each of the three chars is a Unicode scalar
/// value (≤ `0x10FFFF` < 2²¹) packed into its own 21-bit lane, so packing
/// is injective and set operations over the keys equal set operations over
/// the original trigram strings.
fn packed_trigrams(text: &str) -> Vec<u64> {
    let padded = format!("  {}  ", normalize(text));
    let chars: Vec<char> = padded.chars().collect();
    if chars.len() < 3 {
        return Vec::new();
    }
    let mut grams: Vec<u64> = chars
        .windows(3)
        .map(|w| ((w[0] as u64) << 42) | ((w[1] as u64) << 21) | (w[2] as u64))
        .collect();
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Size of the intersection of two sorted distinct sequences.
fn sorted_intersection_count(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name", "term_type"])
                    .row(["GO:0005134", "plasma membrane", "component"])
                    .row(["GO:0007652", "kinase activity", "function"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro_pub", &["pub_id", "title"])
                    .row(["PUB1", "Structure of the plasma membrane"]),
            )
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn exact_attribute_name_scores_one() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("title", &MatchConfig::default());
        let title = cat.resolve_qualified("interpro_pub.title").unwrap();
        let top = &matches[0];
        assert_eq!(top.target, MatchTarget::Attribute(title));
        assert!((top.similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn value_matches_are_found_with_high_similarity() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("plasma membrane", &MatchConfig::default());
        let name = cat.resolve_qualified("go_term.name").unwrap();
        assert!(matches.iter().any(|m| matches!(
            &m.target,
            MatchTarget::Value { attribute, value } if *attribute == name && value == "plasma membrane"
        )));
        // The title containing the phrase also matches, but not exactly.
        let title_attr = cat.resolve_qualified("interpro_pub.title").unwrap();
        let title_match = matches.iter().find(|m| {
            matches!(&m.target, MatchTarget::Value { attribute, .. } if *attribute == title_attr)
        });
        assert!(title_match.is_some());
        assert!(title_match.unwrap().similarity < 1.0);
    }

    #[test]
    fn partial_keyword_matches_via_tokens() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("term", &MatchConfig::default());
        let rel = cat.relation_by_name("go_term").unwrap().id;
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }

    #[test]
    fn min_similarity_filters_weak_matches() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let strict = MatchConfig {
            min_similarity: 0.99,
            max_matches: 10,
        };
        let matches = idx.matches("membrane", &strict);
        assert!(matches.is_empty());
    }

    #[test]
    fn max_matches_truncates() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig {
            min_similarity: 0.01,
            max_matches: 2,
        };
        assert!(idx.matches("a", &cfg).len() <= 2);
    }

    #[test]
    fn unmatched_keyword_returns_empty() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        assert!(idx.matches("zzzqqqxxx", &MatchConfig::default()).is_empty());
        assert!(idx.matches("", &MatchConfig::default()).is_empty());
    }

    #[test]
    fn add_relation_extends_index() {
        let mut cat = catalog();
        let mut idx = KeywordIndex::build(&cat);
        let before = idx.len();
        let src = cat.add_source("new").unwrap();
        let rel = cat
            .add_relation(src, "journal", &["journal_id", "journal_name"])
            .unwrap();
        cat.insert_rows(rel, vec![vec![Value::from("J1"), Value::from("Nature")]])
            .unwrap();
        idx.add_relation(&cat, rel);
        assert!(idx.len() > before);
        let matches = idx.matches("journal", &MatchConfig::default());
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }

    #[test]
    fn incremental_add_relation_converges_to_the_batch_index() {
        // Grow an index one relation at a time and compare against the
        // batch build over the final catalog: canonical document order and
        // the canonical token dictionary make every persistent column
        // identical, so match lists (and downstream tie-breaks) cannot
        // depend on which path built the index.
        let mut cat = Catalog::new();
        let incremental = {
            let mut idx = KeywordIndex::default();
            let s1 = cat.add_source("go").unwrap();
            let r1 = cat.add_relation(s1, "go_term", &["acc", "name"]).unwrap();
            cat.insert_rows(r1, vec![vec![Value::from("GO:1"), Value::from("membrane")]])
                .unwrap();
            idx.add_relation(&cat, r1);
            let s2 = cat.add_source("interpro").unwrap();
            let r2 = cat
                .add_relation(s2, "entry", &["entry_ac", "name"])
                .unwrap();
            cat.insert_rows(
                r2,
                vec![vec![Value::from("IPR01"), Value::from("Kringle domain")]],
            )
            .unwrap();
            idx.add_relation(&cat, r2);
            idx
        };
        let batch = KeywordIndex::build(&cat);
        assert_eq!(incremental.len(), batch.len());
        assert_eq!(incremental.view(), batch.view());
        let cfg = MatchConfig::default();
        for kw in ["name", "membrane", "entry", "kringle"] {
            assert_eq!(incremental.matches(kw, &cfg), batch.matches(kw, &cfg));
        }
    }

    #[test]
    fn from_parts_round_trip_preserves_columns_and_matching() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let view = idx.view();
        let parts = KeywordIndexParts {
            target_kinds: view.target_kinds.to_vec(),
            target_ids: view.target_ids.to_vec(),
            text_blob: view.text_blob.to_string(),
            text_ends: view.text_ends.to_vec(),
            token_ids: view.token_ids.to_vec(),
            token_ends: view.token_ends.to_vec(),
            doc_trigrams: view.doc_trigrams.to_vec(),
            trigram_ends: view.trigram_ends.to_vec(),
            token_names: view.token_names.to_vec(),
            token_postings: view.token_postings.to_vec(),
            token_posting_ends: view.token_posting_ends.to_vec(),
            trigram_keys: view.trigram_keys.to_vec(),
            trigram_postings: view.trigram_postings.to_vec(),
            trigram_posting_ends: view.trigram_posting_ends.to_vec(),
            idf: view.idf.to_vec(),
            doc_norm_sq: view.doc_norm_sq.to_vec(),
        };
        let loaded = KeywordIndex::from_parts(parts);
        assert_eq!(loaded.view(), idx.view());
        let cfg = MatchConfig {
            min_similarity: 0.1,
            max_matches: 16,
        };
        for kw in ["title", "plasma membrane", "term", "pub", "kinase", ""] {
            assert_eq!(loaded.matches(kw, &cfg), idx.matches(kw, &cfg));
        }
    }

    #[test]
    fn loaded_index_accepts_further_relations() {
        // A snapshot-loaded index must keep converging: its transient
        // interning/dedup state is rebuilt lazily on the next add.
        let mut cat = catalog();
        let built = KeywordIndex::build(&cat);
        let view = built.view();
        let mut loaded = KeywordIndex::from_parts(KeywordIndexParts {
            target_kinds: view.target_kinds.to_vec(),
            target_ids: view.target_ids.to_vec(),
            text_blob: view.text_blob.to_string(),
            text_ends: view.text_ends.to_vec(),
            token_ids: view.token_ids.to_vec(),
            token_ends: view.token_ends.to_vec(),
            doc_trigrams: view.doc_trigrams.to_vec(),
            trigram_ends: view.trigram_ends.to_vec(),
            token_names: view.token_names.to_vec(),
            token_postings: view.token_postings.to_vec(),
            token_posting_ends: view.token_posting_ends.to_vec(),
            trigram_keys: view.trigram_keys.to_vec(),
            trigram_postings: view.trigram_postings.to_vec(),
            trigram_posting_ends: view.trigram_posting_ends.to_vec(),
            idf: view.idf.to_vec(),
            doc_norm_sq: view.doc_norm_sq.to_vec(),
        });
        let mut grown = built.clone();
        let src = cat.add_source("new").unwrap();
        let rel = cat
            .add_relation(src, "journal", &["journal_id", "journal_name"])
            .unwrap();
        cat.insert_rows(rel, vec![vec![Value::from("J1"), Value::from("Nature")]])
            .unwrap();
        loaded.add_relation(&cat, rel);
        grown.add_relation(&cat, rel);
        assert_eq!(loaded.view(), grown.view());
        assert_eq!(loaded.view(), KeywordIndex::build(&cat).view());
    }

    #[test]
    fn keyword_matches_in_scopes_matches_to_the_given_relations() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig::default();
        let go_term = cat.relation_by_name("go_term").unwrap().id;
        let pub_rel = cat.relation_by_name("interpro_pub").unwrap().id;
        // "plasma membrane" matches a go_term value and an interpro_pub
        // title, but nothing when scoped to no relations.
        assert!(idx.keyword_matches_in("plasma membrane", &cat, &[go_term], &cfg));
        assert!(idx.keyword_matches_in("plasma membrane", &cat, &[pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("plasma membrane", &cat, &[], &cfg));
        // "title" is an interpro_pub attribute only.
        assert!(idx.keyword_matches_in("title", &cat, &[pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("title", &cat, &[go_term], &cfg));
        // Garbage matches nowhere.
        assert!(!idx.keyword_matches_in("zzzqqqxxx", &cat, &[go_term, pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("", &cat, &[go_term], &cfg));
    }

    #[test]
    fn sharded_matches_equal_unsharded_for_any_shard_count() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig {
            min_similarity: 0.1,
            max_matches: 8,
        };
        for k in [1, 2, 3, 7] {
            let plan = ShardPlan::by_source(&cat, k);
            let sharded = ShardedKeywordIndex::build(&idx, &cat, &plan);
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.doc_count(), idx.len());
            assert!(sharded.postings_bytes().iter().sum::<u64>() > 0);
            for kw in ["title", "plasma membrane", "term", "pub", "zzzqqq", ""] {
                assert_eq!(
                    sharded.matches_sharded(&idx, kw, &cfg),
                    idx.matches(kw, &cfg),
                    "shard count {k}, keyword {kw:?}"
                );
            }
        }
    }

    #[test]
    fn abbreviation_matches_full_word_via_containment() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        // "publication" should still find the `interpro_pub` relation through
        // the `pub` token containment heuristic.
        let cfg = MatchConfig {
            min_similarity: 0.2,
            max_matches: 20,
        };
        let matches = idx.matches("pub", &cfg);
        let rel = cat.relation_by_name("interpro_pub").unwrap().id;
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }

    #[test]
    fn packed_trigrams_are_injective_over_scalars() {
        // Distinct trigram strings must pack to distinct keys.
        let a = packed_trigrams("abc");
        let b = packed_trigrams("abd");
        assert_ne!(a, b);
        // Empty text still yields the padding-only trigram, like the
        // string-set representation did.
        assert_eq!(packed_trigrams("").len(), 1);
        // Non-ASCII scalars stay in their 21-bit lanes.
        let uni = packed_trigrams("δοκιμή");
        assert!(!uni.is_empty());
        assert!(uni.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
    }

    #[test]
    fn sorted_intersection_count_matches_set_semantics() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[7], &[7]), 1);
    }
}
