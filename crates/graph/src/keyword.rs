//! Keyword matching against schema elements and data values (Section 2.2).
//!
//! Q matches each query keyword against relation names, attribute names and
//! pre-indexed data values using a keyword similarity metric — tf-idf by
//! default in the paper, with edit-distance / n-grams as alternatives. The
//! [`KeywordIndex`] here scores candidates with a combination of
//! idf-weighted token cosine similarity and character-trigram Dice
//! similarity, which behaves like the paper's default for the bioinformatics
//! vocabularies used in the evaluation.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use q_storage::{AttributeId, Catalog, RelationId, Value};

use crate::shard::ShardPlan;

/// What a keyword matched.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchTarget {
    /// A relation name.
    Relation(RelationId),
    /// An attribute name.
    Attribute(AttributeId),
    /// A data value of an attribute.
    Value {
        /// Attribute the value belongs to.
        attribute: AttributeId,
        /// Normalised value text.
        value: String,
    },
}

/// One keyword match with its similarity score in `(0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeywordMatch {
    /// The matched schema element or value.
    pub target: MatchTarget,
    /// Similarity score; the query-graph mismatch cost is `1 - similarity`.
    pub similarity: f64,
}

/// Tunable matching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Minimum similarity for a match to be reported.
    pub min_similarity: f64,
    /// Maximum number of matches returned per keyword.
    pub max_matches: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            min_similarity: 0.35,
            max_matches: 16,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Document {
    target: MatchTarget,
    text: String,
    tokens: Vec<String>,
    trigrams: HashSet<String>,
}

/// Prepared query-side state for one keyword lookup — see
/// [`KeywordIndex::query_terms`].
struct QueryTerms {
    tokens: Vec<String>,
    trigrams: HashSet<String>,
    norm: String,
    norm_sq: f64,
    candidates: Vec<usize>,
}

/// tf-idf / trigram index over schema elements and data values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeywordIndex {
    documents: Vec<Document>,
    /// token -> document indices containing it
    token_postings: HashMap<String, Vec<usize>>,
    /// trigram -> document indices containing it
    trigram_postings: HashMap<String, Vec<usize>>,
    /// token -> inverse document frequency
    idf: HashMap<String, f64>,
    /// Per-document idf-weighted squared token norm, precomputed in
    /// `finalize` so scoring a candidate does not re-walk its tokens
    /// against the idf table (`matches` runs once per keyword per query
    /// miss, over every posting-list candidate).
    doc_norm_sq: Vec<f64>,
    /// Every target ever indexed, for O(1) duplicate rejection in
    /// `add_document` — a linear scan there is quadratic in corpus size and
    /// dominates snapshot builds past ~10⁵ documents.
    seen_targets: HashSet<MatchTarget>,
}

impl KeywordIndex {
    /// Index every relation name, attribute name and distinct textual data
    /// value in the catalog.
    pub fn build(catalog: &Catalog) -> Self {
        let mut idx = KeywordIndex::default();
        for rel in catalog.relations() {
            idx.add_document(MatchTarget::Relation(rel.id), &rel.name);
            for attr_id in &rel.attributes {
                if let Some(attr) = catalog.attribute(*attr_id) {
                    idx.add_document(MatchTarget::Attribute(attr.id), &attr.name);
                }
            }
        }
        for rel in catalog.relations() {
            for attr_id in &rel.attributes {
                let attr = catalog.attribute(*attr_id).expect("attribute exists");
                let mut seen = HashSet::new();
                for tuple in &rel.tuples {
                    if let Some(value) = tuple.get(attr.position) {
                        if !matches!(value, Value::Text(_)) {
                            continue;
                        }
                        if let Some(norm) = value.normalized() {
                            if seen.insert(norm.clone()) {
                                idx.add_document(
                                    MatchTarget::Value {
                                        attribute: attr.id,
                                        value: norm.clone(),
                                    },
                                    &norm,
                                );
                            }
                        }
                    }
                }
            }
        }
        idx.finalize(catalog);
        idx
    }

    /// Add the schema elements and values of one relation to an existing
    /// index (used when a new source is registered).
    pub fn add_relation(&mut self, catalog: &Catalog, relation: RelationId) {
        let Some(rel) = catalog.relation(relation) else {
            return;
        };
        self.add_document(MatchTarget::Relation(rel.id), &rel.name);
        for attr_id in &rel.attributes {
            if let Some(attr) = catalog.attribute(*attr_id) {
                self.add_document(MatchTarget::Attribute(attr.id), &attr.name);
                let mut seen = HashSet::new();
                for tuple in &rel.tuples {
                    if let Some(Value::Text(_)) = tuple.get(attr.position) {
                        if let Some(norm) = tuple.get(attr.position).and_then(Value::normalized) {
                            if seen.insert(norm.clone()) {
                                self.add_document(
                                    MatchTarget::Value {
                                        attribute: attr.id,
                                        value: norm.clone(),
                                    },
                                    &norm,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.finalize(catalog);
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Match one keyword (which may be a multi-word phrase) against the
    /// index, returning scored matches in decreasing similarity order.
    pub fn matches(&self, keyword: &str, config: &MatchConfig) -> Vec<KeywordMatch> {
        let Some(terms) = self.query_terms(keyword) else {
            return Vec::new();
        };
        let mut scored: Vec<KeywordMatch> = terms
            .candidates
            .iter()
            .map(|&idx| KeywordMatch {
                target: self.documents[idx].target.clone(),
                similarity: self.score(&terms, idx),
            })
            .filter(|m| m.similarity >= config.min_similarity)
            .collect();
        // Stable sort: similarity ties keep ascending document order.
        scored.sort_by(|a, b| b.similarity.total_cmp(&a.similarity));
        scored.truncate(config.max_matches);
        scored
    }

    /// Per-call query-side state shared by every scoring path: tokens,
    /// trigrams, normalised text, idf-weighted squared norm, and the
    /// candidate documents (anything sharing a token or a trigram), sorted
    /// by document index and deduplicated — equal-similarity matches must
    /// rank in indexing order, never in the iteration order of a per-call
    /// hash set, which would make match lists (and with them query-graph
    /// edge ids and Steiner tree edge sets between cost ties) differ from
    /// call to call. `None` when the keyword normalises to nothing.
    ///
    /// One construction site keeps [`KeywordIndex::matches`] and the
    /// ingestion survival probe [`KeywordIndex::keyword_matches_in`]
    /// scoring the same candidate set — the survival rule is only sound
    /// while the probe sees everything a fresh match call would.
    fn query_terms(&self, keyword: &str) -> Option<QueryTerms> {
        let tokens = tokenize(keyword);
        let query_trigrams = trigrams(&normalize(keyword));
        if tokens.is_empty() && query_trigrams.is_empty() {
            return None;
        }
        let mut candidates: Vec<usize> = Vec::new();
        for t in &tokens {
            if let Some(docs) = self.token_postings.get(t) {
                candidates.extend(docs.iter().copied());
            }
        }
        for g in &query_trigrams {
            if let Some(docs) = self.trigram_postings.get(g) {
                candidates.extend(docs.iter().copied());
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let norm_sq = tokens
            .iter()
            .map(|t| {
                let w = self.idf.get(t).copied().unwrap_or(1.0);
                w * w
            })
            .sum();
        Some(QueryTerms {
            tokens,
            trigrams: query_trigrams,
            norm: normalize(keyword),
            norm_sq,
            candidates,
        })
    }

    /// Similarity of one candidate document against prepared query terms.
    fn score(&self, terms: &QueryTerms, doc_index: usize) -> f64 {
        self.similarity(
            &terms.tokens,
            terms.norm_sq,
            &terms.trigrams,
            &terms.norm,
            doc_index,
            &self.documents[doc_index],
        )
    }

    fn similarity(
        &self,
        query_tokens: &[String],
        query_norm_sq: f64,
        query_trigrams: &HashSet<String>,
        norm_query: &str,
        doc_index: usize,
        doc: &Document,
    ) -> f64 {
        if norm_query == doc.text {
            return 1.0;
        }
        // idf-weighted token cosine. Documents hold a handful of tokens, so
        // a linear scan beats building a hash set per candidate.
        let mut dot = 0.0;
        for t in query_tokens {
            if doc.tokens.contains(t) {
                let w = self.idf.get(t).copied().unwrap_or(1.0);
                dot += w * w;
            }
        }
        let qn = query_norm_sq;
        let dn = self.doc_norm_sq.get(doc_index).copied().unwrap_or(0.0);
        let token_cos = if qn > 0.0 && dn > 0.0 {
            dot / (qn.sqrt() * dn.sqrt())
        } else {
            0.0
        };
        // Character trigram Dice.
        let common = query_trigrams.intersection(&doc.trigrams).count();
        let dice = if query_trigrams.is_empty() || doc.trigrams.is_empty() {
            0.0
        } else {
            2.0 * common as f64 / (query_trigrams.len() + doc.trigrams.len()) as f64
        };
        // Substring containment bonus (e.g. "publication" vs "pub").
        let containment = if !norm_query.is_empty()
            && (doc.text.contains(norm_query) || norm_query.contains(&doc.text))
        {
            let shorter = norm_query.len().min(doc.text.len()) as f64;
            let longer = norm_query.len().max(doc.text.len()) as f64;
            0.9 * shorter / longer
        } else {
            0.0
        };
        token_cos.max(dice).max(containment).min(0.999)
    }

    fn add_document(&mut self, target: MatchTarget, text: &str) {
        if !self.seen_targets.insert(target.clone()) {
            return;
        }
        let norm = normalize(text);
        let doc = Document {
            target,
            tokens: tokenize(&norm),
            trigrams: trigrams(&norm),
            text: norm,
        };
        self.documents.push(doc);
    }

    /// True when the keyword would match (at or above the configured
    /// similarity floor) any indexed document belonging to one of the given
    /// relations. The live-ingestion cache survival rule uses this to decide
    /// whether a newly incorporated source could add keyword matches — and
    /// with them new Steiner terminals — to a cached query.
    pub fn keyword_matches_in(
        &self,
        keyword: &str,
        catalog: &Catalog,
        relations: &[RelationId],
        config: &MatchConfig,
    ) -> bool {
        let Some(terms) = self.query_terms(keyword) else {
            return false;
        };
        terms.candidates.iter().any(|&idx| {
            let rel = match &self.documents[idx].target {
                MatchTarget::Relation(r) => Some(*r),
                MatchTarget::Attribute(a) => catalog.attribute(*a).map(|attr| attr.relation),
                MatchTarget::Value { attribute, .. } => {
                    catalog.attribute(*attribute).map(|attr| attr.relation)
                }
            };
            let Some(rel) = rel else {
                return false;
            };
            relations.contains(&rel) && self.score(&terms, idx) >= config.min_similarity
        })
    }

    /// Canonical document order: schema documents (relation name, then its
    /// attribute names in positional order) grouped by relation id, followed
    /// by value documents grouped the same way (distinct values keeping row
    /// order via the sort's stability). A batch [`KeywordIndex::build`]
    /// already emits documents in exactly this order, so sorting makes
    /// [`KeywordIndex::add_relation`] converge to the batch index — the
    /// golden-answer ingestion test relies on incrementally grown and
    /// from-scratch indexes being byte-identical.
    fn canonical_key(catalog: &Catalog, target: &MatchTarget) -> (u8, u32, u32) {
        match target {
            MatchTarget::Relation(r) => (0, r.0, 0),
            MatchTarget::Attribute(a) => match catalog.attribute(*a) {
                Some(attr) => (0, attr.relation.0, attr.position as u32 + 1),
                None => (2, a.0, 0),
            },
            MatchTarget::Value { attribute, .. } => match catalog.attribute(*attribute) {
                Some(attr) => (1, attr.relation.0, attr.position as u32 + 1),
                None => (2, attribute.0, u32::MAX),
            },
        }
    }

    fn finalize(&mut self, catalog: &Catalog) {
        self.documents
            .sort_by_cached_key(|doc| Self::canonical_key(catalog, &doc.target));
        self.token_postings.clear();
        self.trigram_postings.clear();
        self.idf.clear();
        for (idx, doc) in self.documents.iter().enumerate() {
            for t in doc.tokens.iter().collect::<HashSet<_>>() {
                self.token_postings.entry(t.clone()).or_default().push(idx);
            }
            for g in &doc.trigrams {
                self.trigram_postings
                    .entry(g.clone())
                    .or_default()
                    .push(idx);
            }
        }
        let n = self.documents.len() as f64;
        for (token, docs) in &self.token_postings {
            let df = docs.len() as f64;
            self.idf.insert(token.clone(), (1.0 + n / df).ln());
        }
        self.doc_norm_sq = self
            .documents
            .iter()
            .map(|doc| {
                doc.tokens
                    .iter()
                    .map(|t| {
                        let w = self.idf.get(t).copied().unwrap_or(1.0);
                        w * w
                    })
                    .sum()
            })
            .collect();
    }
}

/// A partition of a [`KeywordIndex`]'s documents into relation-group shards,
/// with per-shard postings byte accounting.
///
/// The index itself stays global — idf weights and document order must not
/// depend on the shard count, or similarity scores (and with them match
/// lists and Steiner tie-breaks) would change when resharding. What the
/// partition adds is a *fanned* candidate-matching path: each shard scores
/// and filters only its own candidate documents, and
/// [`ShardedKeywordIndex::matches_sharded`] merges the per-shard survivor
/// lists back into the exact global candidate order before ranking, so the
/// result is byte-identical to [`KeywordIndex::matches`] for any shard
/// count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardedKeywordIndex {
    /// Document index → owning shard.
    shard_of_doc: Vec<u32>,
    /// Estimated postings bytes owned by each shard.
    postings_bytes: Vec<u64>,
    shards: usize,
}

impl ShardedKeywordIndex {
    /// Assign every document of `index` to the shard of its owning relation
    /// under `plan`. Documents whose relation no longer resolves land in
    /// shard 0.
    pub fn build(index: &KeywordIndex, catalog: &Catalog, plan: &ShardPlan) -> Self {
        let shards = plan.shards();
        let mut shard_of_doc = Vec::with_capacity(index.documents.len());
        let mut postings_bytes = vec![0u64; shards];
        for doc in &index.documents {
            let relation = match &doc.target {
                MatchTarget::Relation(r) => Some(*r),
                MatchTarget::Attribute(a) => catalog.attribute(*a).map(|attr| attr.relation),
                MatchTarget::Value { attribute, .. } => {
                    catalog.attribute(*attribute).map(|attr| attr.relation)
                }
            };
            let shard = relation.map_or(0, |r| plan.shard_of_relation(r));
            shard_of_doc.push(shard as u32);
            postings_bytes[shard] += doc_byte_estimate(doc);
        }
        ShardedKeywordIndex {
            shard_of_doc,
            postings_bytes,
            shards,
        }
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of partitioned documents (must match the index it was built
    /// from to be usable).
    pub fn doc_count(&self) -> usize {
        self.shard_of_doc.len()
    }

    /// Estimated postings bytes owned by each shard.
    pub fn postings_bytes(&self) -> &[u64] {
        &self.postings_bytes
    }

    /// Match one keyword through the per-shard fan-out: candidates are
    /// scored and threshold-filtered shard by shard, then the survivor lists
    /// are merged back into ascending document order — exactly the global
    /// candidate order [`KeywordIndex::matches`] scores — before the shared
    /// ranking rule (stable descending similarity, `max_matches` cutoff)
    /// runs. Byte-identical to the unsharded path for any shard count.
    pub fn matches_sharded(
        &self,
        index: &KeywordIndex,
        keyword: &str,
        config: &MatchConfig,
    ) -> Vec<KeywordMatch> {
        debug_assert_eq!(self.shard_of_doc.len(), index.documents.len());
        let Some(terms) = index.query_terms(keyword) else {
            return Vec::new();
        };
        // Fan: each shard scores only its own candidates. Candidate lists
        // are per-shard subsequences of the globally ascending candidate
        // list, so each survivor list comes out ascending too.
        let mut per_shard: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.shards.max(1)];
        let last = per_shard.len() - 1;
        for &idx in &terms.candidates {
            let shard = self.shard_of_doc.get(idx).copied().unwrap_or(0) as usize;
            let similarity = index.score(&terms, idx);
            if similarity >= config.min_similarity {
                per_shard[shard.min(last)].push((idx, similarity));
            }
        }
        // Merge: concatenating the shard lists and re-sorting by document
        // index restores the exact global order (indices are distinct).
        let mut merged: Vec<(usize, f64)> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(idx, _)| idx);
        let mut scored: Vec<KeywordMatch> = merged
            .into_iter()
            .map(|(idx, similarity)| KeywordMatch {
                target: index.documents[idx].target.clone(),
                similarity,
            })
            .collect();
        // Stable sort: similarity ties keep ascending document order.
        scored.sort_by(|a, b| b.similarity.total_cmp(&a.similarity));
        scored.truncate(config.max_matches);
        scored
    }
}

/// Deterministic estimate of one document's postings footprint: normalised
/// text, token strings + posting entries, trigram strings + posting entries,
/// and the fixed per-document state (target, norm). An estimate — not an
/// allocator measurement — but stable across builds, which is what the
/// accounting tests and `/metrics` gauges need.
fn doc_byte_estimate(doc: &Document) -> u64 {
    let tokens: usize = doc.tokens.iter().map(|t| t.len() + 8).sum();
    let trigrams = doc.trigrams.len() * (3 + 8);
    (doc.text.len() + tokens + trigrams + 24) as u64
}

fn normalize(text: &str) -> String {
    text.trim().to_lowercase()
}

/// Split into alphanumeric tokens; underscores and punctuation separate
/// tokens so that `entry_ac` matches the keyword "entry".
fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Character trigrams of the normalised text (with word boundary padding).
fn trigrams(text: &str) -> HashSet<String> {
    let padded = format!("  {}  ", normalize(text));
    let chars: Vec<char> = padded.chars().collect();
    let mut grams = HashSet::new();
    if chars.len() < 3 {
        return grams;
    }
    for w in chars.windows(3) {
        grams.insert(w.iter().collect());
    }
    grams
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name", "term_type"])
                    .row(["GO:0005134", "plasma membrane", "component"])
                    .row(["GO:0007652", "kinase activity", "function"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro_pub", &["pub_id", "title"])
                    .row(["PUB1", "Structure of the plasma membrane"]),
            )
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    #[test]
    fn exact_attribute_name_scores_one() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("title", &MatchConfig::default());
        let title = cat.resolve_qualified("interpro_pub.title").unwrap();
        let top = &matches[0];
        assert_eq!(top.target, MatchTarget::Attribute(title));
        assert!((top.similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn value_matches_are_found_with_high_similarity() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("plasma membrane", &MatchConfig::default());
        let name = cat.resolve_qualified("go_term.name").unwrap();
        assert!(matches.iter().any(|m| matches!(
            &m.target,
            MatchTarget::Value { attribute, value } if *attribute == name && value == "plasma membrane"
        )));
        // The title containing the phrase also matches, but not exactly.
        let title_attr = cat.resolve_qualified("interpro_pub.title").unwrap();
        let title_match = matches.iter().find(|m| {
            matches!(&m.target, MatchTarget::Value { attribute, .. } if *attribute == title_attr)
        });
        assert!(title_match.is_some());
        assert!(title_match.unwrap().similarity < 1.0);
    }

    #[test]
    fn partial_keyword_matches_via_tokens() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let matches = idx.matches("term", &MatchConfig::default());
        let rel = cat.relation_by_name("go_term").unwrap().id;
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }

    #[test]
    fn min_similarity_filters_weak_matches() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let strict = MatchConfig {
            min_similarity: 0.99,
            max_matches: 10,
        };
        let matches = idx.matches("membrane", &strict);
        assert!(matches.is_empty());
    }

    #[test]
    fn max_matches_truncates() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig {
            min_similarity: 0.01,
            max_matches: 2,
        };
        assert!(idx.matches("a", &cfg).len() <= 2);
    }

    #[test]
    fn unmatched_keyword_returns_empty() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        assert!(idx.matches("zzzqqqxxx", &MatchConfig::default()).is_empty());
        assert!(idx.matches("", &MatchConfig::default()).is_empty());
    }

    #[test]
    fn add_relation_extends_index() {
        let mut cat = catalog();
        let mut idx = KeywordIndex::build(&cat);
        let before = idx.len();
        let src = cat.add_source("new").unwrap();
        let rel = cat
            .add_relation(src, "journal", &["journal_id", "journal_name"])
            .unwrap();
        cat.insert_rows(rel, vec![vec![Value::from("J1"), Value::from("Nature")]])
            .unwrap();
        idx.add_relation(&cat, rel);
        assert!(idx.len() > before);
        let matches = idx.matches("journal", &MatchConfig::default());
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }

    #[test]
    fn incremental_add_relation_converges_to_the_batch_index() {
        // Grow an index one relation at a time and compare against the
        // batch build over the final catalog: canonical document order makes
        // them identical, so match lists (and downstream tie-breaks) cannot
        // depend on which path built the index.
        let mut cat = Catalog::new();
        let incremental = {
            let mut idx = KeywordIndex::default();
            let s1 = cat.add_source("go").unwrap();
            let r1 = cat.add_relation(s1, "go_term", &["acc", "name"]).unwrap();
            cat.insert_rows(r1, vec![vec![Value::from("GO:1"), Value::from("membrane")]])
                .unwrap();
            idx.add_relation(&cat, r1);
            let s2 = cat.add_source("interpro").unwrap();
            let r2 = cat
                .add_relation(s2, "entry", &["entry_ac", "name"])
                .unwrap();
            cat.insert_rows(
                r2,
                vec![vec![Value::from("IPR01"), Value::from("Kringle domain")]],
            )
            .unwrap();
            idx.add_relation(&cat, r2);
            idx
        };
        let batch = KeywordIndex::build(&cat);
        assert_eq!(incremental.len(), batch.len());
        for (a, b) in incremental.documents.iter().zip(&batch.documents) {
            assert_eq!(a, b);
        }
        let cfg = MatchConfig::default();
        for kw in ["name", "membrane", "entry", "kringle"] {
            assert_eq!(incremental.matches(kw, &cfg), batch.matches(kw, &cfg));
        }
    }

    #[test]
    fn keyword_matches_in_scopes_matches_to_the_given_relations() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig::default();
        let go_term = cat.relation_by_name("go_term").unwrap().id;
        let pub_rel = cat.relation_by_name("interpro_pub").unwrap().id;
        // "plasma membrane" matches a go_term value and an interpro_pub
        // title, but nothing when scoped to no relations.
        assert!(idx.keyword_matches_in("plasma membrane", &cat, &[go_term], &cfg));
        assert!(idx.keyword_matches_in("plasma membrane", &cat, &[pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("plasma membrane", &cat, &[], &cfg));
        // "title" is an interpro_pub attribute only.
        assert!(idx.keyword_matches_in("title", &cat, &[pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("title", &cat, &[go_term], &cfg));
        // Garbage matches nowhere.
        assert!(!idx.keyword_matches_in("zzzqqqxxx", &cat, &[go_term, pub_rel], &cfg));
        assert!(!idx.keyword_matches_in("", &cat, &[go_term], &cfg));
    }

    #[test]
    fn sharded_matches_equal_unsharded_for_any_shard_count() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        let cfg = MatchConfig {
            min_similarity: 0.1,
            max_matches: 8,
        };
        for k in [1, 2, 3, 7] {
            let plan = ShardPlan::by_source(&cat, k);
            let sharded = ShardedKeywordIndex::build(&idx, &cat, &plan);
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.doc_count(), idx.len());
            assert!(sharded.postings_bytes().iter().sum::<u64>() > 0);
            for kw in ["title", "plasma membrane", "term", "pub", "zzzqqq", ""] {
                assert_eq!(
                    sharded.matches_sharded(&idx, kw, &cfg),
                    idx.matches(kw, &cfg),
                    "shard count {k}, keyword {kw:?}"
                );
            }
        }
    }

    #[test]
    fn abbreviation_matches_full_word_via_containment() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat);
        // "publication" should still find the `interpro_pub` relation through
        // the `pub` token containment heuristic.
        let cfg = MatchConfig {
            min_similarity: 0.2,
            max_matches: 20,
        };
        let matches = idx.matches("pub", &cfg);
        let rel = cat.relation_by_name("interpro_pub").unwrap().id;
        assert!(matches
            .iter()
            .any(|m| m.target == MatchTarget::Relation(rel)));
    }
}
