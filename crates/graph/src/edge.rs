//! Search-graph and query-graph edges.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::features::{FeatureVector, WeightVector};
use crate::node::NodeId;

/// Dense edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The kinds of edge appearing in Figures 2 and 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Zero-cost edge between an attribute and its relation.
    AttributeRelation,
    /// Key–foreign-key edge between two relations (cost `c_f`).
    ForeignKey,
    /// Matcher-proposed (or hand-coded) association between two attributes
    /// (cost `c_a`).
    Association,
    /// Query-graph edge between a keyword node and a matching schema node
    /// (cost `w_i · s_i`).
    KeywordMatch,
    /// Zero-cost edge between a data-value node and its attribute node.
    ValueAttribute,
    /// Query-graph edge between a keyword node and a matching data value.
    KeywordValue,
}

impl EdgeKind {
    /// True for the edge kinds whose cost is pinned at zero and excluded from
    /// learning (the set `A` of Algorithm 4).
    pub fn is_fixed_zero(self) -> bool {
        matches!(self, EdgeKind::AttributeRelation | EdgeKind::ValueAttribute)
    }
}

/// An undirected, weighted edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Edge id.
    pub id: EdgeId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// What the edge represents.
    pub kind: EdgeKind,
    /// Sparse features; the edge cost is `weights · features`.
    pub features: FeatureVector,
}

impl Edge {
    /// Cost of the edge under a weight vector. Fixed-zero edges always cost
    /// zero regardless of the weights.
    pub fn cost(&self, weights: &WeightVector) -> f64 {
        if self.kind.is_fixed_zero() {
            0.0
        } else {
            self.features.dot(weights)
        }
    }

    /// The endpoint that is not `node` (panics if `node` is not an endpoint).
    pub fn other(&self, node: NodeId) -> NodeId {
        if self.a == node {
            self.b
        } else if self.b == node {
            self.a
        } else {
            panic!("node {node} is not an endpoint of edge {}", self.id)
        }
    }

    /// True if `node` is one of the endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureId, FeatureVector};

    fn edge(kind: EdgeKind) -> Edge {
        Edge {
            id: EdgeId(0),
            a: NodeId(1),
            b: NodeId(2),
            kind,
            features: FeatureVector::from_pairs([(FeatureId(0), 1.0)]),
        }
    }

    #[test]
    fn fixed_zero_kinds() {
        assert!(EdgeKind::AttributeRelation.is_fixed_zero());
        assert!(EdgeKind::ValueAttribute.is_fixed_zero());
        assert!(!EdgeKind::Association.is_fixed_zero());
        assert!(!EdgeKind::ForeignKey.is_fixed_zero());
        assert!(!EdgeKind::KeywordMatch.is_fixed_zero());
    }

    #[test]
    fn fixed_zero_edges_cost_zero_even_with_features() {
        let mut w = WeightVector::default();
        w.set(FeatureId(0), 5.0);
        assert_eq!(edge(EdgeKind::AttributeRelation).cost(&w), 0.0);
        assert_eq!(edge(EdgeKind::Association).cost(&w), 5.0);
    }

    #[test]
    fn other_endpoint() {
        let e = edge(EdgeKind::Association);
        assert_eq!(e.other(NodeId(1)), NodeId(2));
        assert_eq!(e.other(NodeId(2)), NodeId(1));
        assert!(e.touches(NodeId(1)));
        assert!(!e.touches(NodeId(3)));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        edge(EdgeKind::Association).other(NodeId(9));
    }
}
