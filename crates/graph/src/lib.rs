//! Search graph, query graph, edge-cost model and Steiner tree search for
//! the Q keyword-search-based data-integration system.
//!
//! This crate implements Sections 2.1–2.2 and 3.4 of the paper:
//!
//! * [`SearchGraph`] — relations and attributes as nodes; zero-cost
//!   attribute–relation edges, foreign-key edges and matcher-proposed
//!   association edges, each carrying a sparse [`FeatureVector`] whose dot
//!   product with a learned [`WeightVector`] is the edge cost (Equation 1).
//! * [`KeywordIndex`] — tf-idf matching of query keywords against schema
//!   elements and pre-indexed data values.
//! * [`QueryGraph`] — the per-query expansion of the search graph with
//!   keyword nodes, match edges and lazily materialised value nodes.
//! * [`steiner`] — exact (Dreyfus–Wagner) and approximate top-k Steiner tree
//!   algorithms that turn the query graph into ranked join trees.

pub mod csr;
pub mod delta;
pub mod edge;
pub mod features;
pub mod heap;
pub mod keyword;
pub mod node;
pub mod query_graph;
pub mod search_graph;
pub mod shard;
pub mod steiner;

pub use csr::{Csr, CsrDelta};
pub use delta::DeltaPricer;
pub use edge::{Edge, EdgeId, EdgeKind};
pub use features::{
    bin_confidence, FeatureId, FeatureSpace, FeatureVector, WeightVector, CONFIDENCE_BINS,
};
pub use heap::IndexedHeap;
pub use keyword::{
    KeywordIndex, KeywordIndexParts, KeywordIndexView, KeywordMatch, MatchTarget,
    ShardedKeywordIndex,
};
pub use node::{Node, NodeId};
pub use query_graph::{KeywordNode, QueryGraph};
pub use search_graph::{AssociationProvenance, SearchGraph, SearchGraphParts};
pub use shard::{GraphShards, ShardPlan, ShardSet, ShardStamp};
pub use steiner::{
    approx_top_k, approx_top_k_detailed, approx_top_k_detailed_fanned, approx_top_k_with,
    exact_minimum_steiner, SteinerConfig, SteinerScratch, SteinerStats, SteinerTree,
};
