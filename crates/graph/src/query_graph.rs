//! Query graph: the per-query expansion of the search graph (Section 2.2).
//!
//! Given a keyword query `{K_1, ..., K_m}`, each keyword is matched against
//! schema elements and pre-indexed data values. A keyword node is added for
//! every `K_i`, with weighted mismatch-cost edges to the matching nodes;
//! matching data values are "lazily" materialised as value nodes connected to
//! their attribute node by zero-cost edges (Figure 3). Steiner trees over the
//! result whose leaves cover all keyword nodes become candidate join
//! queries.

use std::collections::HashMap;

use q_storage::AttributeId;

use crate::csr::Csr;
use crate::edge::{Edge, EdgeId, EdgeKind};
use crate::features::{FeatureVector, WeightVector};
use crate::keyword::{KeywordIndex, KeywordMatch, MatchConfig, MatchTarget};
use crate::node::{Node, NodeId};
use crate::search_graph::SearchGraph;
use crate::steiner::GraphView;

/// A keyword node of the query graph.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordNode {
    /// The keyword (verbatim, as given by the user).
    pub keyword: String,
    /// Node id inside the query graph.
    pub node: NodeId,
    /// The matches this keyword generated.
    pub matches: Vec<KeywordMatch>,
}

/// The query graph: a read-only view of the search graph plus keyword nodes,
/// value nodes and match edges local to one query.
///
/// Adjacency is a single packed [`Csr`] over base *and* query-local edges,
/// built once at the end of [`QueryGraph::build`] — the Steiner search then
/// borrows each node's neighbourhood as a slice instead of concatenating
/// base and extra edge lists per visit.
#[derive(Debug)]
pub struct QueryGraph<'a> {
    base: &'a SearchGraph,
    extra_nodes: Vec<Node>,
    extra_edges: Vec<Edge>,
    csr: Csr,
    keywords: Vec<KeywordNode>,
    value_nodes: HashMap<(AttributeId, String), NodeId>,
}

impl<'a> QueryGraph<'a> {
    /// Expand `base` with nodes and edges for the given keywords.
    ///
    /// Keywords that match nothing still get a keyword node (they simply
    /// remain unreachable, so no Steiner tree will cover them and the query
    /// produces no answers — mirroring the paper's behaviour of returning no
    /// results rather than failing).
    pub fn build(
        base: &'a SearchGraph,
        index: &KeywordIndex,
        keywords: &[&str],
        config: &MatchConfig,
    ) -> Self {
        let match_lists: Vec<Vec<KeywordMatch>> = keywords
            .iter()
            .map(|keyword| index.matches(keyword, config))
            .collect();
        Self::build_with_matches(base, keywords, match_lists)
    }

    /// [`QueryGraph::build`] over precomputed per-keyword match lists.
    ///
    /// The sharded miss path computes each keyword's matches through the
    /// per-shard fan-out and hands the merged lists here; since those lists
    /// are byte-identical to what [`KeywordIndex::matches`] returns, the
    /// resulting query graph — node ids, edge ids, adjacency order — is too.
    pub fn build_with_matches(
        base: &'a SearchGraph,
        keywords: &[&str],
        match_lists: Vec<Vec<KeywordMatch>>,
    ) -> Self {
        debug_assert_eq!(keywords.len(), match_lists.len());
        let mut qg = QueryGraph {
            base,
            extra_nodes: Vec::new(),
            extra_edges: Vec::new(),
            csr: Csr::new(),
            keywords: Vec::new(),
            value_nodes: HashMap::new(),
        };
        let kw_base = base
            .feature_space()
            .get("keyword_base")
            .expect("search graph created via SearchGraph::new()");
        let kw_mismatch = base
            .feature_space()
            .get("keyword_mismatch")
            .expect("search graph created via SearchGraph::new()");

        for (keyword, matches) in keywords.iter().zip(match_lists) {
            let kw_node = qg.push_node(Node::Keyword((*keyword).to_string()));
            for m in &matches {
                let mismatch = 1.0 - m.similarity;
                let mut features = FeatureVector::empty();
                features.add(kw_base, 1.0);
                features.add(kw_mismatch, mismatch);
                match &m.target {
                    MatchTarget::Relation(r) => {
                        if let Some(n) = base.relation_node(*r) {
                            qg.push_edge(kw_node, n, EdgeKind::KeywordMatch, features);
                        }
                    }
                    MatchTarget::Attribute(a) => {
                        if let Some(n) = base.attribute_node(*a) {
                            qg.push_edge(kw_node, n, EdgeKind::KeywordMatch, features);
                        }
                    }
                    MatchTarget::Value { attribute, value } => {
                        if let Some(attr_node) = base.attribute_node(*attribute) {
                            let value_node = qg.value_node(*attribute, value, attr_node);
                            qg.push_edge(kw_node, value_node, EdgeKind::KeywordValue, features);
                        }
                    }
                }
            }
            qg.keywords.push(KeywordNode {
                keyword: (*keyword).to_string(),
                node: kw_node,
                matches,
            });
        }
        // Pack the combined adjacency once; every subsequent neighbourhood
        // read is a borrowed slice.
        qg.csr = Csr::build(
            qg.node_count(),
            base.edges()
                .iter()
                .chain(qg.extra_edges.iter())
                .map(|e| (e.id, e.a, e.b)),
        );
        qg
    }

    /// The underlying search graph.
    pub fn base(&self) -> &SearchGraph {
        self.base
    }

    /// Keyword nodes (the Steiner terminals), in query order.
    pub fn keywords(&self) -> &[KeywordNode] {
        &self.keywords
    }

    /// Terminal node ids, in query order.
    pub fn terminals(&self) -> Vec<NodeId> {
        self.keywords.iter().map(|k| k.node).collect()
    }

    /// Total number of nodes (base + query-local).
    pub fn node_count(&self) -> usize {
        self.base.node_count() + self.extra_nodes.len()
    }

    /// Total number of edges (base + query-local).
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() + self.extra_edges.len()
    }

    /// The node stored under an id (base or query-local).
    pub fn node(&self, id: NodeId) -> &Node {
        if id.index() < self.base.node_count() {
            self.base.node(id)
        } else {
            &self.extra_nodes[id.index() - self.base.node_count()]
        }
    }

    /// The edge stored under an id (base or query-local).
    pub fn edge(&self, id: EdgeId) -> &Edge {
        if id.index() < self.base.edge_count() {
            self.base.edge(id)
        } else {
            &self.extra_edges[id.index() - self.base.edge_count()]
        }
    }

    /// True if the edge belongs to the underlying search graph (as opposed to
    /// being a query-local keyword/value edge).
    pub fn is_base_edge(&self, id: EdgeId) -> bool {
        id.index() < self.base.edge_count()
    }

    /// Cost of an edge under the search graph's current weights.
    pub fn edge_cost(&self, id: EdgeId) -> f64 {
        self.edge(id).cost(self.base.weights())
    }

    /// Cost of an edge under an explicit weight vector (used by the learner
    /// while exploring candidate weight updates).
    pub fn edge_cost_with(&self, id: EdgeId, weights: &WeightVector) -> f64 {
        self.edge(id).cost(weights)
    }

    /// Feature vector of an edge.
    pub fn edge_features(&self, id: EdgeId) -> &FeatureVector {
        &self.edge(id).features
    }

    /// Edges incident to a node, including query-local ones — a borrowed
    /// slice into the packed combined adjacency.
    #[inline]
    pub fn adjacent(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.neighbors(node)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn value_node(&mut self, attribute: AttributeId, value: &str, attr_node: NodeId) -> NodeId {
        if let Some(n) = self.value_nodes.get(&(attribute, value.to_string())) {
            return *n;
        }
        let n = self.push_node(Node::Value {
            attribute,
            value: value.to_string(),
        });
        self.push_edge(
            n,
            attr_node,
            EdgeKind::ValueAttribute,
            FeatureVector::empty(),
        );
        self.value_nodes.insert((attribute, value.to_string()), n);
        n
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId((self.base.node_count() + self.extra_nodes.len()) as u32);
        self.extra_nodes.push(node);
        id
    }

    fn push_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: EdgeKind,
        features: FeatureVector,
    ) -> EdgeId {
        let id = EdgeId((self.base.edge_count() + self.extra_edges.len()) as u32);
        self.extra_edges.push(Edge {
            id,
            a,
            b,
            kind,
            features,
        });
        id
    }
}

impl GraphView for QueryGraph<'_> {
    fn node_count(&self) -> usize {
        QueryGraph::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        self.adjacent(node)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = self.edge(edge);
        (e.a, e.b)
    }

    fn edge_cost(&self, edge: EdgeId) -> f64 {
        QueryGraph::edge_cost(self, edge)
    }
}

impl GraphView for SearchGraph {
    fn node_count(&self) -> usize {
        SearchGraph::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        SearchGraph::neighbors(self, node)
    }

    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = self.edge(edge);
        (e.a, e.b)
    }

    fn edge_cost(&self, edge: EdgeId) -> f64 {
        SearchGraph::edge_cost(self, edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{Catalog, RelationSpec, SourceSpec};

    fn setup() -> (Catalog, SearchGraph, KeywordIndex) {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro_pub", &["pub_id", "title"])
                    .row(["P1", "Membrane proteins"]),
            )
            .load_into(&mut cat)
            .unwrap();
        let graph = SearchGraph::from_catalog(&cat);
        let index = KeywordIndex::build(&cat);
        (cat, graph, index)
    }

    #[test]
    fn keywords_become_terminal_nodes() {
        let (_cat, graph, index) = setup();
        let qg = QueryGraph::build(
            &graph,
            &index,
            &["title", "plasma membrane"],
            &MatchConfig::default(),
        );
        assert_eq!(qg.keywords().len(), 2);
        assert_eq!(qg.terminals().len(), 2);
        // Terminals are query-local nodes.
        for t in qg.terminals() {
            assert!(t.index() >= graph.node_count());
            assert!(qg.node(t).is_keyword());
        }
    }

    #[test]
    fn value_matches_materialize_value_nodes_with_zero_cost_attachment() {
        let (cat, graph, index) = setup();
        let qg = QueryGraph::build(
            &graph,
            &index,
            &["plasma membrane"],
            &MatchConfig::default(),
        );
        let name_attr = cat.resolve_qualified("go_term.name").unwrap();
        // Find the value node.
        let value_node = (graph.node_count()..qg.node_count())
            .map(|i| NodeId(i as u32))
            .find(|n| matches!(qg.node(*n), Node::Value { attribute, value } if *attribute == name_attr && value == "plasma membrane"));
        let value_node = value_node.expect("value node materialised");
        // It must attach to its attribute with a zero-cost edge.
        let adj = qg.adjacent(value_node);
        let attr_node = graph.attribute_node(name_attr).unwrap();
        let attach = adj
            .iter()
            .find(|(_, n)| *n == attr_node)
            .expect("attached to attribute");
        assert_eq!(qg.edge_cost(attach.0), 0.0);
    }

    #[test]
    fn exact_keyword_match_edges_are_cheap() {
        let (cat, graph, index) = setup();
        let qg = QueryGraph::build(&graph, &index, &["title"], &MatchConfig::default());
        let kw = qg.terminals()[0];
        let title = cat.resolve_qualified("interpro_pub.title").unwrap();
        let title_node = graph.attribute_node(title).unwrap();
        let edge = qg
            .adjacent(kw)
            .iter()
            .find(|(_, n)| *n == title_node)
            .expect("keyword matched title attribute");
        // Exact match: cost = keyword_base + 0 mismatch.
        assert!((qg.edge_cost(edge.0) - crate::search_graph::KEYWORD_BASE_WEIGHT).abs() < 1e-9);
    }

    #[test]
    fn unmatched_keyword_still_gets_a_node() {
        let (_cat, graph, index) = setup();
        let qg = QueryGraph::build(&graph, &index, &["qqzzvv"], &MatchConfig::default());
        assert_eq!(qg.keywords().len(), 1);
        assert!(qg.keywords()[0].matches.is_empty());
        assert!(qg.adjacent(qg.terminals()[0]).is_empty());
    }

    #[test]
    fn base_edges_and_query_edges_are_distinguished() {
        let (_cat, graph, index) = setup();
        let qg = QueryGraph::build(&graph, &index, &["title"], &MatchConfig::default());
        for e in 0..graph.edge_count() {
            assert!(qg.is_base_edge(EdgeId(e as u32)));
        }
        for e in graph.edge_count()..qg.edge_count() {
            assert!(!qg.is_base_edge(EdgeId(e as u32)));
        }
        assert!(qg.edge_count() > graph.edge_count());
    }

    #[test]
    fn graph_view_neighbors_include_query_local_edges() {
        let (cat, graph, index) = setup();
        let qg = QueryGraph::build(&graph, &index, &["title"], &MatchConfig::default());
        let title = cat.resolve_qualified("interpro_pub.title").unwrap();
        let title_node = graph.attribute_node(title).unwrap();
        let adj = GraphView::neighbors(&qg, title_node);
        // Original attribute-relation edge plus the keyword match edge.
        assert!(adj.len() >= 2);
        assert!(adj.iter().any(|(_, n)| qg.node(*n).is_keyword()));
    }
}
