//! Search-graph and query-graph nodes.

use serde::{Deserialize, Serialize};
use std::fmt;

use q_storage::{AttributeId, RelationId};

/// Dense node identifier within a [`SearchGraph`](crate::SearchGraph) or
/// [`QueryGraph`](crate::QueryGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kinds of node in the graphs of Section 2.1 / 2.2.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A relation (rounded rectangle in Figure 2).
    Relation(RelationId),
    /// An attribute (ellipse in Figure 2).
    Attribute(AttributeId),
    /// A data value, lazily materialised into the query graph when a keyword
    /// matches it (Section 2.2).
    Value {
        /// Attribute the value occurs in.
        attribute: AttributeId,
        /// Normalised value text.
        value: String,
    },
    /// A keyword node of the query graph (bold italics in Figure 3).
    Keyword(String),
}

impl Node {
    /// Relation id if this is a relation node.
    pub fn as_relation(&self) -> Option<RelationId> {
        match self {
            Node::Relation(r) => Some(*r),
            _ => None,
        }
    }

    /// Attribute id if this is an attribute node.
    pub fn as_attribute(&self) -> Option<AttributeId> {
        match self {
            Node::Attribute(a) => Some(*a),
            _ => None,
        }
    }

    /// True for keyword nodes.
    pub fn is_keyword(&self) -> bool {
        matches!(self, Node::Keyword(_))
    }

    /// True for data-value nodes.
    pub fn is_value(&self) -> bool {
        matches!(self, Node::Value { .. })
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Relation(r) => write!(f, "relation({r})"),
            Node::Attribute(a) => write!(f, "attribute({a})"),
            Node::Value { attribute, value } => write!(f, "value({attribute}:{value})"),
            Node::Keyword(k) => write!(f, "keyword({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_accessors() {
        assert_eq!(
            Node::Relation(RelationId(3)).as_relation(),
            Some(RelationId(3))
        );
        assert_eq!(Node::Relation(RelationId(3)).as_attribute(), None);
        assert_eq!(
            Node::Attribute(AttributeId(5)).as_attribute(),
            Some(AttributeId(5))
        );
        assert!(Node::Keyword("publication".into()).is_keyword());
        assert!(Node::Value {
            attribute: AttributeId(1),
            value: "plasma membrane".into()
        }
        .is_value());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert!(Node::Keyword("title".into()).to_string().contains("title"));
    }
}
