//! The search graph (Section 2.1) and its maintenance operations
//! (Section 3).
//!
//! The search graph is the data model queried by Q. It contains a node per
//! relation and per attribute, zero-cost attribute–relation edges,
//! foreign-key edges, and *association* edges proposed by schema matchers.
//! Every non-fixed edge carries a sparse feature vector; the edge cost is the
//! dot product with the graph's current weight vector (Equation 1), which the
//! learner in `q-learn` adjusts from user feedback.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use q_storage::{AttributeId, Catalog, RelationId, SourceId};

use crate::csr::{Csr, CsrDelta};
use crate::edge::{Edge, EdgeId, EdgeKind};
use crate::features::{bin_confidence, FeatureSpace, FeatureVector, WeightVector};
use crate::node::{Node, NodeId};

/// Default weight of the feature shared by every learnable edge. Its weight
/// is the uniform cost offset that keeps all edge costs positive.
pub const DEFAULT_EDGE_WEIGHT: f64 = 0.5;

/// Default additional cost of a key–foreign-key edge (`c_d` in Section 2.1).
pub const DEFAULT_FOREIGN_KEY_WEIGHT: f64 = 0.5;

/// Default weight of the base feature every keyword-match edge carries.
pub const KEYWORD_BASE_WEIGHT: f64 = 0.1;

/// Default weight scaling the keyword mismatch score `s_i` (Section 2.2's
/// `w_i`), so a keyword edge initially costs `0.1 + (1 - similarity)`.
pub const KEYWORD_MISMATCH_WEIGHT: f64 = 1.0;

/// Record of one matcher's opinion about an association edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationProvenance {
    /// Matcher that proposed the alignment (e.g. `"metadata"`, `"mad"`, or
    /// `"manual"`).
    pub matcher: String,
    /// Normalised confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Owned persistent state of a [`SearchGraph`]: the exact field set a
/// snapshot stores. [`SearchGraph::from_parts`] reconstructs a serving graph
/// from these, re-deriving the lookup structures (node interning map,
/// incremental adjacency, association map) instead of persisting them.
#[derive(Debug, Clone, Default)]
pub struct SearchGraphParts {
    /// All nodes, in id order.
    pub nodes: Vec<Node>,
    /// All edges, in id order (with their feature vectors).
    pub edges: Vec<Edge>,
    /// The packed adjacency index (covers every edge).
    pub csr: Csr,
    /// The feature space (names + default weights, in id order).
    pub features: FeatureSpace,
    /// The learned weight vector.
    pub weights: WeightVector,
    /// The weight epoch at persist time.
    pub weight_epoch: u64,
    /// Matcher provenance per association edge, sorted by edge id.
    pub provenance: Vec<(EdgeId, Vec<AssociationProvenance>)>,
}

/// The search graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchGraph {
    nodes: Vec<Node>,
    node_ids: HashMap<Node, NodeId>,
    edges: Vec<Edge>,
    /// Incremental per-node edge lists, the ground truth while a mutation is
    /// in flight (`find_edge` must see edges pushed earlier in the same
    /// `add_source` call). Public reads go through `csr`.
    adjacency: Vec<Vec<EdgeId>>,
    /// Packed adjacency republished at the end of every topology mutation;
    /// the query hot path iterates this without allocating. Mutations repack
    /// by merging a [`CsrDelta`] of the edges added since the last publish
    /// over the previous index — byte-identical to a from-scratch pack, but
    /// without re-walking the historical edge list.
    csr: Csr,
    /// Number of leading edges already reflected in `csr`; edges beyond it
    /// are the delta the next publish merges.
    packed_edges: usize,
    features: FeatureSpace,
    weights: WeightVector,
    /// Monotone counter bumped whenever anything that can change an edge
    /// cost changes: weight updates (MIRA re-pricing, authoritativeness) and
    /// topology growth (new sources, new associations). Answer caches key on
    /// it — see `q-core`'s `QueryCache`.
    weight_epoch: u64,
    /// Canonically ordered attribute pair -> association edge. Ordered map so
    /// `association_edges()` iterates deterministically — downstream top-Y
    /// cutoffs break cost ties by iteration order.
    associations: BTreeMap<(AttributeId, AttributeId), EdgeId>,
    provenance: HashMap<EdgeId, Vec<AssociationProvenance>>,
}

impl SearchGraph {
    /// Create an empty search graph with the standard feature space.
    pub fn new() -> Self {
        let mut graph = SearchGraph::default();
        graph.features.intern("default", DEFAULT_EDGE_WEIGHT);
        graph
            .features
            .intern("foreign_key", DEFAULT_FOREIGN_KEY_WEIGHT);
        graph.features.intern("keyword_base", KEYWORD_BASE_WEIGHT);
        graph
            .features
            .intern("keyword_mismatch", KEYWORD_MISMATCH_WEIGHT);
        graph.weights = graph.features.default_weights();
        graph
    }

    /// Reconstruct a graph from persisted parts without re-running any
    /// source scan or matcher: the node interning map, incremental adjacency
    /// lists and association map are re-derived from the node/edge arrays,
    /// and the CSR is taken as already covering every edge.
    pub fn from_parts(parts: SearchGraphParts) -> Self {
        let mut node_ids = HashMap::with_capacity(parts.nodes.len());
        for (i, node) in parts.nodes.iter().enumerate() {
            node_ids.insert(node.clone(), NodeId(i as u32));
        }
        let mut adjacency: Vec<Vec<EdgeId>> = vec![Vec::new(); parts.nodes.len()];
        let mut associations = BTreeMap::new();
        for edge in &parts.edges {
            adjacency[edge.a.index()].push(edge.id);
            if edge.a != edge.b {
                adjacency[edge.b.index()].push(edge.id);
            }
            if edge.kind == EdgeKind::Association {
                if let (Node::Attribute(a), Node::Attribute(b)) =
                    (&parts.nodes[edge.a.index()], &parts.nodes[edge.b.index()])
                {
                    let key = if a <= b { (*a, *b) } else { (*b, *a) };
                    associations.insert(key, edge.id);
                }
            }
        }
        let packed_edges = parts.edges.len();
        SearchGraph {
            nodes: parts.nodes,
            node_ids,
            edges: parts.edges,
            adjacency,
            csr: parts.csr,
            packed_edges,
            features: parts.features,
            weights: parts.weights,
            weight_epoch: parts.weight_epoch,
            associations,
            provenance: parts.provenance.into_iter().collect(),
        }
    }

    /// Matcher provenance of every association edge, sorted by edge id (the
    /// deterministic order a persistent snapshot stores).
    pub fn provenance_sorted(&self) -> Vec<(EdgeId, &[AssociationProvenance])> {
        let mut entries: Vec<(EdgeId, &[AssociationProvenance])> = self
            .provenance
            .iter()
            .map(|(e, p)| (*e, p.as_slice()))
            .collect();
        entries.sort_unstable_by_key(|(e, _)| *e);
        entries
    }

    /// Build the initial search graph from every source currently registered
    /// in the catalog (Section 2.1).
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut graph = SearchGraph::new();
        for source in catalog.sources() {
            graph.add_source(catalog, source.id);
        }
        graph
    }

    /// Add the relations, attributes and foreign keys of one source to the
    /// graph. Safe to call for sources registered after the initial build —
    /// this is the first step of incorporating a new source (Section 3.1).
    pub fn add_source(&mut self, catalog: &Catalog, source: SourceId) {
        let Some(src) = catalog.source(source) else {
            return;
        };
        for rel_id in &src.relations {
            let Some(rel) = catalog.relation(*rel_id) else {
                continue;
            };
            let rel_node = self.intern_node(Node::Relation(rel.id));
            for attr in &rel.attributes {
                let attr_node = self.intern_node(Node::Attribute(*attr));
                if self.find_edge(rel_node, attr_node).is_none() {
                    self.push_edge(
                        rel_node,
                        attr_node,
                        EdgeKind::AttributeRelation,
                        FeatureVector::empty(),
                    );
                }
            }
        }
        // Foreign keys may reference relations from earlier sources, so they
        // are (re)scanned after the relations are in place.
        for fk in catalog.foreign_keys() {
            let (Some(fa), Some(ta)) = (catalog.attribute(fk.from), catalog.attribute(fk.to))
            else {
                continue;
            };
            let (Some(ra), Some(rb)) = (
                self.relation_node(fa.relation),
                self.relation_node(ta.relation),
            ) else {
                continue;
            };
            if self.find_edge(ra, rb).is_none() {
                let mut fv = FeatureVector::empty();
                fv.add(self.features.intern("default", DEFAULT_EDGE_WEIGHT), 1.0);
                fv.add(
                    self.features
                        .intern("foreign_key", DEFAULT_FOREIGN_KEY_WEIGHT),
                    1.0,
                );
                let ra_rel = fa.relation;
                let rb_rel = ta.relation;
                self.add_relation_features(&mut fv, ra_rel);
                self.add_relation_features(&mut fv, rb_rel);
                self.weights.sync_with(&self.features);
                self.push_edge(ra, rb, EdgeKind::ForeignKey, fv);
            }
        }
        self.weights.sync_with(&self.features);
        self.finish_topology_change();
    }

    // ------------------------------------------------------------------
    // Associations
    // ------------------------------------------------------------------

    /// Add (or update) an association edge between two attributes, recording
    /// the proposing matcher's confidence. Returns the edge id.
    ///
    /// The edge receives the feature set of Section 3.4: the shared default
    /// feature, one indicator per (matcher, confidence-bin), one indicator
    /// per touched relation and one edge-unique indicator.
    pub fn add_association(
        &mut self,
        a: AttributeId,
        b: AttributeId,
        matcher: &str,
        confidence: f64,
    ) -> EdgeId {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(edge_id) = self.associations.get(&key).copied() {
            // Merge another matcher's opinion into the existing edge.
            let bin = bin_confidence(confidence);
            let feature = self.features.intern(
                &format!("matcher:{matcher}:bin{bin}"),
                matcher_bin_default_weight(bin),
            );
            self.weights.sync_with(&self.features);
            let already_has = self.edges[edge_id.index()].features.get(feature) != 0.0;
            if !already_has {
                self.edges[edge_id.index()].features.add(feature, 1.0);
            }
            self.provenance
                .entry(edge_id)
                .or_default()
                .push(AssociationProvenance {
                    matcher: matcher.to_string(),
                    confidence,
                });
            if !already_has {
                // The merged bin feature re-prices the edge.
                self.weight_epoch += 1;
            }
            return edge_id;
        }

        let na = self.intern_node(Node::Attribute(a));
        let nb = self.intern_node(Node::Attribute(b));
        let mut fv = FeatureVector::empty();
        fv.add(self.features.intern("default", DEFAULT_EDGE_WEIGHT), 1.0);
        let bin = bin_confidence(confidence);
        fv.add(
            self.features.intern(
                &format!("matcher:{matcher}:bin{bin}"),
                matcher_bin_default_weight(bin),
            ),
            1.0,
        );
        // Relation-authoritativeness features for both endpoints, when the
        // attributes' relations are known to the graph.
        let rel_a = self.relation_of_attribute(a);
        let rel_b = self.relation_of_attribute(b);
        if let Some(r) = rel_a {
            self.add_relation_features(&mut fv, r);
        }
        if let Some(r) = rel_b {
            self.add_relation_features(&mut fv, r);
        }
        // Edge-unique feature.
        let edge_index = self.edges.len();
        fv.add(
            self.features.intern(&format!("edge:{edge_index}"), 0.0),
            1.0,
        );
        self.weights.sync_with(&self.features);
        let id = self.push_edge(na, nb, EdgeKind::Association, fv);
        self.associations.insert(key, id);
        self.provenance.insert(
            id,
            vec![AssociationProvenance {
                matcher: matcher.to_string(),
                confidence,
            }],
        );
        self.finish_topology_change();
        id
    }

    /// Existing association edge between two attributes, if any.
    pub fn association_between(&self, a: AttributeId, b: AttributeId) -> Option<EdgeId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.associations.get(&key).copied()
    }

    /// Iterate over all association edges with their attribute endpoints.
    pub fn association_edges(
        &self,
    ) -> impl Iterator<Item = (EdgeId, AttributeId, AttributeId)> + '_ {
        self.associations.iter().map(|((a, b), e)| (*e, *a, *b))
    }

    /// Matchers' recorded opinions about an association edge.
    pub fn provenance(&self, edge: EdgeId) -> &[AssociationProvenance] {
        self.provenance.get(&edge).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Confidence reported by a specific matcher for an association edge.
    pub fn matcher_confidence(&self, edge: EdgeId, matcher: &str) -> Option<f64> {
        self.provenance(edge)
            .iter()
            .filter(|p| p.matcher == matcher)
            .map(|p| p.confidence)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.max(c))))
    }

    /// Declare a relation's authoritativeness `auth ∈ (0, 1]`. The feature
    /// weight becomes `-ln(auth)` so authoritative relations add no cost.
    pub fn set_relation_authoritativeness(&mut self, relation: RelationId, auth: f64) {
        let a = auth.clamp(1e-6, 1.0);
        let feature = self.features.intern(&format!("relation:{relation}"), 0.0);
        self.weights.sync_with(&self.features);
        self.weights.set(feature, -a.ln());
        self.weight_epoch += 1;
    }

    /// The learned weight attached to a relation's authoritativeness feature
    /// (0 if never learned). Lower means more preferred; used as the vertex
    /// prior of PreferentialAligner.
    pub fn relation_feature_weight(&self, relation: RelationId) -> f64 {
        self.features
            .get(&format!("relation:{relation}"))
            .map(|f| self.weights.get(f))
            .unwrap_or(0.0)
    }

    // ------------------------------------------------------------------
    // Node / edge access
    // ------------------------------------------------------------------

    /// Node id of a relation, if present.
    pub fn relation_node(&self, relation: RelationId) -> Option<NodeId> {
        self.node_ids.get(&Node::Relation(relation)).copied()
    }

    /// Node id of an attribute, if present.
    pub fn attribute_node(&self, attribute: AttributeId) -> Option<NodeId> {
        self.node_ids.get(&Node::Attribute(attribute)).copied()
    }

    /// The node stored under an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge stored under an id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges incident to a node, with the opposite endpoint. A borrowed
    /// slice into the packed CSR index — the query hot path iterates this
    /// without allocating.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.neighbors(node)
    }

    /// The packed adjacency index itself.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Relation that an attribute node is attached to (via its zero-cost
    /// attribute–relation edge).
    pub fn relation_of_attribute(&self, attribute: AttributeId) -> Option<RelationId> {
        let attr_node = self.attribute_node(attribute)?;
        self.neighbors(attr_node)
            .iter()
            .find_map(|(_, n)| match self.node(*n) {
                Node::Relation(r) => Some(*r),
                _ => None,
            })
    }

    // ------------------------------------------------------------------
    // Costs
    // ------------------------------------------------------------------

    /// Current cost of an edge.
    pub fn edge_cost(&self, edge: EdgeId) -> f64 {
        self.edges[edge.index()].cost(&self.weights)
    }

    /// Current weight vector.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// Replace the weight vector (the learner produces new weights). Bumps
    /// the weight epoch: every cached answer computed under the old prices
    /// becomes unreachable.
    pub fn set_weights(&mut self, weights: WeightVector) {
        self.weights = weights;
        self.weights.sync_with(&self.features);
        self.weight_epoch += 1;
    }

    /// Current weight epoch: a monotone version counter for the edge-cost
    /// model. It increases whenever a weight update (MIRA re-pricing,
    /// authoritativeness) or a topology change (new source, new or re-binned
    /// association) can alter any query's answers. `(query, epoch)` is
    /// therefore a sound cache key: equal epochs imply identical costs.
    pub fn weight_epoch(&self) -> u64 {
        self.weight_epoch
    }

    /// The feature space shared by all edges.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.features
    }

    /// Mutable feature space (the learner may intern loss features).
    pub fn feature_space_mut(&mut self) -> &mut FeatureSpace {
        &mut self.features
    }

    /// Smallest cost over all learnable (non-fixed) edges. The learner uses
    /// this to keep every edge cost positive by raising the default weight.
    pub fn min_learnable_edge_cost(&self) -> Option<f64> {
        self.edges
            .iter()
            .filter(|e| !e.kind.is_fixed_zero())
            .map(|e| e.cost(&self.weights))
            .min_by(|a, b| a.total_cmp(b))
    }

    // ------------------------------------------------------------------
    // Cost neighbourhood (GETCOSTNEIGHBORHOOD of Algorithm 2)
    // ------------------------------------------------------------------

    /// All nodes reachable from any start node with accumulated edge cost at
    /// most `alpha`, under the current weights (multi-source Dijkstra).
    pub fn cost_neighborhood(&self, starts: &[NodeId], alpha: f64) -> HashSet<NodeId> {
        let dist = self.distances_from(starts, Some(alpha));
        dist.into_iter()
            .filter(|(_, d)| *d <= alpha + 1e-12)
            .map(|(n, _)| n)
            .collect()
    }

    /// Multi-source Dijkstra distances, optionally bounded by `limit`.
    /// Runs on the shared [`IndexedHeap`](crate::IndexedHeap) (total-order
    /// `f64::total_cmp` keys, in-place decrease-key) like the Steiner search.
    pub fn distances_from(&self, starts: &[NodeId], limit: Option<f64>) -> HashMap<NodeId, f64> {
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut heap = crate::IndexedHeap::new();
        heap.reset(self.node_count());
        for s in starts {
            dist.insert(*s, 0.0);
            heap.push(0.0, s.0);
        }
        while let Some((d, node)) = heap.pop() {
            let node = NodeId(node);
            if let Some(l) = limit {
                if d > l + 1e-12 {
                    continue;
                }
            }
            for &(edge_id, next) in self.neighbors(node) {
                let nd = d + self.edge_cost(edge_id).max(0.0);
                if let Some(l) = limit {
                    if nd > l + 1e-12 {
                        continue;
                    }
                }
                let better = dist.get(&next).map(|cur| nd < *cur - 1e-12).unwrap_or(true);
                if better {
                    dist.insert(next, nd);
                    heap.push(nd, next.0);
                }
            }
        }
        dist
    }

    /// Relations whose relation node lies inside a node set (used by
    /// ViewBasedAligner to turn a cost neighbourhood into candidate
    /// relations).
    pub fn relations_in(&self, nodes: &HashSet<NodeId>) -> Vec<RelationId> {
        let mut rels: Vec<RelationId> = nodes
            .iter()
            .filter_map(|n| self.node(*n).as_relation())
            .collect();
        // Attributes inside the neighbourhood also pull in their relation:
        // matching an attribute of R means R's tables are candidates.
        for n in nodes {
            if let Node::Attribute(a) = self.node(*n) {
                if let Some(r) = self.relation_of_attribute(*a) {
                    rels.push(r);
                }
            }
        }
        rels.sort();
        rels.dedup();
        rels
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn intern_node(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.node_ids.get(&node) {
            return *id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.node_ids.insert(node, id);
        self.adjacency.push(Vec::new());
        id
    }

    fn push_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: EdgeKind,
        features: FeatureVector,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            a,
            b,
            kind,
            features,
        });
        self.adjacency[a.index()].push(id);
        if a != b {
            self.adjacency[b.index()].push(id);
        }
        id
    }

    fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        // Reads the incremental lists, not the CSR: callers probe for edges
        // pushed earlier in the same (unfinished) mutation.
        self.adjacency.get(a.index()).and_then(|edges| {
            edges
                .iter()
                .find(|e| self.edges[e.index()].touches(b))
                .copied()
        })
    }

    /// Epilogue of every topology mutation: publish a fresh packed CSR by
    /// merging the delta of edges added since the last publish, and bump the
    /// weight epoch (new edges change query answers just as re-pricing
    /// does). Edges are append-only, so the previous index is always a
    /// packed prefix of the current edge list and the merge is equivalent to
    /// a from-scratch rebuild (pinned by unit and property tests).
    fn finish_topology_change(&mut self) {
        let mut delta = CsrDelta::new(self.csr.node_count());
        delta.grow_nodes(self.nodes.len());
        for e in &self.edges[self.packed_edges..] {
            delta.add_edge(e.id, e.a, e.b);
        }
        self.csr = delta.merge(&self.csr);
        self.packed_edges = self.edges.len();
        self.weight_epoch += 1;
    }

    fn add_relation_features(&mut self, fv: &mut FeatureVector, relation: RelationId) {
        let feature = self.features.intern(&format!("relation:{relation}"), 0.0);
        if fv.get(feature) == 0.0 {
            fv.add(feature, 1.0);
        }
    }
}

/// Default weight of a `(matcher, bin)` indicator feature: confident bins add
/// little cost, unconfident bins add a lot. Learned weights replace these as
/// feedback arrives.
fn matcher_bin_default_weight(bin: usize) -> f64 {
    let bins = crate::features::CONFIDENCE_BINS as f64;
    let midpoint = (bin as f64 + 0.5) / bins;
    (1.0 - midpoint).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_storage::{RelationSpec, SourceSpec};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro2go", &["go_id", "entry_ac"]).row(["GO:1", "IPR01"]),
            )
            .relation(RelationSpec::new("entry", &["entry_ac", "name"]).row(["IPR01", "Kringle"]))
            .foreign_key("interpro2go.entry_ac", "entry.entry_ac")
            .load_into(&mut cat)
            .unwrap();
        cat
    }

    fn attr(cat: &Catalog, q: &str) -> AttributeId {
        cat.resolve_qualified(q).unwrap()
    }

    #[test]
    fn initial_graph_has_relation_attribute_and_fk_edges() {
        let cat = catalog();
        let g = SearchGraph::from_catalog(&cat);
        // 3 relations + 6 attributes
        assert_eq!(g.node_count(), 9);
        // 6 attribute-relation edges + 1 FK edge
        assert_eq!(g.edge_count(), 7);
        let fk_edges: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::ForeignKey)
            .collect();
        assert_eq!(fk_edges.len(), 1);
        // FK edge cost = default + foreign_key default weights.
        let cost = g.edge_cost(fk_edges[0].id);
        assert!((cost - (DEFAULT_EDGE_WEIGHT + DEFAULT_FOREIGN_KEY_WEIGHT)).abs() < 1e-9);
    }

    #[test]
    fn attribute_relation_edges_cost_zero() {
        let cat = catalog();
        let g = SearchGraph::from_catalog(&cat);
        for e in g.edges() {
            if e.kind == EdgeKind::AttributeRelation {
                assert_eq!(g.edge_cost(e.id), 0.0);
            }
        }
    }

    #[test]
    fn association_edge_cost_decreases_with_confidence() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let a = attr(&cat, "go_term.acc");
        let b = attr(&cat, "interpro2go.go_id");
        let c = attr(&cat, "entry.name");
        let confident = g.add_association(a, b, "mad", 0.95);
        let unsure = g.add_association(a, c, "mad", 0.15);
        assert!(g.edge_cost(confident) < g.edge_cost(unsure));
    }

    #[test]
    fn adding_same_association_twice_merges_provenance() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let a = attr(&cat, "go_term.acc");
        let b = attr(&cat, "interpro2go.go_id");
        let e1 = g.add_association(a, b, "mad", 0.9);
        let e2 = g.add_association(b, a, "metadata", 0.7);
        assert_eq!(e1, e2);
        assert_eq!(g.provenance(e1).len(), 2);
        assert_eq!(g.matcher_confidence(e1, "mad"), Some(0.9));
        assert_eq!(g.matcher_confidence(e1, "metadata"), Some(0.7));
        assert_eq!(g.matcher_confidence(e1, "other"), None);
        assert_eq!(g.association_between(a, b), Some(e1));
    }

    #[test]
    fn relation_of_attribute_follows_zero_cost_edge() {
        let cat = catalog();
        let g = SearchGraph::from_catalog(&cat);
        let acc = attr(&cat, "go_term.acc");
        let term_rel = cat.relation_by_name("go_term").unwrap().id;
        assert_eq!(g.relation_of_attribute(acc), Some(term_rel));
    }

    #[test]
    fn cost_neighborhood_respects_alpha() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let acc = attr(&cat, "go_term.acc");
        let go_id = attr(&cat, "interpro2go.go_id");
        g.add_association(acc, go_id, "mad", 0.9);

        let start = g.attribute_node(acc).unwrap();
        // alpha = 0: only zero-cost reachable nodes (the attribute itself, its
        // relation, and the relation's other attributes via zero-cost edges).
        let small = g.cost_neighborhood(&[start], 0.0);
        assert!(small.contains(&start));
        assert!(small.contains(
            &g.relation_node(cat.relation_by_name("go_term").unwrap().id)
                .unwrap()
        ));
        assert!(!small.contains(&g.attribute_node(go_id).unwrap()));

        // Large alpha reaches everything connected.
        let big = g.cost_neighborhood(&[start], 10.0);
        assert!(big.contains(&g.attribute_node(go_id).unwrap()));
        assert!(big.len() > small.len());
    }

    #[test]
    fn relations_in_includes_relations_of_attributes() {
        let cat = catalog();
        let g = SearchGraph::from_catalog(&cat);
        let acc = attr(&cat, "go_term.acc");
        let mut set = HashSet::new();
        set.insert(g.attribute_node(acc).unwrap());
        let rels = g.relations_in(&set);
        assert_eq!(rels, vec![cat.relation_by_name("go_term").unwrap().id]);
    }

    #[test]
    fn authoritativeness_sets_relation_feature_weight() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let rel = cat.relation_by_name("entry").unwrap().id;
        g.set_relation_authoritativeness(rel, 0.5);
        let w = g.relation_feature_weight(rel);
        assert!((w - 0.5f64.ln().abs()).abs() < 1e-9);
        // Fully authoritative relation adds no cost.
        g.set_relation_authoritativeness(rel, 1.0);
        assert!(g.relation_feature_weight(rel).abs() < 1e-9);
    }

    #[test]
    fn incremental_source_addition_matches_full_build() {
        let cat = catalog();
        let full = SearchGraph::from_catalog(&cat);
        let mut incremental = SearchGraph::new();
        for s in cat.sources() {
            incremental.add_source(&cat, s.id);
        }
        assert_eq!(full.node_count(), incremental.node_count());
        assert_eq!(full.edge_count(), incremental.edge_count());
    }

    #[test]
    fn neighbors_slice_matches_incremental_adjacency() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let a = attr(&cat, "go_term.acc");
        let b = attr(&cat, "interpro2go.go_id");
        g.add_association(a, b, "mad", 0.9);
        for (id, _) in g.nodes() {
            let packed = g.neighbors(id);
            let incremental: Vec<(EdgeId, NodeId)> = g.adjacency[id.index()]
                .iter()
                .map(|e| (*e, g.edges[e.index()].other(id)))
                .collect();
            assert_eq!(packed, incremental.as_slice(), "node {id}");
        }
    }

    #[test]
    fn delta_published_csr_equals_from_scratch_pack() {
        // Grow the graph through several separate mutations (each one a
        // delta publish) and check the packed index equals a single
        // from-scratch pack of the final edge list.
        let cat = catalog();
        let mut g = SearchGraph::new();
        for s in cat.sources() {
            g.add_source(&cat, s.id);
        }
        let a = attr(&cat, "go_term.acc");
        let b = attr(&cat, "interpro2go.go_id");
        let c = attr(&cat, "entry.name");
        g.add_association(a, b, "mad", 0.9);
        g.add_association(a, c, "metadata", 0.4);
        let scratch = Csr::build(g.node_count(), g.edges().iter().map(|e| (e.id, e.a, e.b)));
        assert_eq!(*g.csr(), scratch);
        assert_eq!(g.packed_edges, g.edge_count());
    }

    #[test]
    fn weight_epoch_bumps_on_repricing_and_topology_changes() {
        let cat = catalog();
        let mut g = SearchGraph::from_catalog(&cat);
        let e0 = g.weight_epoch();

        // Weight replacement (the MIRA path) bumps.
        let w = g.weights().clone();
        g.set_weights(w);
        assert!(g.weight_epoch() > e0);

        // A new association edge bumps.
        let e1 = g.weight_epoch();
        let a = attr(&cat, "go_term.acc");
        let b = attr(&cat, "interpro2go.go_id");
        g.add_association(a, b, "mad", 0.9);
        assert!(g.weight_epoch() > e1);

        // Merging a new matcher bin into an existing edge re-prices it.
        let e2 = g.weight_epoch();
        g.add_association(a, b, "metadata", 0.1);
        assert!(g.weight_epoch() > e2);

        // Re-asserting the same (matcher, bin) changes nothing: no bump.
        let e3 = g.weight_epoch();
        g.add_association(a, b, "metadata", 0.1);
        assert_eq!(g.weight_epoch(), e3);

        // Authoritativeness re-pricing bumps.
        g.set_relation_authoritativeness(cat.relation_by_name("entry").unwrap().id, 0.5);
        assert!(g.weight_epoch() > e3);

        // Pure reads never bump.
        let e4 = g.weight_epoch();
        let _ = g.min_learnable_edge_cost();
        let _ = g.neighbors(NodeId(0));
        assert_eq!(g.weight_epoch(), e4);
    }

    #[test]
    fn min_learnable_edge_cost_ignores_fixed_edges() {
        let cat = catalog();
        let g = SearchGraph::from_catalog(&cat);
        // Only the FK edge is learnable here.
        let min = g.min_learnable_edge_cost().unwrap();
        assert!(min > 0.0);
    }
}
