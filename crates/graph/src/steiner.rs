//! Top-k Steiner tree search over the query graph (Section 2.2).
//!
//! Every tree whose leaves cover all keyword nodes represents a candidate
//! join query; Q ranks them by total edge cost and keeps the `k` cheapest.
//! The paper uses an exact algorithm at small scales and an approximation at
//! larger scales. We provide both:
//!
//! * [`exact_minimum_steiner`] — the Dreyfus–Wagner dynamic program over
//!   terminal subsets, returning a provably minimum-cost Steiner tree.
//! * [`approx_top_k`] — a BANKS/STAR-style heuristic that grows candidate
//!   trees by unioning shortest paths from every candidate root to each
//!   terminal, then prunes and ranks them. This is what the Q pipeline uses
//!   at query time and what the learner uses for its K-best list.

use std::collections::{BinaryHeap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::edge::EdgeId;
use crate::node::NodeId;

/// Read-only adjacency/cost view shared by [`SearchGraph`](crate::SearchGraph)
/// and [`QueryGraph`](crate::QueryGraph), so the Steiner algorithms work over
/// either.
pub trait GraphView {
    /// Number of nodes (node ids are dense in `0..node_count`).
    fn node_count(&self) -> usize;
    /// Incident edges of a node, with the opposite endpoint.
    fn neighbors(&self, node: NodeId) -> Vec<(EdgeId, NodeId)>;
    /// Endpoints of an edge.
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId);
    /// Non-negative cost of an edge under the current weights.
    fn edge_cost(&self, edge: EdgeId) -> f64;
}

/// A Steiner tree: a set of edges connecting all terminals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteinerTree {
    /// Edges of the tree, sorted by id.
    pub edges: Vec<EdgeId>,
    /// Nodes touched by the tree (including isolated single-terminal case).
    pub nodes: Vec<NodeId>,
    /// Total cost (sum of distinct edge costs).
    pub cost: f64,
}

impl SteinerTree {
    fn from_edges<G: GraphView>(graph: &G, edges: HashSet<EdgeId>, terminals: &[NodeId]) -> Self {
        let mut nodes: HashSet<NodeId> = terminals.iter().copied().collect();
        let mut cost = 0.0;
        for e in &edges {
            let (a, b) = graph.edge_endpoints(*e);
            nodes.insert(a);
            nodes.insert(b);
            cost += graph.edge_cost(*e);
        }
        let mut edges: Vec<EdgeId> = edges.into_iter().collect();
        edges.sort();
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort();
        SteinerTree { edges, nodes, cost }
    }

    /// Symmetric edge-set difference with another tree — the loss function
    /// `L(T, T')` of Equation 2.
    pub fn symmetric_loss(&self, other: &SteinerTree) -> f64 {
        let a: HashSet<EdgeId> = self.edges.iter().copied().collect();
        let b: HashSet<EdgeId> = other.edges.iter().copied().collect();
        (a.difference(&b).count() + b.difference(&a).count()) as f64
    }

    /// True if the tree uses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }
}

/// Configuration of the approximate top-k search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteinerConfig {
    /// Number of trees to return.
    pub k: usize,
    /// Maximum number of candidate roots to expand (0 = consider every
    /// reachable node). Limiting roots bounds work on large graphs.
    pub max_roots: usize,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            k: 10,
            max_roots: 0,
        }
    }
}

#[derive(PartialEq)]
struct HeapItem(f64, NodeId);
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra returning distance and predecessor edge per node.
fn dijkstra<G: GraphView>(
    graph: &G,
    source: NodeId,
) -> (HashMap<NodeId, f64>, HashMap<NodeId, (EdgeId, NodeId)>) {
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut parent: HashMap<NodeId, (EdgeId, NodeId)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(HeapItem(0.0, source));
    while let Some(HeapItem(d, node)) = heap.pop() {
        if d > dist.get(&node).copied().unwrap_or(f64::INFINITY) + 1e-12 {
            continue;
        }
        for (edge, next) in graph.neighbors(node) {
            let nd = d + graph.edge_cost(edge).max(0.0);
            if nd < dist.get(&next).copied().unwrap_or(f64::INFINITY) - 1e-12 {
                dist.insert(next, nd);
                parent.insert(next, (edge, node));
                heap.push(HeapItem(nd, next));
            }
        }
    }
    (dist, parent)
}

/// Approximate top-k Steiner trees connecting `terminals`.
///
/// For every candidate root the union of shortest paths from the root to
/// each terminal forms a candidate tree; candidates are pruned to proper
/// trees, deduplicated by edge set and ranked by cost.
pub fn approx_top_k<G: GraphView>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
) -> Vec<SteinerTree> {
    if terminals.is_empty() || config.k == 0 {
        return Vec::new();
    }
    if terminals.len() == 1 {
        return vec![SteinerTree {
            edges: Vec::new(),
            nodes: vec![terminals[0]],
            cost: 0.0,
        }];
    }

    // Dijkstra from every terminal.
    let per_terminal: Vec<_> = terminals.iter().map(|t| dijkstra(graph, *t)).collect();

    // Candidate roots: nodes reachable from every terminal.
    let mut roots: Vec<(NodeId, f64)> = Vec::new();
    'outer: for n in 0..graph.node_count() {
        let node = NodeId(n as u32);
        let mut total = 0.0;
        for (dist, _) in &per_terminal {
            match dist.get(&node) {
                Some(d) => total += d,
                None => continue 'outer,
            }
        }
        roots.push((node, total));
    }
    roots.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if config.max_roots > 0 {
        roots.truncate(config.max_roots);
    }

    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut trees: Vec<SteinerTree> = Vec::new();
    for (root, _) in roots {
        let mut edges: HashSet<EdgeId> = HashSet::new();
        for (_, parent) in &per_terminal {
            // Walk from the root back towards the terminal.
            let mut cur = root;
            while let Some((edge, prev)) = parent.get(&cur) {
                edges.insert(*edge);
                cur = *prev;
            }
        }
        let pruned = prune_to_tree(graph, edges, terminals);
        let tree = SteinerTree::from_edges(graph, pruned, terminals);
        let key = tree.edges.clone();
        if seen.insert(key) {
            trees.push(tree);
        }
    }
    trees.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
    trees.truncate(config.k);
    trees
}

/// Prune a candidate edge set down to a tree that still connects the
/// terminals: build a minimum spanning forest of the subgraph, then
/// repeatedly strip non-terminal leaves.
fn prune_to_tree<G: GraphView>(
    graph: &G,
    edges: HashSet<EdgeId>,
    terminals: &[NodeId],
) -> HashSet<EdgeId> {
    if edges.is_empty() {
        return edges;
    }
    // Kruskal MST over the candidate edges (connects everything the
    // candidate set connects, with minimum cost, and removes cycles).
    let mut sorted: Vec<EdgeId> = edges.iter().copied().collect();
    sorted.sort_by(|a, b| {
        graph
            .edge_cost(*a)
            .partial_cmp(&graph.edge_cost(*b))
            .unwrap()
    });
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    fn find(parent: &mut HashMap<NodeId, NodeId>, x: NodeId) -> NodeId {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    let mut mst: HashSet<EdgeId> = HashSet::new();
    for e in sorted {
        let (a, b) = graph.edge_endpoints(e);
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent.insert(ra, rb);
            mst.insert(e);
        }
    }
    // Strip non-terminal leaves until fixpoint.
    let terminal_set: HashSet<NodeId> = terminals.iter().copied().collect();
    loop {
        let mut degree: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
        for e in &mst {
            let (a, b) = graph.edge_endpoints(*e);
            degree.entry(a).or_default().push(*e);
            degree.entry(b).or_default().push(*e);
        }
        let removable: Vec<EdgeId> = degree
            .iter()
            .filter(|(n, es)| es.len() == 1 && !terminal_set.contains(n))
            .map(|(_, es)| es[0])
            .collect();
        if removable.is_empty() {
            break;
        }
        for e in removable {
            mst.remove(&e);
        }
        if mst.is_empty() {
            break;
        }
    }
    mst
}

/// Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.
///
/// Returns `None` when the terminals cannot all be connected. Falls back to
/// the approximation when there are more than 12 terminals (the DP is
/// exponential in the number of terminals).
pub fn exact_minimum_steiner<G: GraphView>(graph: &G, terminals: &[NodeId]) -> Option<SteinerTree> {
    if terminals.is_empty() {
        return None;
    }
    if terminals.len() == 1 {
        return Some(SteinerTree {
            edges: Vec::new(),
            nodes: vec![terminals[0]],
            cost: 0.0,
        });
    }
    if terminals.len() > 12 {
        return approx_top_k(graph, terminals, &SteinerConfig { k: 1, max_roots: 0 })
            .into_iter()
            .next();
    }

    let n = graph.node_count();
    let t = terminals.len();
    let full = (1usize << t) - 1;
    const INF: f64 = f64::INFINITY;

    #[derive(Clone, Copy, Debug)]
    enum Choice {
        /// Terminal itself: the empty tree.
        Root,
        /// Extend from a neighbouring node along an edge (same subset).
        Extend { from: NodeId, edge: EdgeId },
        /// Merge two disjoint subsets at this node.
        Merge { subset: usize },
        /// Unreached.
        None,
    }

    let mut dp = vec![vec![INF; n]; full + 1];
    let mut choice = vec![vec![Choice::None; n]; full + 1];

    for (i, term) in terminals.iter().enumerate() {
        dp[1 << i][term.index()] = 0.0;
        choice[1 << i][term.index()] = Choice::Root;
    }

    for mask in 1..=full {
        // Merge step: combine proper sub-subsets meeting at v.
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask ^ sub;
            if sub < other {
                // Each unordered pair considered once.
                for v in 0..n {
                    if dp[sub][v] < INF && dp[other][v] < INF {
                        let c = dp[sub][v] + dp[other][v];
                        if c < dp[mask][v] - 1e-12 {
                            dp[mask][v] = c;
                            choice[mask][v] = Choice::Merge { subset: sub };
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        // Propagate step: Dijkstra relaxation within this subset level.
        let mut heap = BinaryHeap::new();
        for (v, &d) in dp[mask].iter().enumerate() {
            if d < INF {
                heap.push(HeapItem(d, NodeId(v as u32)));
            }
        }
        while let Some(HeapItem(d, node)) = heap.pop() {
            if d > dp[mask][node.index()] + 1e-12 {
                continue;
            }
            for (edge, next) in graph.neighbors(node) {
                let nd = d + graph.edge_cost(edge).max(0.0);
                if nd < dp[mask][next.index()] - 1e-12 {
                    dp[mask][next.index()] = nd;
                    choice[mask][next.index()] = Choice::Extend { from: node, edge };
                    heap.push(HeapItem(nd, next));
                }
            }
        }
    }

    // Best meeting node for the full terminal set.
    let (best_v, best_cost) = (0..n)
        .map(|v| (v, dp[full][v]))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())?;
    if !best_cost.is_finite() {
        return None;
    }

    // Reconstruct the edge set.
    let mut edges: HashSet<EdgeId> = HashSet::new();
    let mut stack = vec![(full, best_v)];
    while let Some((mask, v)) = stack.pop() {
        match choice[mask][v] {
            Choice::Root | Choice::None => {}
            Choice::Extend { from, edge } => {
                edges.insert(edge);
                stack.push((mask, from.index()));
            }
            Choice::Merge { subset } => {
                stack.push((subset, v));
                stack.push((mask ^ subset, v));
            }
        }
    }
    Some(SteinerTree::from_edges(graph, edges, terminals))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small explicit graph for testing the algorithms in isolation.
    struct TestGraph {
        edges: Vec<(NodeId, NodeId, f64)>,
        n: usize,
    }

    impl TestGraph {
        fn new(n: usize, edges: &[(u32, u32, f64)]) -> Self {
            TestGraph {
                n,
                edges: edges
                    .iter()
                    .map(|(a, b, c)| (NodeId(*a), NodeId(*b), *c))
                    .collect(),
            }
        }
    }

    impl GraphView for TestGraph {
        fn node_count(&self) -> usize {
            self.n
        }
        fn neighbors(&self, node: NodeId) -> Vec<(EdgeId, NodeId)> {
            self.edges
                .iter()
                .enumerate()
                .filter_map(|(i, (a, b, _))| {
                    if *a == node {
                        Some((EdgeId(i as u32), *b))
                    } else if *b == node {
                        Some((EdgeId(i as u32), *a))
                    } else {
                        None
                    }
                })
                .collect()
        }
        fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
            let (a, b, _) = self.edges[edge.index()];
            (a, b)
        }
        fn edge_cost(&self, edge: EdgeId) -> f64 {
            self.edges[edge.index()].2
        }
    }

    /// Path graph 0-1-2-3 plus a shortcut 0-3.
    fn path_with_shortcut() -> TestGraph {
        TestGraph::new(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 2.5)])
    }

    #[test]
    fn exact_two_terminals_is_shortest_path() {
        let g = path_with_shortcut();
        let tree = exact_minimum_steiner(&g, &[NodeId(0), NodeId(3)]).unwrap();
        // Shortcut (2.5) is cheaper than path (3.0)? No: path costs 3.0,
        // shortcut 2.5, so the tree should be the shortcut edge.
        assert!((tree.cost - 2.5).abs() < 1e-9);
        assert_eq!(tree.edges, vec![EdgeId(3)]);
    }

    #[test]
    fn exact_star_steiner_uses_internal_node() {
        // Star: center 0 connected to terminals 1, 2, 3.
        let g = TestGraph::new(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (1, 2, 5.0)]);
        let tree = exact_minimum_steiner(&g, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert!((tree.cost - 3.0).abs() < 1e-9);
        assert_eq!(tree.edges.len(), 3);
        assert!(tree.nodes.contains(&NodeId(0)));
    }

    #[test]
    fn exact_single_terminal_is_trivial() {
        let g = path_with_shortcut();
        let tree = exact_minimum_steiner(&g, &[NodeId(2)]).unwrap();
        assert_eq!(tree.cost, 0.0);
        assert!(tree.edges.is_empty());
    }

    #[test]
    fn exact_disconnected_terminals_return_none() {
        let g = TestGraph::new(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(exact_minimum_steiner(&g, &[NodeId(0), NodeId(3)]).is_none());
    }

    #[test]
    fn approx_finds_optimal_on_small_graphs() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(!trees.is_empty());
        assert!((trees[0].cost - 2.5).abs() < 1e-9);
        // Trees are sorted by cost.
        for w in trees.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }

    #[test]
    fn approx_returns_multiple_distinct_trees() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(trees.len() >= 2);
        assert_ne!(trees[0].edges, trees[1].edges);
    }

    #[test]
    fn approx_respects_k() {
        let g = path_with_shortcut();
        let trees = approx_top_k(
            &g,
            &[NodeId(0), NodeId(3)],
            &SteinerConfig { k: 1, max_roots: 0 },
        );
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn approx_handles_unreachable_terminals() {
        let g = TestGraph::new(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(trees.is_empty());
    }

    #[test]
    fn approx_matches_exact_cost_on_star() {
        let g = TestGraph::new(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.5),
                (2, 3, 1.5),
                (1, 4, 0.5),
            ],
        );
        let terminals = [NodeId(1), NodeId(2), NodeId(3)];
        let exact = exact_minimum_steiner(&g, &terminals).unwrap();
        let approx = &approx_top_k(&g, &terminals, &SteinerConfig::default())[0];
        assert!(approx.cost >= exact.cost - 1e-9);
        // On this small instance the heuristic should find the optimum.
        assert!((approx.cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn symmetric_loss_counts_edge_differences() {
        let a = SteinerTree {
            edges: vec![EdgeId(0), EdgeId(1)],
            nodes: vec![],
            cost: 0.0,
        };
        let b = SteinerTree {
            edges: vec![EdgeId(1), EdgeId(2), EdgeId(3)],
            nodes: vec![],
            cost: 0.0,
        };
        assert_eq!(a.symmetric_loss(&b), 3.0);
        assert_eq!(a.symmetric_loss(&a), 0.0);
        assert_eq!(b.symmetric_loss(&a), 3.0);
    }

    #[test]
    fn contains_edge_uses_sorted_lookup() {
        let t = SteinerTree {
            edges: vec![EdgeId(1), EdgeId(4), EdgeId(9)],
            nodes: vec![],
            cost: 0.0,
        };
        assert!(t.contains_edge(EdgeId(4)));
        assert!(!t.contains_edge(EdgeId(5)));
    }

    #[test]
    fn tree_nodes_cover_terminals_and_path_nodes() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::default());
        let best = &trees[0];
        assert!(best.nodes.contains(&NodeId(0)));
        assert!(best.nodes.contains(&NodeId(2)));
        // Path 0-1-2 costs 2.0 which beats 0-3-2 (2.5+1.0).
        assert!((best.cost - 2.0).abs() < 1e-9);
        assert!(best.nodes.contains(&NodeId(1)));
    }
}
