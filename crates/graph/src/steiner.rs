//! Top-k Steiner tree search over the query graph (Section 2.2).
//!
//! Every tree whose leaves cover all keyword nodes represents a candidate
//! join query; Q ranks them by total edge cost and keeps the `k` cheapest.
//! The paper uses an exact algorithm at small scales and an approximation at
//! larger scales. We provide both:
//!
//! * [`exact_minimum_steiner`] — the Dreyfus–Wagner dynamic program over
//!   terminal subsets, returning a provably minimum-cost Steiner tree.
//! * [`approx_top_k`] — a BANKS/STAR-style heuristic that grows candidate
//!   trees by unioning shortest paths from every candidate root to each
//!   terminal, then prunes and ranks them. This is what the Q pipeline uses
//!   at query time and what the learner uses for its K-best list.
//!
//! # Miss hot path layout
//!
//! The approximation inverts the naive root×terminal expansion: it runs one
//! *backward* Dijkstra per keyword terminal (terminals ≪ roots) and reuses
//! those `m` shortest-path trees across **every** candidate root — a root's
//! candidate tree is just the union of its `m` stored parent walks. The
//! per-terminal searches run on an [`IndexedHeap`] (4-ary, in-place
//! decrease-key, `f64::total_cmp` ordering) over generation-stamped
//! `ShortestPaths` scratch, so starting the next search is O(1) — no
//! `O(n)` distance-array reset, no lazy-deletion churn. Candidate trees are
//! deduplicated allocation-free by a 128-bit fingerprint of the sorted edge
//! list: a repeated raw union is dropped before the MST/leaf-strip pruning
//! even runs, and distinct unions that prune to the same tree are caught by
//! a second fingerprint afterwards.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::edge::EdgeId;
use crate::heap::IndexedHeap;
use crate::node::NodeId;

/// Read-only adjacency/cost view shared by [`SearchGraph`](crate::SearchGraph)
/// and [`QueryGraph`](crate::QueryGraph), so the Steiner algorithms work over
/// either.
///
/// `neighbors` returns a *borrowed slice* — implementors keep a packed
/// adjacency index (see [`Csr`](crate::Csr)) so the search loops below never
/// allocate per visited node.
pub trait GraphView {
    /// Number of nodes (node ids are dense in `0..node_count`).
    fn node_count(&self) -> usize;
    /// Incident edges of a node, with the opposite endpoint.
    fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)];
    /// Endpoints of an edge.
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId);
    /// Non-negative cost of an edge under the current weights.
    fn edge_cost(&self, edge: EdgeId) -> f64;
}

/// A Steiner tree: a set of edges connecting all terminals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteinerTree {
    /// Edges of the tree, sorted by id.
    pub edges: Vec<EdgeId>,
    /// Nodes touched by the tree (including isolated single-terminal case).
    pub nodes: Vec<NodeId>,
    /// Total cost (sum of distinct edge costs).
    pub cost: f64,
}

impl SteinerTree {
    /// Build from a sorted, deduplicated edge list.
    fn from_edges<G: GraphView>(graph: &G, edges: Vec<EdgeId>, terminals: &[NodeId]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]));
        let mut nodes: Vec<NodeId> = terminals.to_vec();
        let mut cost = 0.0;
        for e in &edges {
            let (a, b) = graph.edge_endpoints(*e);
            nodes.push(a);
            nodes.push(b);
            cost += graph.edge_cost(*e);
        }
        nodes.sort();
        nodes.dedup();
        SteinerTree { edges, nodes, cost }
    }

    /// Symmetric edge-set difference with another tree — the loss function
    /// `L(T, T')` of Equation 2. Both edge lists are sorted (a `SteinerTree`
    /// invariant), so this is a linear merge: no per-call set building,
    /// which matters because the MIRA constraint builder calls it once per
    /// candidate tree on every feedback interaction.
    pub fn symmetric_loss(&self, other: &SteinerTree) -> f64 {
        debug_assert!(self.edges.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(other.edges.windows(2).all(|w| w[0] < w[1]));
        let (mut i, mut j, mut diff) = (0, 0, 0usize);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => {
                    diff += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        (diff + (self.edges.len() - i) + (other.edges.len() - j)) as f64
    }

    /// True if the tree uses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }
}

/// Configuration of the approximate top-k search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteinerConfig {
    /// Number of trees to return.
    pub k: usize,
    /// Maximum number of candidate roots to expand (0 = consider every
    /// reachable node). Limiting roots bounds work on large graphs.
    pub max_roots: usize,
    /// Cost budget: trees costing more than this are dropped before the
    /// top-k cutoff (`f64::INFINITY` = no budget). Serving requests use this
    /// to refuse expensive join trees outright instead of ranking them.
    pub max_cost: f64,
}

impl Default for SteinerConfig {
    fn default() -> Self {
        SteinerConfig {
            k: 10,
            max_roots: 0,
            max_cost: f64::INFINITY,
        }
    }
}

/// Observability counters filled by one [`approx_top_k_detailed`] run — the
/// per-query search provenance the serving layer reports alongside answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteinerStats {
    /// Terminals the search had to connect.
    pub terminals: usize,
    /// Candidate roots expanded (nodes reachable from every terminal, after
    /// the `max_roots` cutoff).
    pub roots_considered: usize,
    /// Candidate trees generated before edge-set deduplication.
    pub candidates_generated: usize,
    /// Candidates discarded as duplicates of an earlier tree's edge set.
    pub duplicates_pruned: usize,
    /// Distinct trees dropped for exceeding [`SteinerConfig::max_cost`].
    pub trees_over_budget: usize,
    /// Trees surviving dedup, budget and the top-k cutoff.
    pub trees_returned: usize,
}

/// Sentinel marking "no predecessor" in the dense parent arrays.
const NO_PARENT: EdgeId = EdgeId(u32::MAX);

/// Dense single-source shortest-path state: distance and predecessor
/// `(edge, node)` per graph node, indexed by node id.
///
/// Entries are generation-stamped: starting a new search is a counter bump
/// (`begin`), not an `O(n)` re-fill of three arrays, and a slot's contents
/// are only meaningful while its stamp matches the current generation.
#[derive(Debug, Clone, Default)]
struct ShortestPaths {
    dist: Vec<f64>,
    parent_edge: Vec<EdgeId>,
    parent_node: Vec<NodeId>,
    stamp: Vec<u32>,
    generation: u32,
}

impl ShortestPaths {
    /// Start a fresh search over `n` nodes. O(1) except when the buffers
    /// grow to a larger graph than any seen before.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent_edge.resize(n, NO_PARENT);
            self.parent_node.resize(n, NodeId(0));
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Distance of a node in the current search (∞ if unreached).
    #[inline]
    fn dist(&self, node: usize) -> f64 {
        if self.stamp[node] == self.generation {
            self.dist[node]
        } else {
            f64::INFINITY
        }
    }

    /// Predecessor edge of a node (`NO_PARENT` for the source or unreached).
    #[inline]
    fn parent_edge(&self, node: usize) -> EdgeId {
        if self.stamp[node] == self.generation {
            self.parent_edge[node]
        } else {
            NO_PARENT
        }
    }

    #[inline]
    fn parent_node(&self, node: usize) -> NodeId {
        self.parent_node[node]
    }

    /// Record a settled or improved node.
    #[inline]
    fn visit(&mut self, node: usize, dist: f64, parent_edge: EdgeId, parent_node: NodeId) {
        self.dist[node] = dist;
        self.parent_edge[node] = parent_edge;
        self.parent_node[node] = parent_node;
        self.stamp[node] = self.generation;
    }
}

/// Reusable scratch buffers for [`approx_top_k`]: the per-terminal
/// shortest-path arrays, the indexed Dijkstra frontier, the per-root
/// candidate edge list and the two fingerprint dedup sets. One instance
/// serves any number of searches over graphs of any size (buffers grow to
/// the largest graph seen and are then reused) — batch workers keep one per
/// thread via [`approx_top_k_with`].
#[derive(Debug, Clone, Default)]
pub struct SteinerScratch {
    paths: Vec<ShortestPaths>,
    heap: IndexedHeap,
    /// Extra frontiers for [`approx_top_k_detailed_fanned`]: worker `i > 0`
    /// drives its per-terminal searches on `heap_pool[i - 1]` while worker 0
    /// keeps using `heap`. Grown on demand, reused across queries.
    heap_pool: Vec<IndexedHeap>,
    candidate_edges: Vec<EdgeId>,
    seen_raw: HashSet<u128>,
    seen_trees: HashSet<u128>,
}

/// 128-bit fingerprint of a sorted edge list (two independent FNV-1a lanes).
/// Dedup keys on this instead of cloning the edge list into a
/// `HashSet<Vec<EdgeId>>`: no allocation per candidate, and a collision
/// needs both 64-bit lanes to collide at once.
#[inline]
fn edge_fingerprint(edges: &[EdgeId]) -> u128 {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    for e in edges {
        let x = u64::from(e.0);
        h1 = (h1 ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        h2 = (h2 ^ x.rotate_left(17)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    }
    (u128::from(h1) << 64) | u128::from(h2)
}

/// Single-source Dijkstra into dense, generation-stamped buffers on the
/// indexed heap. With in-place decrease-key every popped entry is settled —
/// there is no stale-entry branch in the loop.
fn dijkstra_into<G: GraphView>(
    graph: &G,
    source: NodeId,
    paths: &mut ShortestPaths,
    heap: &mut IndexedHeap,
) {
    paths.begin(graph.node_count());
    heap.reset(graph.node_count());
    paths.visit(source.index(), 0.0, NO_PARENT, source);
    heap.push(0.0, source.0);
    while let Some((d, node)) = heap.pop() {
        for &(edge, next) in graph.neighbors(NodeId(node)) {
            let nd = d + graph.edge_cost(edge).max(0.0);
            if nd < paths.dist(next.index()) - 1e-12 {
                paths.visit(next.index(), nd, edge, NodeId(node));
                heap.push(nd, next.0);
            }
        }
    }
}

/// Approximate top-k Steiner trees connecting `terminals`.
///
/// For every candidate root the union of shortest paths from the root to
/// each terminal forms a candidate tree; candidates are pruned to proper
/// trees, deduplicated by edge set and ranked by cost.
pub fn approx_top_k<G: GraphView>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
) -> Vec<SteinerTree> {
    approx_top_k_with(graph, terminals, config, &mut SteinerScratch::default())
}

/// [`approx_top_k`] with caller-provided scratch buffers, for hot loops that
/// run many searches (the batched query path, the learner's K-best).
pub fn approx_top_k_with<G: GraphView>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
    scratch: &mut SteinerScratch,
) -> Vec<SteinerTree> {
    approx_top_k_detailed(graph, terminals, config, scratch).0
}

/// [`approx_top_k_with`], additionally reporting [`SteinerStats`] about the
/// search — how many roots were expanded, how many candidates were pruned as
/// duplicates or dropped over the cost budget. The serving layer surfaces
/// these stats as per-query provenance.
pub fn approx_top_k_detailed<G: GraphView>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
    scratch: &mut SteinerScratch,
) -> (Vec<SteinerTree>, SteinerStats) {
    let mut stats = SteinerStats {
        terminals: terminals.len(),
        ..SteinerStats::default()
    };
    if terminals.is_empty() || config.k == 0 {
        return (Vec::new(), stats);
    }
    if terminals.len() == 1 {
        stats.trees_returned = 1;
        return (
            vec![SteinerTree {
                edges: Vec::new(),
                nodes: vec![terminals[0]],
                cost: 0.0,
            }],
            stats,
        );
    }

    // One backward Dijkstra per terminal, into reused stamped buffers. The
    // m resulting shortest-path trees are shared by every candidate root
    // below — this is the terminal-inversion that keeps a miss O(m · search)
    // instead of O(roots · search).
    while scratch.paths.len() < terminals.len() {
        scratch.paths.push(ShortestPaths::default());
    }
    for (i, t) in terminals.iter().enumerate() {
        let paths = &mut scratch.paths[i];
        dijkstra_into(graph, *t, paths, &mut scratch.heap);
    }
    rank_candidate_trees(graph, terminals, config, scratch, stats)
}

/// [`approx_top_k_detailed`] with the independent per-terminal backward
/// Dijkstras fanned across `workers` threads (the sharded-search miss path
/// uses the batch worker pool size here). Each worker owns a contiguous
/// chunk of the per-terminal path buffers and its own [`IndexedHeap`]; the
/// search results per terminal do not depend on which thread ran them, and
/// every stage after the Dijkstras is shared with the sequential entry
/// point, so the returned trees are byte-identical for any worker count
/// (pinned by `tests/shard_equivalence.rs`).
pub fn approx_top_k_detailed_fanned<G: GraphView + Sync>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
    scratch: &mut SteinerScratch,
    workers: usize,
) -> (Vec<SteinerTree>, SteinerStats) {
    let workers = workers.clamp(1, terminals.len().max(1));
    if workers <= 1 || config.k == 0 || terminals.len() < 2 {
        return approx_top_k_detailed(graph, terminals, config, scratch);
    }
    let stats = SteinerStats {
        terminals: terminals.len(),
        ..SteinerStats::default()
    };
    while scratch.paths.len() < terminals.len() {
        scratch.paths.push(ShortestPaths::default());
    }
    while scratch.heap_pool.len() + 1 < workers {
        scratch.heap_pool.push(IndexedHeap::default());
    }
    let chunk = terminals.len().div_ceil(workers);
    {
        let paths = &mut scratch.paths[..terminals.len()];
        let heaps = std::iter::once(&mut scratch.heap).chain(scratch.heap_pool.iter_mut());
        std::thread::scope(|s| {
            for ((t_chunk, p_chunk), heap) in terminals
                .chunks(chunk)
                .zip(paths.chunks_mut(chunk))
                .zip(heaps)
            {
                s.spawn(move || {
                    for (t, p) in t_chunk.iter().zip(p_chunk.iter_mut()) {
                        dijkstra_into(graph, *t, p, heap);
                    }
                });
            }
        });
    }
    rank_candidate_trees(graph, terminals, config, scratch, stats)
}

/// The shared tail of the approximate search: given per-terminal shortest
/// paths already computed into `scratch.paths[..terminals.len()]`, collect
/// candidate roots, union their parent walks, dedup, prune and rank. This is
/// a pure function of the path buffers, which is what makes the fanned and
/// sequential Dijkstra phases interchangeable.
fn rank_candidate_trees<G: GraphView>(
    graph: &G,
    terminals: &[NodeId],
    config: &SteinerConfig,
    scratch: &mut SteinerScratch,
    mut stats: SteinerStats,
) -> (Vec<SteinerTree>, SteinerStats) {
    let per_terminal = &scratch.paths[..terminals.len()];

    // Candidate roots: nodes reachable from every terminal.
    let mut roots: Vec<(NodeId, f64)> = Vec::new();
    'outer: for n in 0..graph.node_count() {
        let mut total = 0.0;
        for paths in per_terminal {
            let d = paths.dist(n);
            if !d.is_finite() {
                continue 'outer;
            }
            total += d;
        }
        roots.push((NodeId(n as u32), total));
    }
    roots.sort_by(|a, b| a.1.total_cmp(&b.1));
    if config.max_roots > 0 {
        roots.truncate(config.max_roots);
    }

    stats.roots_considered = roots.len();

    scratch.seen_raw.clear();
    scratch.seen_trees.clear();
    let mut trees: Vec<SteinerTree> = Vec::new();
    for (root, _) in roots {
        let edges = &mut scratch.candidate_edges;
        edges.clear();
        for paths in per_terminal {
            // Walk from the root back towards the terminal.
            let mut cur = root;
            while paths.parent_edge(cur.index()) != NO_PARENT {
                edges.push(paths.parent_edge(cur.index()));
                cur = paths.parent_node(cur.index());
            }
        }
        edges.sort_unstable();
        edges.dedup();
        stats.candidates_generated += 1;
        // Roots whose path union was already produced yield the same pruned
        // tree (pruning is a pure function of the edge set): drop them
        // before paying for the MST + leaf-strip.
        if !scratch.seen_raw.insert(edge_fingerprint(edges)) {
            stats.duplicates_pruned += 1;
            continue;
        }
        let pruned = prune_to_tree(graph, edges, terminals);
        // Distinct unions can still prune to the same tree.
        if !scratch.seen_trees.insert(edge_fingerprint(&pruned)) {
            stats.duplicates_pruned += 1;
            continue;
        }
        trees.push(SteinerTree::from_edges(graph, pruned, terminals));
    }
    trees.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    if config.max_cost.is_finite() {
        let before = trees.len();
        trees.retain(|t| t.cost <= config.max_cost + 1e-9);
        stats.trees_over_budget = before - trees.len();
    }
    trees.truncate(config.k);
    stats.trees_returned = trees.len();
    (trees, stats)
}

/// Prune a candidate edge set (sorted, deduplicated) down to a tree that
/// still connects the terminals: build a minimum spanning forest of the
/// subgraph, then repeatedly strip non-terminal leaves. Returns a sorted
/// edge list. Works over node ids compacted to the candidate subgraph, so
/// the union-find and degree arrays are small dense vectors.
fn prune_to_tree<G: GraphView>(graph: &G, edges: &[EdgeId], terminals: &[NodeId]) -> Vec<EdgeId> {
    if edges.is_empty() {
        return Vec::new();
    }
    // Compact the touched nodes to local indices.
    let mut local_nodes: Vec<NodeId> = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        let (a, b) = graph.edge_endpoints(*e);
        local_nodes.push(a);
        local_nodes.push(b);
    }
    local_nodes.sort();
    local_nodes.dedup();
    let local = |n: NodeId| local_nodes.binary_search(&n).expect("touched node");

    // Kruskal MST over the candidate edges (connects everything the
    // candidate set connects, with minimum cost, and removes cycles). Cost
    // ties break by edge id so the result is independent of input order.
    let mut by_cost: Vec<EdgeId> = edges.to_vec();
    by_cost.sort_by(|a, b| {
        graph
            .edge_cost(*a)
            .total_cmp(&graph.edge_cost(*b))
            .then(a.cmp(b))
    });
    let mut uf: Vec<u32> = (0..local_nodes.len() as u32).collect();
    fn find(uf: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while uf[root as usize] != root {
            root = uf[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while uf[cur as usize] != root {
            let next = uf[cur as usize];
            uf[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut mst: Vec<EdgeId> = Vec::with_capacity(local_nodes.len());
    for e in by_cost {
        let (a, b) = graph.edge_endpoints(e);
        let ra = find(&mut uf, local(a) as u32);
        let rb = find(&mut uf, local(b) as u32);
        if ra != rb {
            uf[ra as usize] = rb;
            mst.push(e);
        }
    }

    // Strip non-terminal leaves until fixpoint.
    let mut is_terminal = vec![false; local_nodes.len()];
    for t in terminals {
        if let Ok(i) = local_nodes.binary_search(t) {
            is_terminal[i] = true;
        }
    }
    let mut alive = vec![true; mst.len()];
    let mut degree = vec![0u32; local_nodes.len()];
    loop {
        degree.iter_mut().for_each(|d| *d = 0);
        for (i, e) in mst.iter().enumerate() {
            if alive[i] {
                let (a, b) = graph.edge_endpoints(*e);
                degree[local(a)] += 1;
                degree[local(b)] += 1;
            }
        }
        let mut removed_any = false;
        for (i, e) in mst.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let (a, b) = graph.edge_endpoints(*e);
            let (la, lb) = (local(a), local(b));
            if (degree[la] == 1 && !is_terminal[la]) || (degree[lb] == 1 && !is_terminal[lb]) {
                alive[i] = false;
                removed_any = true;
            }
        }
        if !removed_any {
            break;
        }
    }
    let mut kept: Vec<EdgeId> = mst
        .into_iter()
        .zip(alive)
        .filter_map(|(e, keep)| keep.then_some(e))
        .collect();
    kept.sort();
    kept
}

/// Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.
///
/// Returns `None` when the terminals cannot all be connected. Falls back to
/// the approximation when there are more than 12 terminals (the DP is
/// exponential in the number of terminals).
pub fn exact_minimum_steiner<G: GraphView>(graph: &G, terminals: &[NodeId]) -> Option<SteinerTree> {
    if terminals.is_empty() {
        return None;
    }
    if terminals.len() == 1 {
        return Some(SteinerTree {
            edges: Vec::new(),
            nodes: vec![terminals[0]],
            cost: 0.0,
        });
    }
    if terminals.len() > 12 {
        let config = SteinerConfig {
            k: 1,
            ..SteinerConfig::default()
        };
        return approx_top_k(graph, terminals, &config).into_iter().next();
    }

    let n = graph.node_count();
    let t = terminals.len();
    let full = (1usize << t) - 1;
    const INF: f64 = f64::INFINITY;

    #[derive(Clone, Copy, Debug)]
    enum Choice {
        /// Terminal itself: the empty tree.
        Root,
        /// Extend from a neighbouring node along an edge (same subset).
        Extend { from: NodeId, edge: EdgeId },
        /// Merge two disjoint subsets at this node.
        Merge { subset: usize },
        /// Unreached.
        None,
    }

    let mut heap = IndexedHeap::new();
    let mut dp = vec![vec![INF; n]; full + 1];
    let mut choice = vec![vec![Choice::None; n]; full + 1];

    for (i, term) in terminals.iter().enumerate() {
        dp[1 << i][term.index()] = 0.0;
        choice[1 << i][term.index()] = Choice::Root;
    }

    for mask in 1..=full {
        // Merge step: combine proper sub-subsets meeting at v.
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask ^ sub;
            if sub < other {
                // Each unordered pair considered once.
                for v in 0..n {
                    if dp[sub][v] < INF && dp[other][v] < INF {
                        let c = dp[sub][v] + dp[other][v];
                        if c < dp[mask][v] - 1e-12 {
                            dp[mask][v] = c;
                            choice[mask][v] = Choice::Merge { subset: sub };
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        // Propagate step: Dijkstra relaxation within this subset level, on
        // the same indexed heap the serving search uses.
        heap.reset(n);
        for (v, &d) in dp[mask].iter().enumerate() {
            if d < INF {
                heap.push(d, v as u32);
            }
        }
        while let Some((d, node)) = heap.pop() {
            let node = NodeId(node);
            for &(edge, next) in graph.neighbors(node) {
                let nd = d + graph.edge_cost(edge).max(0.0);
                if nd < dp[mask][next.index()] - 1e-12 {
                    dp[mask][next.index()] = nd;
                    choice[mask][next.index()] = Choice::Extend { from: node, edge };
                    heap.push(nd, next.0);
                }
            }
        }
    }

    // Best meeting node for the full terminal set.
    let (best_v, best_cost) = (0..n)
        .map(|v| (v, dp[full][v]))
        .min_by(|a, b| a.1.total_cmp(&b.1))?;
    if !best_cost.is_finite() {
        return None;
    }

    // Reconstruct the edge set.
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut stack = vec![(full, best_v)];
    while let Some((mask, v)) = stack.pop() {
        match choice[mask][v] {
            Choice::Root | Choice::None => {}
            Choice::Extend { from, edge } => {
                edges.push(edge);
                stack.push((mask, from.index()));
            }
            Choice::Merge { subset } => {
                stack.push((subset, v));
                stack.push((mask ^ subset, v));
            }
        }
    }
    edges.sort();
    edges.dedup();
    Some(SteinerTree::from_edges(graph, edges, terminals))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::csr::Csr;

    /// Small explicit graph for testing the algorithms in isolation.
    struct TestGraph {
        edges: Vec<(NodeId, NodeId, f64)>,
        n: usize,
        csr: Csr,
    }

    impl TestGraph {
        fn new(n: usize, edges: &[(u32, u32, f64)]) -> Self {
            let edges: Vec<(NodeId, NodeId, f64)> = edges
                .iter()
                .map(|(a, b, c)| (NodeId(*a), NodeId(*b), *c))
                .collect();
            let csr = Csr::build(
                n,
                edges
                    .iter()
                    .enumerate()
                    .map(|(i, (a, b, _))| (EdgeId(i as u32), *a, *b)),
            );
            TestGraph { edges, n, csr }
        }
    }

    impl GraphView for TestGraph {
        fn node_count(&self) -> usize {
            self.n
        }
        fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
            self.csr.neighbors(node)
        }
        fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
            let (a, b, _) = self.edges[edge.index()];
            (a, b)
        }
        fn edge_cost(&self, edge: EdgeId) -> f64 {
            self.edges[edge.index()].2
        }
    }

    /// Path graph 0-1-2-3 plus a shortcut 0-3.
    fn path_with_shortcut() -> TestGraph {
        TestGraph::new(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 2.5)])
    }

    #[test]
    fn exact_two_terminals_is_shortest_path() {
        let g = path_with_shortcut();
        let tree = exact_minimum_steiner(&g, &[NodeId(0), NodeId(3)]).unwrap();
        // Shortcut (2.5) is cheaper than path (3.0)? No: path costs 3.0,
        // shortcut 2.5, so the tree should be the shortcut edge.
        assert!((tree.cost - 2.5).abs() < 1e-9);
        assert_eq!(tree.edges, vec![EdgeId(3)]);
    }

    #[test]
    fn exact_star_steiner_uses_internal_node() {
        // Star: center 0 connected to terminals 1, 2, 3.
        let g = TestGraph::new(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (1, 2, 5.0)]);
        let tree = exact_minimum_steiner(&g, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert!((tree.cost - 3.0).abs() < 1e-9);
        assert_eq!(tree.edges.len(), 3);
        assert!(tree.nodes.contains(&NodeId(0)));
    }

    #[test]
    fn exact_single_terminal_is_trivial() {
        let g = path_with_shortcut();
        let tree = exact_minimum_steiner(&g, &[NodeId(2)]).unwrap();
        assert_eq!(tree.cost, 0.0);
        assert!(tree.edges.is_empty());
    }

    #[test]
    fn exact_disconnected_terminals_return_none() {
        let g = TestGraph::new(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(exact_minimum_steiner(&g, &[NodeId(0), NodeId(3)]).is_none());
    }

    #[test]
    fn approx_finds_optimal_on_small_graphs() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(!trees.is_empty());
        assert!((trees[0].cost - 2.5).abs() < 1e-9);
        // Trees are sorted by cost.
        for w in trees.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }

    #[test]
    fn approx_returns_multiple_distinct_trees() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(trees.len() >= 2);
        assert_ne!(trees[0].edges, trees[1].edges);
    }

    #[test]
    fn approx_respects_k() {
        let g = path_with_shortcut();
        let trees = approx_top_k(
            &g,
            &[NodeId(0), NodeId(3)],
            &SteinerConfig {
                k: 1,
                ..SteinerConfig::default()
            },
        );
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn cost_budget_drops_expensive_trees_and_counts_them() {
        let g = path_with_shortcut();
        // Without a budget both the shortcut (2.5) and the path (3.0) rank.
        let unbounded = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(unbounded.len() >= 2);
        // A budget between the two keeps only the shortcut.
        let config = SteinerConfig {
            max_cost: 2.6,
            ..SteinerConfig::default()
        };
        let (trees, stats) = approx_top_k_detailed(
            &g,
            &[NodeId(0), NodeId(3)],
            &config,
            &mut SteinerScratch::default(),
        );
        assert_eq!(trees.len(), 1);
        assert!((trees[0].cost - 2.5).abs() < 1e-9);
        assert!(stats.trees_over_budget >= 1);
        assert_eq!(stats.trees_returned, 1);
    }

    #[test]
    fn detailed_stats_account_for_every_candidate() {
        let g = path_with_shortcut();
        let (trees, stats) = approx_top_k_detailed(
            &g,
            &[NodeId(0), NodeId(3)],
            &SteinerConfig::default(),
            &mut SteinerScratch::default(),
        );
        assert_eq!(stats.terminals, 2);
        assert!(stats.roots_considered > 0);
        assert_eq!(
            stats.candidates_generated,
            stats.duplicates_pruned + trees.len() + stats.trees_over_budget
        );
        assert_eq!(stats.trees_returned, trees.len());
        // The plain entry point returns the same trees.
        assert_eq!(
            trees,
            approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default())
        );
    }

    #[test]
    fn approx_handles_unreachable_terminals() {
        let g = TestGraph::new(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(3)], &SteinerConfig::default());
        assert!(trees.is_empty());
    }

    #[test]
    fn approx_matches_exact_cost_on_star() {
        let g = TestGraph::new(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.5),
                (2, 3, 1.5),
                (1, 4, 0.5),
            ],
        );
        let terminals = [NodeId(1), NodeId(2), NodeId(3)];
        let exact = exact_minimum_steiner(&g, &terminals).unwrap();
        let approx = &approx_top_k(&g, &terminals, &SteinerConfig::default())[0];
        assert!(approx.cost >= exact.cost - 1e-9);
        // On this small instance the heuristic should find the optimum.
        assert!((approx.cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_graph_sizes() {
        // One scratch serving a big graph, then a small one, then the big
        // one again must give the same trees as fresh buffers every time.
        let big = TestGraph::new(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 0, 1.0),
                (0, 3, 2.0),
            ],
        );
        let small = path_with_shortcut();
        let mut scratch = SteinerScratch::default();
        let runs = [
            (
                approx_top_k_with(
                    &big,
                    &[NodeId(0), NodeId(3)],
                    &SteinerConfig::default(),
                    &mut scratch,
                ),
                approx_top_k(&big, &[NodeId(0), NodeId(3)], &SteinerConfig::default()),
            ),
            (
                approx_top_k_with(
                    &small,
                    &[NodeId(0), NodeId(2)],
                    &SteinerConfig::default(),
                    &mut scratch,
                ),
                approx_top_k(&small, &[NodeId(0), NodeId(2)], &SteinerConfig::default()),
            ),
            (
                approx_top_k_with(
                    &big,
                    &[NodeId(1), NodeId(4), NodeId(5)],
                    &SteinerConfig::default(),
                    &mut scratch,
                ),
                approx_top_k(
                    &big,
                    &[NodeId(1), NodeId(4), NodeId(5)],
                    &SteinerConfig::default(),
                ),
            ),
        ];
        for (with_scratch, fresh) in runs {
            assert_eq!(with_scratch, fresh);
        }
    }

    #[test]
    fn fanned_dijkstras_match_sequential_for_any_worker_count() {
        let g = TestGraph::new(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 0, 1.0),
                (0, 3, 2.0),
                (1, 4, 2.0),
            ],
        );
        let cases: [&[NodeId]; 4] = [
            &[NodeId(0), NodeId(3)],
            &[NodeId(1), NodeId(4), NodeId(5)],
            &[NodeId(2)],
            &[],
        ];
        let config = SteinerConfig::default();
        for terminals in cases {
            let sequential =
                approx_top_k_detailed(&g, terminals, &config, &mut SteinerScratch::default());
            for workers in [0, 1, 2, 3, 8] {
                let mut scratch = SteinerScratch::default();
                let fanned =
                    approx_top_k_detailed_fanned(&g, terminals, &config, &mut scratch, workers);
                assert_eq!(fanned, sequential, "{workers} workers diverged");
                // The same scratch keeps giving the same answer when reused.
                let again =
                    approx_top_k_detailed_fanned(&g, terminals, &config, &mut scratch, workers);
                assert_eq!(again, sequential);
            }
        }
    }

    #[test]
    fn symmetric_loss_counts_edge_differences() {
        let a = SteinerTree {
            edges: vec![EdgeId(0), EdgeId(1)],
            nodes: vec![],
            cost: 0.0,
        };
        let b = SteinerTree {
            edges: vec![EdgeId(1), EdgeId(2), EdgeId(3)],
            nodes: vec![],
            cost: 0.0,
        };
        assert_eq!(a.symmetric_loss(&b), 3.0);
        assert_eq!(a.symmetric_loss(&a), 0.0);
        assert_eq!(b.symmetric_loss(&a), 3.0);
    }

    #[test]
    fn contains_edge_uses_sorted_lookup() {
        let t = SteinerTree {
            edges: vec![EdgeId(1), EdgeId(4), EdgeId(9)],
            nodes: vec![],
            cost: 0.0,
        };
        assert!(t.contains_edge(EdgeId(4)));
        assert!(!t.contains_edge(EdgeId(5)));
    }

    #[test]
    fn tree_nodes_cover_terminals_and_path_nodes() {
        let g = path_with_shortcut();
        let trees = approx_top_k(&g, &[NodeId(0), NodeId(2)], &SteinerConfig::default());
        let best = &trees[0];
        assert!(best.nodes.contains(&NodeId(0)));
        assert!(best.nodes.contains(&NodeId(2)));
        // Path 0-1-2 costs 2.0 which beats 0-3-2 (2.5+1.0).
        assert!((best.cost - 2.0).abs() < 1e-9);
        assert!(best.nodes.contains(&NodeId(1)));
    }
}
