//! Indexed monotone priority queue for the Dijkstra hot loops.
//!
//! The Steiner search runs one backward Dijkstra per keyword terminal per
//! query miss. A `BinaryHeap` forces lazy deletion there: every improvement
//! re-pushes the node, stale entries pile up and each of them costs a pop,
//! a comparison against the distance array and a branch. [`IndexedHeap`]
//! instead keeps one live slot per node (`decrease-key` in place), so the
//! heap never holds more than `n` entries and every pop is settled work.
//!
//! Two further choices target the miss hot path specifically:
//!
//! * **4-ary layout** — children of slot `i` live at `4i + 1 ..= 4i + 4`.
//!   Sift-down does more comparisons per level but the tree is half as deep
//!   and the four children share a cache line, which wins on the shallow,
//!   high-churn heaps the search produces.
//! * **Generation-stamped slots** — `reset` is O(1): it bumps a generation
//!   counter instead of clearing the `node → slot` index, so reusing one
//!   heap across every terminal of every query costs nothing per reuse.
//!
//! Keys are ordered with [`f64::total_cmp`] (no NaN panic path, total order)
//! and ties break on the node id, so pop order — and with it every
//! downstream parent-pointer tie — is fully deterministic.

/// Indexed 4-ary min-heap over `(f64 key, u32 node)` pairs with in-place
/// decrease-key. Nodes must be dense in `0..n` (the id space of a
/// [`GraphView`](crate::steiner::GraphView)).
#[derive(Debug, Clone, Default)]
pub struct IndexedHeap {
    /// Heap-ordered parallel arrays: `keys[slot]` / `nodes[slot]`.
    keys: Vec<f64>,
    nodes: Vec<u32>,
    /// `node → slot`, valid only when `stamp[node] == generation`.
    pos: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    len: usize,
}

impl IndexedHeap {
    /// Empty heap; call [`IndexedHeap::reset`] before use.
    pub fn new() -> Self {
        IndexedHeap::default()
    }

    /// Prepare the heap for a graph of `n` nodes. O(1) amortised: buffers
    /// grow to the largest graph seen and the slot index is invalidated by a
    /// generation bump, not a clear.
    pub fn reset(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        self.len = 0;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `node` with `key`, or lower its key if it is already queued
    /// with a larger one. Monotone: a key increase is ignored (Dijkstra
    /// never needs one).
    pub fn push(&mut self, key: f64, node: u32) {
        let n = node as usize;
        if self.stamp[n] == self.generation {
            let slot = self.pos[n] as usize;
            if Self::less(key, node, self.keys[slot], self.nodes[slot]) {
                self.keys[slot] = key;
                self.sift_up(slot);
            }
            return;
        }
        let slot = self.len;
        if slot == self.keys.len() {
            self.keys.push(key);
            self.nodes.push(node);
        } else {
            self.keys[slot] = key;
            self.nodes[slot] = node;
        }
        self.stamp[n] = self.generation;
        self.pos[n] = slot as u32;
        self.len += 1;
        self.sift_up(slot);
    }

    /// Remove and return the minimum `(key, node)` entry.
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        if self.len == 0 {
            return None;
        }
        let top = (self.keys[0], self.nodes[0]);
        // Invalidate the popped node's slot (stamp ≠ generation) so a later
        // `push` of the same node re-queues it fresh instead of trying to
        // decrease-key a slot that no longer holds it.
        self.stamp[top.1 as usize] = self.generation.wrapping_sub(1);
        self.len -= 1;
        if self.len > 0 {
            self.keys[0] = self.keys[self.len];
            self.nodes[0] = self.nodes[self.len];
            self.pos[self.nodes[0] as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Total order on entries: key by `total_cmp`, ties by node id.
    #[inline]
    fn less(ka: f64, na: u32, kb: f64, nb: u32) -> bool {
        match ka.total_cmp(&kb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => na < nb,
        }
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 4;
            if !Self::less(
                self.keys[slot],
                self.nodes[slot],
                self.keys[parent],
                self.nodes[parent],
            ) {
                break;
            }
            self.swap(slot, parent);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let first_child = 4 * slot + 1;
            if first_child >= self.len {
                break;
            }
            let last_child = (first_child + 4).min(self.len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if Self::less(
                    self.keys[c],
                    self.nodes[c],
                    self.keys[best],
                    self.nodes[best],
                ) {
                    best = c;
                }
            }
            if !Self::less(
                self.keys[best],
                self.nodes[best],
                self.keys[slot],
                self.nodes[slot],
            ) {
                break;
            }
            self.swap(slot, best);
            slot = best;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.keys.swap(a, b);
        self.nodes.swap(a, b);
        self.pos[self.nodes[a] as usize] = a as u32;
        self.pos[self.nodes[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_increasing_key_order() {
        let mut h = IndexedHeap::new();
        h.reset(8);
        for (k, n) in [(3.0, 0), (1.0, 1), (2.0, 2), (0.5, 3), (2.5, 4)] {
            h.push(k, n);
        }
        let mut out = Vec::new();
        while let Some((k, n)) = h.pop() {
            out.push((k, n));
        }
        assert_eq!(out, vec![(0.5, 3), (1.0, 1), (2.0, 2), (2.5, 4), (3.0, 0)]);
        assert!(h.is_empty());
    }

    #[test]
    fn decrease_key_moves_an_entry_up() {
        let mut h = IndexedHeap::new();
        h.reset(4);
        h.push(5.0, 0);
        h.push(4.0, 1);
        h.push(3.0, 2);
        assert_eq!(h.len(), 3);
        // Lower node 0 below everything; raising it back is ignored.
        h.push(1.0, 0);
        h.push(9.0, 0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop(), Some((1.0, 0)));
        assert_eq!(h.pop(), Some((3.0, 2)));
        assert_eq!(h.pop(), Some((4.0, 1)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn equal_keys_pop_in_node_order() {
        let mut h = IndexedHeap::new();
        h.reset(8);
        for n in [5u32, 2, 7, 0] {
            h.push(1.0, n);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|(_, n)| n).collect();
        assert_eq!(order, vec![0, 2, 5, 7]);
    }

    #[test]
    fn reset_invalidates_without_clearing() {
        let mut h = IndexedHeap::new();
        h.reset(4);
        h.push(1.0, 0);
        h.push(2.0, 1);
        h.reset(4);
        assert!(h.is_empty());
        // Stale slots from the previous generation are not live entries.
        h.push(7.0, 1);
        assert_eq!(h.pop(), Some((7.0, 1)));
        assert_eq!(h.pop(), None);
        // Growing to a bigger graph works after arbitrary reuse.
        h.reset(32);
        h.push(0.25, 31);
        assert_eq!(h.pop(), Some((0.25, 31)));
    }

    #[test]
    fn popped_node_can_be_requeued_in_the_same_generation() {
        let mut h = IndexedHeap::new();
        h.reset(4);
        h.push(1.0, 2);
        assert_eq!(h.pop(), Some((1.0, 2)));
        h.push(4.0, 2);
        assert_eq!(h.pop(), Some((4.0, 2)));
    }

    #[test]
    fn random_workload_matches_a_reference_sort() {
        // Deterministic LCG workload over many resets.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut h = IndexedHeap::new();
        for round in 0..50 {
            let n = 1 + (next() as usize % 64);
            h.reset(n);
            let mut best: Vec<Option<f64>> = vec![None; n];
            for _ in 0..200 {
                let node = (next() as usize) % n;
                let key = (next() % 1000) as f64 / 7.0;
                // Mirror monotone semantics: only decreases apply.
                match best[node] {
                    Some(cur) if cur <= key => {}
                    _ => best[node] = Some(key),
                }
                h.push(key, node as u32);
            }
            let mut expected: Vec<(f64, u32)> = best
                .iter()
                .enumerate()
                .filter_map(|(n, k)| k.map(|k| (k, n as u32)))
                .collect();
            expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let got: Vec<(f64, u32)> = std::iter::from_fn(|| h.pop()).collect();
            assert_eq!(got, expected, "round {round}");
        }
    }
}
