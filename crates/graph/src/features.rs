//! Feature-based edge-cost model (Section 3.4, Equation 1).
//!
//! Every edge cost is the dot product `C(e) = w · f(e)` of a global learned
//! weight vector with the edge's sparse feature vector. The standard features
//! created for an association edge are:
//!
//! * a *default* feature shared by all edges (its weight is the uniform cost
//!   offset that keeps edge costs positive),
//! * one indicator feature per (matcher, confidence-bin) pair — the paper
//!   bins real-valued matcher confidences into empirically determined bins
//!   before feeding them to MIRA (Section 4),
//! * one indicator feature per relation touched by the edge (its weight is
//!   the negated log-authoritativeness of the relation), and
//! * one indicator feature unique to the edge itself.
//!
//! Foreign-key and keyword-match edges use the same machinery with their own
//! feature names, so the learner can adjust every cost in the graph through
//! one weight vector.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Number of confidence bins used when converting real-valued matcher
/// confidence scores into indicator features.
pub const CONFIDENCE_BINS: usize = 5;

/// Map a matcher confidence in `[0, 1]` to a bin index in
/// `0..CONFIDENCE_BINS`. Higher confidence maps to a higher bin.
pub fn bin_confidence(confidence: f64) -> usize {
    let c = confidence.clamp(0.0, 1.0);
    let b = (c * CONFIDENCE_BINS as f64).floor() as usize;
    b.min(CONFIDENCE_BINS - 1)
}

/// Identifier of a feature within a [`FeatureSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// Raw index into the weight vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interning table mapping feature names to dense [`FeatureId`]s, together
/// with the *default weight* each feature starts with before learning.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeatureSpace {
    names: Vec<String>,
    default_weights: Vec<f64>,
    by_name: HashMap<String, FeatureId>,
}

impl FeatureSpace {
    /// Create an empty feature space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a feature name, creating it with the given default weight if it
    /// does not exist yet. Returns the feature id.
    pub fn intern(&mut self, name: &str, default_weight: f64) -> FeatureId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = FeatureId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.default_weights.push(default_weight);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an existing feature id.
    pub fn get(&self, name: &str) -> Option<FeatureId> {
        self.by_name.get(name).copied()
    }

    /// Name of a feature.
    pub fn name(&self, id: FeatureId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no feature has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Build a weight vector initialised with every feature's default weight.
    pub fn default_weights(&self) -> WeightVector {
        WeightVector {
            weights: self.default_weights.clone(),
        }
    }

    /// Default weight of one feature.
    pub fn default_weight(&self, id: FeatureId) -> f64 {
        self.default_weights.get(id.index()).copied().unwrap_or(0.0)
    }

    /// All interned feature names, in id order (what a persistent snapshot
    /// stores).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All default weights, in id order.
    pub fn default_weight_slice(&self) -> &[f64] {
        &self.default_weights
    }

    /// Reassemble a feature space from its persisted columns, rebuilding the
    /// name-lookup map.
    pub fn from_parts(names: Vec<String>, default_weights: Vec<f64>) -> Self {
        debug_assert_eq!(names.len(), default_weights.len());
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FeatureId(i as u32)))
            .collect();
        FeatureSpace {
            names,
            default_weights,
            by_name,
        }
    }
}

/// Sparse feature vector attached to an edge. Kept sorted by feature id.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureVector {
    entries: Vec<(FeatureId, f64)>,
}

impl FeatureVector {
    /// Create an empty feature vector (used for fixed zero-cost edges).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add `value` to the coefficient of `feature`.
    pub fn add(&mut self, feature: FeatureId, value: f64) {
        match self.entries.binary_search_by_key(&feature, |(f, _)| *f) {
            Ok(pos) => self.entries[pos].1 += value,
            Err(pos) => self.entries.insert(pos, (feature, value)),
        }
    }

    /// Build from `(feature, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (FeatureId, f64)>>(pairs: I) -> Self {
        let mut fv = FeatureVector::empty();
        for (f, v) in pairs {
            fv.add(f, v);
        }
        fv
    }

    /// Iterate over `(feature, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries (cost is identically zero).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value of one feature (0 if absent).
    pub fn get(&self, feature: FeatureId) -> f64 {
        self.entries
            .binary_search_by_key(&feature, |(f, _)| *f)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// Dot product with a weight vector.
    pub fn dot(&self, weights: &WeightVector) -> f64 {
        self.entries.iter().map(|(f, v)| weights.get(*f) * v).sum()
    }

    /// `self += other` (used to accumulate Φ(T) = Σ_{e ∈ T} f(e)).
    pub fn add_assign(&mut self, other: &FeatureVector) {
        for (f, v) in other.iter() {
            self.add(f, v);
        }
    }

    /// `self -= other` (used for constraint direction Φ(T) − Φ(T_r)).
    pub fn sub_assign(&mut self, other: &FeatureVector) {
        for (f, v) in other.iter() {
            self.add(f, -v);
        }
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v * v).sum()
    }
}

/// Dense learned weight vector indexed by [`FeatureId`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightVector {
    weights: Vec<f64>,
}

impl WeightVector {
    /// All-zero weight vector sized for a feature space.
    pub fn zeros(space: &FeatureSpace) -> Self {
        WeightVector {
            weights: vec![0.0; space.len()],
        }
    }

    /// Wrap a raw weight array (what a persistent snapshot stores).
    pub fn from_raw(weights: Vec<f64>) -> Self {
        WeightVector { weights }
    }

    /// The raw weight array, in feature-id order.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of a feature, 0 if the vector has not grown to cover it yet.
    #[inline]
    pub fn get(&self, feature: FeatureId) -> f64 {
        self.weights.get(feature.index()).copied().unwrap_or(0.0)
    }

    /// Set the weight of a feature, growing the vector as needed.
    pub fn set(&mut self, feature: FeatureId, value: f64) {
        if feature.index() >= self.weights.len() {
            self.weights.resize(feature.index() + 1, 0.0);
        }
        self.weights[feature.index()] = value;
    }

    /// Add `delta * direction` to the weights (a MIRA update step).
    pub fn add_scaled(&mut self, direction: &FeatureVector, delta: f64) {
        for (f, v) in direction.iter() {
            let current = self.get(f);
            self.set(f, current + delta * v);
        }
    }

    /// Number of weights stored.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if no weights are stored.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Ensure the vector covers all features of a space (new features get
    /// their default weight).
    pub fn sync_with(&mut self, space: &FeatureSpace) {
        while self.weights.len() < space.len() {
            let id = FeatureId(self.weights.len() as u32);
            self.weights.push(space.default_weight(id));
        }
    }

    /// The *weight delta* between two pricings: every feature whose weight
    /// differs, with implicit zero padding for the shorter vector. This is
    /// what a MIRA re-pricing surfaces to the serving layer — cached answers
    /// touching none of these features are provably unaffected by the
    /// update.
    pub fn changed_features(&self, before: &WeightVector) -> Vec<FeatureId> {
        let longest = self.weights.len().max(before.weights.len());
        (0..longest)
            .map(|i| FeatureId(i as u32))
            .filter(|id| self.get(*id) != before.get(*id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_covers_unit_interval() {
        assert_eq!(bin_confidence(0.0), 0);
        assert_eq!(bin_confidence(0.19), 0);
        assert_eq!(bin_confidence(0.2), 1);
        assert_eq!(bin_confidence(0.55), 2);
        assert_eq!(bin_confidence(0.99), 4);
        assert_eq!(bin_confidence(1.0), 4);
        assert_eq!(bin_confidence(7.0), 4);
        assert_eq!(bin_confidence(-1.0), 0);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut space = FeatureSpace::new();
        let a = space.intern("default", 1.0);
        let b = space.intern("default", 2.0);
        assert_eq!(a, b);
        assert_eq!(space.len(), 1);
        assert_eq!(space.default_weight(a), 1.0);
        assert_eq!(space.name(a), Some("default"));
    }

    #[test]
    fn feature_vector_dot_product() {
        let mut space = FeatureSpace::new();
        let d = space.intern("default", 1.0);
        let m = space.intern("matcher:mad:bin4", 0.2);
        let fv = FeatureVector::from_pairs([(d, 1.0), (m, 1.0)]);
        let w = space.default_weights();
        assert!((fv.dot(&w) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_accumulates_duplicates() {
        let mut fv = FeatureVector::empty();
        fv.add(FeatureId(3), 1.0);
        fv.add(FeatureId(3), 2.0);
        assert_eq!(fv.get(FeatureId(3)), 3.0);
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn add_and_sub_assign_compose() {
        let a = FeatureVector::from_pairs([(FeatureId(0), 1.0), (FeatureId(2), 2.0)]);
        let b = FeatureVector::from_pairs([(FeatureId(2), 1.0), (FeatureId(5), 3.0)]);
        let mut phi = FeatureVector::empty();
        phi.add_assign(&a);
        phi.add_assign(&b);
        assert_eq!(phi.get(FeatureId(2)), 3.0);
        phi.sub_assign(&a);
        assert_eq!(phi.get(FeatureId(0)), 0.0);
        assert_eq!(phi.get(FeatureId(2)), 1.0);
        assert_eq!(phi.get(FeatureId(5)), 3.0);
    }

    #[test]
    fn weight_vector_updates_grow_on_demand() {
        let mut w = WeightVector::default();
        w.set(FeatureId(4), 2.5);
        assert_eq!(w.get(FeatureId(4)), 2.5);
        assert_eq!(w.get(FeatureId(2)), 0.0);
        let dir = FeatureVector::from_pairs([(FeatureId(4), 1.0), (FeatureId(6), -1.0)]);
        w.add_scaled(&dir, 2.0);
        assert_eq!(w.get(FeatureId(4)), 4.5);
        assert_eq!(w.get(FeatureId(6)), -2.0);
    }

    #[test]
    fn sync_with_fills_defaults_for_new_features() {
        let mut space = FeatureSpace::new();
        let a = space.intern("a", 1.0);
        let mut w = space.default_weights();
        let b = space.intern("b", 0.7);
        w.sync_with(&space);
        assert_eq!(w.get(a), 1.0);
        assert_eq!(w.get(b), 0.7);
    }

    #[test]
    fn empty_feature_vector_costs_zero() {
        let space = FeatureSpace::new();
        let w = space.default_weights();
        assert_eq!(FeatureVector::empty().dot(&w), 0.0);
    }
}
