//! Compressed-sparse-row adjacency index.
//!
//! The Steiner search visits every node's incident edges many times per
//! query (once per terminal Dijkstra, again per candidate root, again in the
//! Dreyfus–Wagner relaxation). The original adjacency representation — a
//! `Vec<EdgeId>` per node, with the opposite endpoint recomputed per visit —
//! allocated a fresh `Vec<(EdgeId, NodeId)>` on every call. [`Csr`] packs
//! the same information into two flat arrays (prefix-sum offsets and
//! `(edge, neighbour)` targets) so a node's neighbourhood is a borrowed
//! slice: no allocation, one cache line per small node, and a layout the
//! hot loops can iterate without pointer chasing.

use serde::{Deserialize, Serialize};

use crate::edge::EdgeId;
use crate::node::NodeId;

/// Packed adjacency: `targets[offsets[n]..offsets[n + 1]]` holds the
/// `(incident edge, opposite endpoint)` pairs of node `n`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<(EdgeId, NodeId)>,
}

impl Csr {
    /// Empty index over zero nodes.
    pub fn new() -> Self {
        Csr::default()
    }

    /// Reassemble an index from its raw arrays (what a persistent snapshot
    /// stores — see `q-snap`). The caller is responsible for `offsets` being
    /// a prefix sum ending at `targets.len()`.
    pub fn from_parts(offsets: Vec<u32>, targets: Vec<(EdgeId, NodeId)>) -> Self {
        debug_assert!(offsets.last().copied().unwrap_or(0) as usize == targets.len());
        Csr { offsets, targets }
    }

    /// The raw prefix-sum offset array (one entry per node plus a trailing
    /// total).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw packed target array.
    pub fn targets(&self) -> &[(EdgeId, NodeId)] {
        &self.targets
    }

    /// Build the index from an edge list. Self-loops contribute a single
    /// adjacency entry (matching the list-of-lists representation this
    /// replaces); every other edge appears in both endpoints' ranges.
    pub fn build<I>(node_count: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (EdgeId, NodeId, NodeId)> + Clone,
    {
        let mut degrees = vec![0u32; node_count];
        for (_, a, b) in edges.clone() {
            degrees[a.index()] += 1;
            if a != b {
                degrees[b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut total = 0u32;
        offsets.push(0);
        for d in &degrees {
            total += d;
            offsets.push(total);
        }
        // Fill targets using a per-node write cursor that starts at the
        // node's offset and advances as its entries land.
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![(EdgeId(0), NodeId(0)); total as usize];
        for (e, a, b) in edges {
            targets[cursor[a.index()] as usize] = (e, b);
            cursor[a.index()] += 1;
            if a != b {
                targets[cursor[b.index()] as usize] = (e, a);
                cursor[b.index()] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Incident `(edge, opposite endpoint)` pairs of a node, in insertion
    /// order. Nodes beyond the indexed range (e.g. interned after the last
    /// rebuild, necessarily isolated) have an empty neighbourhood.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        let n = node.index();
        if n + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of adjacency entries (≈ 2 × edge count).
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// Heap footprint of the packed arrays in bytes (offsets plus targets).
    /// The sharded snapshot accounting sums these per shard and surfaces
    /// them as `/metrics` gauges.
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<(EdgeId, NodeId)>()
    }

    /// Degree of one node under this index (0 when out of range).
    #[inline]
    fn degree(&self, node: usize) -> u32 {
        if node + 1 >= self.offsets.len() {
            return 0;
        }
        self.offsets[node + 1] - self.offsets[node]
    }
}

/// A growth overlay over a packed [`Csr`]: nodes and edges added since the
/// base index was built, buffered until the next publish.
///
/// Live ingestion incorporates a new source while readers keep serving from
/// the previous packed index. The writer records the source's nodes and
/// edges in a `CsrDelta` and calls [`CsrDelta::merge`] once at publish time,
/// which produces a fresh packed `Csr` using the same prefix-sum machinery
/// as [`Csr::build`] — but copying the base index's already-packed ranges
/// instead of re-walking every historical edge. The merged index is
/// byte-identical to a from-scratch pack of the full edge list (pinned by
/// the `csr_delta_merge_equals_scratch_pack` property test), so downstream
/// tie-breaking — which leans on adjacency order — cannot tell delta-grown
/// graphs from rebuilt ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrDelta {
    /// Node count after the growth (≥ the base index's).
    node_count: usize,
    /// Edges added since the base was packed, in insertion (id) order.
    edges: Vec<(EdgeId, NodeId, NodeId)>,
}

impl CsrDelta {
    /// Empty delta over a base index covering `base_node_count` nodes.
    pub fn new(base_node_count: usize) -> Self {
        CsrDelta {
            node_count: base_node_count,
            edges: Vec::new(),
        }
    }

    /// Record that the graph now has `count` nodes (newly interned nodes are
    /// appended, so the count only grows).
    pub fn grow_nodes(&mut self, count: usize) {
        self.node_count = self.node_count.max(count);
    }

    /// Record one added edge. Edges must arrive in ascending id order (the
    /// order the graph assigns them) so the merged adjacency preserves the
    /// global insertion order.
    pub fn add_edge(&mut self, edge: EdgeId, a: NodeId, b: NodeId) {
        debug_assert!(
            self.edges.last().is_none_or(|(last, _, _)| *last < edge),
            "delta edges must be recorded in ascending id order"
        );
        self.grow_nodes(a.index().max(b.index()) + 1);
        self.edges.push((edge, a, b));
    }

    /// True when nothing was added since the base was packed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of buffered edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node count the merged index will cover.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Merge the delta into a fresh packed index.
    ///
    /// Per node the merged range is the base range followed by the delta
    /// entries in insertion order; because delta edge ids are strictly
    /// greater than every base edge id, that concatenation *is* global edge
    /// order — exactly what `Csr::build` over the full list produces.
    pub fn merge(&self, base: &Csr) -> Csr {
        let node_count = self.node_count.max(base.node_count());
        // Prefix-sum pass: base degrees plus delta degrees.
        let mut degrees = vec![0u32; node_count];
        for (n, d) in degrees.iter_mut().enumerate() {
            *d = base.degree(n);
        }
        for (_, a, b) in &self.edges {
            degrees[a.index()] += 1;
            if a != b {
                degrees[b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut total = 0u32;
        offsets.push(0);
        for d in &degrees {
            total += d;
            offsets.push(total);
        }
        // Fill pass: bulk-copy each node's packed base range, then append
        // the delta entries behind it via the per-node cursor.
        let mut targets = vec![(EdgeId(0), NodeId(0)); total as usize];
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        for (n, slot) in cursor.iter_mut().enumerate().take(base.node_count()) {
            let range = base.neighbors(NodeId(n as u32));
            let at = *slot as usize;
            targets[at..at + range.len()].copy_from_slice(range);
            *slot += range.len() as u32;
        }
        for (e, a, b) in &self.edges {
            targets[cursor[a.index()] as usize] = (*e, *b);
            cursor[a.index()] += 1;
            if a != b {
                targets[cursor[b.index()] as usize] = (*e, *a);
                cursor[b.index()] += 1;
            }
        }
        Csr { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -e0- 1 -e1- 2, plus chord 0 -e2- 2 and self-loop e3 at 1.
        Csr::build(
            4,
            [
                (EdgeId(0), NodeId(0), NodeId(1)),
                (EdgeId(1), NodeId(1), NodeId(2)),
                (EdgeId(2), NodeId(0), NodeId(2)),
                (EdgeId(3), NodeId(1), NodeId(1)),
            ],
        )
    }

    #[test]
    fn neighbors_list_both_directions() {
        let csr = sample();
        assert_eq!(
            csr.neighbors(NodeId(0)),
            &[(EdgeId(0), NodeId(1)), (EdgeId(2), NodeId(2))]
        );
        assert_eq!(
            csr.neighbors(NodeId(2)),
            &[(EdgeId(1), NodeId(1)), (EdgeId(2), NodeId(0))]
        );
    }

    #[test]
    fn self_loop_appears_once() {
        let csr = sample();
        let at_1: Vec<_> = csr
            .neighbors(NodeId(1))
            .iter()
            .filter(|(e, _)| *e == EdgeId(3))
            .collect();
        assert_eq!(at_1.len(), 1);
        assert_eq!(at_1[0].1, NodeId(1));
    }

    #[test]
    fn isolated_and_out_of_range_nodes_are_empty() {
        let csr = sample();
        assert!(csr.neighbors(NodeId(3)).is_empty());
        assert!(csr.neighbors(NodeId(99)).is_empty());
        assert!(Csr::new().neighbors(NodeId(0)).is_empty());
    }

    #[test]
    fn counts_match_the_edge_list() {
        let csr = sample();
        assert_eq!(csr.node_count(), 4);
        // 3 ordinary edges × 2 entries + 1 self-loop × 1 entry.
        assert_eq!(csr.entry_count(), 7);
    }

    #[test]
    fn delta_merge_equals_scratch_pack() {
        let base_edges = [
            (EdgeId(0), NodeId(0), NodeId(1)),
            (EdgeId(1), NodeId(1), NodeId(2)),
        ];
        let base = Csr::build(3, base_edges);
        // Growth: two new nodes, a bridge into the old range, an internal
        // edge and a self-loop.
        let mut delta = CsrDelta::new(base.node_count());
        delta.grow_nodes(5);
        delta.add_edge(EdgeId(2), NodeId(0), NodeId(3));
        delta.add_edge(EdgeId(3), NodeId(3), NodeId(4));
        delta.add_edge(EdgeId(4), NodeId(4), NodeId(4));
        assert_eq!(delta.edge_count(), 3);
        assert!(!delta.is_empty());

        let merged = delta.merge(&base);
        let scratch = Csr::build(
            5,
            base_edges.into_iter().chain([
                (EdgeId(2), NodeId(0), NodeId(3)),
                (EdgeId(3), NodeId(3), NodeId(4)),
                (EdgeId(4), NodeId(4), NodeId(4)),
            ]),
        );
        assert_eq!(merged, scratch);
    }

    #[test]
    fn empty_delta_merge_is_identity() {
        let base = sample();
        let delta = CsrDelta::new(base.node_count());
        assert!(delta.is_empty());
        assert_eq!(delta.merge(&base), base);
    }

    #[test]
    fn delta_merge_onto_empty_base_is_a_plain_build() {
        let mut delta = CsrDelta::new(0);
        delta.add_edge(EdgeId(0), NodeId(0), NodeId(2));
        delta.add_edge(EdgeId(1), NodeId(1), NodeId(2));
        let merged = delta.merge(&Csr::new());
        assert_eq!(
            merged,
            Csr::build(
                3,
                [
                    (EdgeId(0), NodeId(0), NodeId(2)),
                    (EdgeId(1), NodeId(1), NodeId(2)),
                ]
            )
        );
        assert_eq!(merged.node_count(), 3);
    }

    #[test]
    fn delta_merge_with_isolated_new_nodes_keeps_them_empty() {
        let base = sample();
        let mut delta = CsrDelta::new(base.node_count());
        delta.grow_nodes(6);
        let merged = delta.merge(&base);
        assert_eq!(merged.node_count(), 6);
        assert!(merged.neighbors(NodeId(4)).is_empty());
        assert!(merged.neighbors(NodeId(5)).is_empty());
        // Old ranges are untouched.
        assert_eq!(merged.neighbors(NodeId(0)), base.neighbors(NodeId(0)));
    }
}
