//! Compressed-sparse-row adjacency index.
//!
//! The Steiner search visits every node's incident edges many times per
//! query (once per terminal Dijkstra, again per candidate root, again in the
//! Dreyfus–Wagner relaxation). The original adjacency representation — a
//! `Vec<EdgeId>` per node, with the opposite endpoint recomputed per visit —
//! allocated a fresh `Vec<(EdgeId, NodeId)>` on every call. [`Csr`] packs
//! the same information into two flat arrays (prefix-sum offsets and
//! `(edge, neighbour)` targets) so a node's neighbourhood is a borrowed
//! slice: no allocation, one cache line per small node, and a layout the
//! hot loops can iterate without pointer chasing.

use serde::{Deserialize, Serialize};

use crate::edge::EdgeId;
use crate::node::NodeId;

/// Packed adjacency: `targets[offsets[n]..offsets[n + 1]]` holds the
/// `(incident edge, opposite endpoint)` pairs of node `n`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<(EdgeId, NodeId)>,
}

impl Csr {
    /// Empty index over zero nodes.
    pub fn new() -> Self {
        Csr::default()
    }

    /// Build the index from an edge list. Self-loops contribute a single
    /// adjacency entry (matching the list-of-lists representation this
    /// replaces); every other edge appears in both endpoints' ranges.
    pub fn build<I>(node_count: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (EdgeId, NodeId, NodeId)> + Clone,
    {
        let mut degrees = vec![0u32; node_count];
        for (_, a, b) in edges.clone() {
            degrees[a.index()] += 1;
            if a != b {
                degrees[b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut total = 0u32;
        offsets.push(0);
        for d in &degrees {
            total += d;
            offsets.push(total);
        }
        // Fill targets using a per-node write cursor that starts at the
        // node's offset and advances as its entries land.
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![(EdgeId(0), NodeId(0)); total as usize];
        for (e, a, b) in edges {
            targets[cursor[a.index()] as usize] = (e, b);
            cursor[a.index()] += 1;
            if a != b {
                targets[cursor[b.index()] as usize] = (e, a);
                cursor[b.index()] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Incident `(edge, opposite endpoint)` pairs of a node, in insertion
    /// order. Nodes beyond the indexed range (e.g. interned after the last
    /// rebuild, necessarily isolated) have an empty neighbourhood.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        let n = node.index();
        if n + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of adjacency entries (≈ 2 × edge count).
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -e0- 1 -e1- 2, plus chord 0 -e2- 2 and self-loop e3 at 1.
        Csr::build(
            4,
            [
                (EdgeId(0), NodeId(0), NodeId(1)),
                (EdgeId(1), NodeId(1), NodeId(2)),
                (EdgeId(2), NodeId(0), NodeId(2)),
                (EdgeId(3), NodeId(1), NodeId(1)),
            ],
        )
    }

    #[test]
    fn neighbors_list_both_directions() {
        let csr = sample();
        assert_eq!(
            csr.neighbors(NodeId(0)),
            &[(EdgeId(0), NodeId(1)), (EdgeId(2), NodeId(2))]
        );
        assert_eq!(
            csr.neighbors(NodeId(2)),
            &[(EdgeId(1), NodeId(1)), (EdgeId(2), NodeId(0))]
        );
    }

    #[test]
    fn self_loop_appears_once() {
        let csr = sample();
        let at_1: Vec<_> = csr
            .neighbors(NodeId(1))
            .iter()
            .filter(|(e, _)| *e == EdgeId(3))
            .collect();
        assert_eq!(at_1.len(), 1);
        assert_eq!(at_1[0].1, NodeId(1));
    }

    #[test]
    fn isolated_and_out_of_range_nodes_are_empty() {
        let csr = sample();
        assert!(csr.neighbors(NodeId(3)).is_empty());
        assert!(csr.neighbors(NodeId(99)).is_empty());
        assert!(Csr::new().neighbors(NodeId(0)).is_empty());
    }

    #[test]
    fn counts_match_the_edge_list() {
        let csr = sample();
        assert_eq!(csr.node_count(), 4);
        // 3 ordinary edges × 2 entries + 1 self-loop × 1 entry.
        assert_eq!(csr.entry_count(), 7);
    }
}
