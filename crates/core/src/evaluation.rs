//! Evaluation machinery for the Section 5.2 experiments: precision / recall
//! of the search graph's association edges against a gold standard, PR curves
//! under a sweeping cost or confidence threshold, gold vs non-gold average
//! edge costs, and the simulated-feedback target selection.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use q_graph::{EdgeKind, SearchGraph};
use q_matchers::AttributeAlignment;
use q_storage::AttributeId;

use crate::answer::RankedView;

/// Canonical (smaller id first) attribute pair.
pub type AttrPair = (AttributeId, AttributeId);

fn canonical(a: AttributeId, b: AttributeId) -> AttrPair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// The threshold that produced this point (edge-cost ceiling or
    /// confidence floor depending on the curve).
    pub threshold: f64,
    /// Recall against the gold standard.
    pub recall: f64,
    /// Precision of the predicted edges.
    pub precision: f64,
}

/// Average association-edge costs split by gold membership (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EdgeCostSummary {
    /// Mean cost of association edges that are in the gold standard.
    pub gold_mean: f64,
    /// Mean cost of association edges that are not.
    pub non_gold_mean: f64,
    /// Number of gold association edges present in the graph.
    pub gold_edges: usize,
    /// Number of non-gold association edges present in the graph.
    pub non_gold_edges: usize,
}

/// Compute precision / recall / F-measure from predicted and gold pair sets.
pub fn precision_recall(
    predicted: &HashSet<AttrPair>,
    gold: &HashSet<AttrPair>,
) -> (f64, f64, f64) {
    if predicted.is_empty() || gold.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let hits = predicted.intersection(gold).count() as f64;
    let precision = hits / predicted.len() as f64;
    let recall = hits / gold.len() as f64;
    let f = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f)
}

/// Predicted pairs from a set of matcher alignments: the top-`top_y`
/// candidates per new attribute with confidence at or above `min_confidence`.
pub fn predicted_from_alignments(
    alignments: &[AttributeAlignment],
    top_y: usize,
    min_confidence: f64,
) -> HashSet<AttrPair> {
    let mut per_attr: HashMap<AttributeId, Vec<&AttributeAlignment>> = HashMap::new();
    for a in alignments {
        per_attr.entry(a.new_attribute).or_default().push(a);
    }
    let mut predicted = HashSet::new();
    for (_, mut list) in per_attr {
        list.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(a.existing_attribute.cmp(&b.existing_attribute))
        });
        for a in list.into_iter().take(top_y) {
            if a.confidence >= min_confidence {
                predicted.insert(canonical(a.new_attribute, a.existing_attribute));
            }
        }
    }
    predicted
}

/// Precision / recall / F of matcher alignments against the gold standard
/// (Table 1 rows).
pub fn precision_recall_alignments(
    alignments: &[AttributeAlignment],
    gold: &HashSet<AttrPair>,
    top_y: usize,
    min_confidence: f64,
) -> (f64, f64, f64) {
    let predicted = predicted_from_alignments(alignments, top_y, min_confidence);
    precision_recall(&predicted, gold)
}

/// Predicted pairs from the search graph: for each attribute its `top_y`
/// cheapest incident association edges whose cost is at most
/// `cost_threshold`.
pub fn predicted_from_graph(
    graph: &SearchGraph,
    top_y: usize,
    cost_threshold: f64,
) -> HashSet<AttrPair> {
    let mut per_attr: HashMap<AttributeId, Vec<(f64, AttrPair)>> = HashMap::new();
    for (edge, a, b) in graph.association_edges() {
        let cost = graph.edge_cost(edge);
        if cost > cost_threshold {
            continue;
        }
        let pair = canonical(a, b);
        per_attr.entry(a).or_default().push((cost, pair));
        per_attr.entry(b).or_default().push((cost, pair));
    }
    let mut predicted = HashSet::new();
    for (_, mut edges) in per_attr {
        edges.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        for (_, pair) in edges.into_iter().take(top_y) {
            predicted.insert(pair);
        }
    }
    predicted
}

/// Precision / recall / F of the search graph's association edges against the
/// gold standard, under a cost threshold.
pub fn precision_recall_graph(
    graph: &SearchGraph,
    gold: &HashSet<AttrPair>,
    top_y: usize,
    cost_threshold: f64,
) -> (f64, f64, f64) {
    precision_recall(&predicted_from_graph(graph, top_y, cost_threshold), gold)
}

/// PR curve over the graph's association edges, sweeping the cost threshold
/// across the observed edge-cost range (Figures 10 and 11).
pub fn pr_curve_from_graph(
    graph: &SearchGraph,
    gold: &HashSet<AttrPair>,
    top_y: usize,
) -> Vec<PrPoint> {
    let mut costs: Vec<f64> = graph
        .association_edges()
        .map(|(e, _, _)| graph.edge_cost(e))
        .collect();
    costs.sort_by(|a, b| a.total_cmp(b));
    costs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    costs
        .into_iter()
        .map(|threshold| {
            let (precision, recall, _) = precision_recall_graph(graph, gold, top_y, threshold);
            PrPoint {
                threshold,
                recall,
                precision,
            }
        })
        .collect()
}

/// PR curve over raw matcher alignments, sweeping the confidence floor
/// (the COMA++ / MAD curves of Figure 10).
pub fn pr_curve_from_alignments(
    alignments: &[AttributeAlignment],
    gold: &HashSet<AttrPair>,
    top_y: usize,
) -> Vec<PrPoint> {
    let mut confidences: Vec<f64> = alignments.iter().map(|a| a.confidence).collect();
    confidences.sort_by(|a, b| b.total_cmp(a));
    confidences.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    confidences
        .into_iter()
        .map(|threshold| {
            let (precision, recall, _) =
                precision_recall_alignments(alignments, gold, top_y, threshold);
            PrPoint {
                threshold,
                recall,
                precision,
            }
        })
        .collect()
}

/// Average cost of gold vs non-gold association edges (Figure 12).
pub fn average_edge_costs(graph: &SearchGraph, gold: &HashSet<AttrPair>) -> EdgeCostSummary {
    let mut summary = EdgeCostSummary::default();
    let mut gold_total = 0.0;
    let mut non_gold_total = 0.0;
    for (edge, a, b) in graph.association_edges() {
        let cost = graph.edge_cost(edge);
        if gold.contains(&canonical(a, b)) {
            summary.gold_edges += 1;
            gold_total += cost;
        } else {
            summary.non_gold_edges += 1;
            non_gold_total += cost;
        }
    }
    if summary.gold_edges > 0 {
        summary.gold_mean = gold_total / summary.gold_edges as f64;
    }
    if summary.non_gold_edges > 0 {
        summary.non_gold_mean = non_gold_total / summary.non_gold_edges as f64;
    }
    summary
}

/// Association-edge pairs used by one ranked query of a view.
fn association_pairs_of_query(
    view: &RankedView,
    graph: &SearchGraph,
    query_index: usize,
) -> Vec<AttrPair> {
    let Some(query) = view.queries.get(query_index) else {
        return Vec::new();
    };
    let mut pairs = Vec::new();
    for edge_id in &query.tree.edges {
        if edge_id.index() >= graph.edge_count() {
            continue; // query-local keyword/value edge
        }
        let edge = graph.edge(*edge_id);
        if edge.kind != EdgeKind::Association {
            continue;
        }
        let a = graph.node(edge.a).as_attribute();
        let b = graph.node(edge.b).as_attribute();
        if let (Some(a), Some(b)) = (a, b) {
            pairs.push(canonical(a, b));
        }
    }
    pairs
}

/// Simulated domain-expert feedback: pick the ranked query that only uses
/// gold association edges (Section 5.2's feedback generation). Queries that
/// traverse at least one gold edge and no non-gold edge are preferred;
/// otherwise any query using no non-gold association edge qualifies.
pub fn gold_target_query(
    view: &RankedView,
    graph: &SearchGraph,
    gold: &HashSet<AttrPair>,
) -> Option<usize> {
    let mut fallback = None;
    for idx in 0..view.queries.len() {
        let pairs = association_pairs_of_query(view, graph, idx);
        let all_gold = pairs.iter().all(|p| gold.contains(p));
        if !all_gold {
            continue;
        }
        if !pairs.is_empty() {
            return Some(idx);
        }
        if fallback.is_none() {
            fallback = Some(idx);
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> AttrPair {
        canonical(AttributeId(a), AttributeId(b))
    }

    #[test]
    fn precision_recall_basics() {
        let gold: HashSet<AttrPair> = [pair(0, 1), pair(2, 3)].into_iter().collect();
        let predicted: HashSet<AttrPair> = [pair(0, 1), pair(4, 5)].into_iter().collect();
        let (p, r, f) = precision_recall(&predicted, &gold);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(precision_recall(&HashSet::new(), &gold), (0.0, 0.0, 0.0));
    }

    #[test]
    fn predicted_from_alignments_respects_top_y_and_threshold() {
        let alignments = vec![
            AttributeAlignment::new(AttributeId(0), AttributeId(10), 0.9),
            AttributeAlignment::new(AttributeId(0), AttributeId(11), 0.8),
            AttributeAlignment::new(AttributeId(0), AttributeId(12), 0.7),
            AttributeAlignment::new(AttributeId(1), AttributeId(13), 0.2),
        ];
        let y1 = predicted_from_alignments(&alignments, 1, 0.0);
        assert_eq!(y1.len(), 2);
        assert!(y1.contains(&pair(0, 10)));
        let y2_thresh = predicted_from_alignments(&alignments, 2, 0.75);
        assert_eq!(y2_thresh.len(), 2); // 0.9, 0.8 survive; 0.2 filtered
        assert!(!y2_thresh.contains(&pair(1, 13)));
    }

    #[test]
    fn pr_curve_from_alignments_is_monotone_in_recall() {
        let gold: HashSet<AttrPair> = [pair(0, 10), pair(1, 11)].into_iter().collect();
        let alignments = vec![
            AttributeAlignment::new(AttributeId(0), AttributeId(10), 0.9),
            AttributeAlignment::new(AttributeId(1), AttributeId(11), 0.6),
            AttributeAlignment::new(AttributeId(2), AttributeId(12), 0.5),
        ];
        let curve = pr_curve_from_alignments(&alignments, &gold, 1);
        assert_eq!(curve.len(), 3);
        // As the confidence floor drops, recall cannot decrease.
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall - 1e-12);
        }
        // At the loosest threshold both gold pairs are found.
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
    }
}
