//! Fluent, validating construction of a [`QSystem`].
//!
//! [`QSystem::builder`] replaces the old `QSystem::new` +
//! mutate-before-first-query dance (`new`, then `add_matcher`, then hope the
//! config was sane) with one validated build step:
//!
//! ```no_run
//! # fn demo(catalog: q_storage::Catalog) -> Result<(), q_core::QError> {
//! use q_core::{QConfig, QSystem};
//! use q_matchers::{MadMatcher, MetadataMatcher};
//!
//! let mut q = QSystem::builder()
//!     .catalog(catalog)
//!     .config(QConfig::default())
//!     .matcher(Box::new(MetadataMatcher::new()))
//!     .matcher(Box::new(MadMatcher::new()))
//!     .build()?;
//! # let _ = &mut q;
//! # Ok(())
//! # }
//! ```
//!
//! `build()` rejects configurations that would make the system unusable —
//! `top_k == 0`, an empty catalog, a non-positive minimum edge cost — with a
//! structured [`QError::InvalidBuild`] instead of panicking or silently
//! serving empty views later.

use q_matchers::SchemaMatcher;
use q_storage::{Catalog, SourceSpec};

use crate::cache::DEFAULT_CACHE_CAPACITY;
use crate::config::QConfig;
use crate::error::QError;
use crate::system::QSystem;

/// Builder returned by [`QSystem::builder`]; see the module docs.
pub struct QSystemBuilder {
    catalog: Catalog,
    config: QConfig,
    matchers: Vec<Box<dyn SchemaMatcher + Send + Sync>>,
    sources: Vec<SourceSpec>,
    cache_capacity: usize,
}

impl Default for QSystemBuilder {
    fn default() -> Self {
        QSystemBuilder {
            catalog: Catalog::new(),
            config: QConfig::default(),
            matchers: Vec::new(),
            sources: Vec::new(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl QSystem {
    /// Start building a Q system; see [`QSystemBuilder`].
    pub fn builder() -> QSystemBuilder {
        QSystemBuilder::default()
    }
}

impl QSystemBuilder {
    /// Use an already-loaded catalog as the initial federation. Combines
    /// with [`QSystemBuilder::source`]: sources are loaded into this catalog
    /// at `build()` time.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Replace the default [`QConfig`].
    pub fn config(mut self, config: QConfig) -> Self {
        self.config = config;
        self
    }

    /// Register a schema matcher. Matchers are consulted in registration
    /// order when new sources arrive. May be called repeatedly.
    pub fn matcher(mut self, matcher: Box<dyn SchemaMatcher + Send + Sync>) -> Self {
        self.matchers.push(matcher);
        self
    }

    /// Add a source specification to the initial catalog. Loaded at
    /// `build()` time, before the search graph and indexes are constructed —
    /// equivalent to including it in the loaded catalog, not to
    /// [`QSystem::register_source`] (no matchers run). May be called
    /// repeatedly.
    pub fn source(mut self, spec: SourceSpec) -> Self {
        self.sources.push(spec);
        self
    }

    /// Bound the answer cache at `capacity` views (clamped to at least 1).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Validate the configuration, load any pending sources, and construct
    /// the system (search graph, keyword index and value index are built
    /// here, exactly as `QSystem::new` does).
    pub fn build(self) -> Result<QSystem, QError> {
        let QSystemBuilder {
            mut catalog,
            config,
            matchers,
            sources,
            cache_capacity,
        } = self;

        if config.top_k == 0 {
            return Err(QError::InvalidBuild {
                field: "top_k",
                reason: "must be at least 1 (no ranked queries could ever be kept)".into(),
            });
        }
        if config.top_y == 0 {
            return Err(QError::InvalidBuild {
                field: "top_y",
                reason: "must be at least 1 (no candidate alignments could ever be kept)".into(),
            });
        }
        if config.max_answers == 0 {
            return Err(QError::InvalidBuild {
                field: "max_answers",
                reason: "must be at least 1 (views could never materialise a row)".into(),
            });
        }
        if config.min_edge_cost.is_nan() || config.min_edge_cost <= 0.0 {
            return Err(QError::InvalidBuild {
                field: "min_edge_cost",
                reason: format!(
                    "must be positive to keep Steiner search well-defined, got {}",
                    config.min_edge_cost
                ),
            });
        }

        for spec in &sources {
            spec.load_into(&mut catalog)
                .map_err(|source| QError::SourceLoad {
                    source_name: spec.name.clone(),
                    source,
                })?;
        }
        if catalog.relations().is_empty() {
            return Err(QError::InvalidBuild {
                field: "catalog",
                reason: "is empty — provide a catalog or at least one source".into(),
            });
        }

        let mut system = QSystem::new(catalog, config);
        system.set_cache_capacity(cache_capacity);
        for matcher in matchers {
            system.add_matcher(matcher);
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_matchers::{MadMatcher, MetadataMatcher};
    use q_storage::RelationSpec;

    fn go_spec() -> SourceSpec {
        SourceSpec::new("go").relation(
            RelationSpec::new("go_term", &["acc", "name"])
                .row(["GO:1", "plasma membrane"])
                .row(["GO:2", "kinase activity"]),
        )
    }

    #[test]
    fn builder_constructs_a_working_system_from_sources() {
        let mut q = QSystem::builder()
            .source(go_spec())
            .matcher(Box::new(MetadataMatcher::new()))
            .matcher(Box::new(MadMatcher::new()))
            .cache_capacity(8)
            .build()
            .expect("valid configuration builds");
        assert_eq!(q.query_cache().capacity(), 8);
        let view_id = q.create_view(&["plasma membrane", "acc"]).unwrap();
        assert!(!q.view(view_id).unwrap().answers.is_empty());
    }

    #[test]
    fn builder_matches_the_manual_construction_path() {
        let catalog = q_storage::loader::load_catalog(&[go_spec()]).unwrap();
        let built = QSystem::builder().catalog(catalog.clone()).build().unwrap();
        let manual = QSystem::new(catalog, QConfig::default());
        // Same graph and the same answers for the same query.
        assert_eq!(built.graph().node_count(), manual.graph().node_count());
        assert_eq!(built.graph().edge_count(), manual.graph().edge_count());
        let request = crate::QueryRequest::new(["plasma membrane"]);
        let mut built = built;
        let mut manual = manual;
        assert_eq!(
            &*built.query(&request).unwrap().view,
            &*manual.query(&request).unwrap().view
        );
    }

    #[test]
    fn build_rejects_unusable_configurations() {
        let zero_k = QSystem::builder()
            .source(go_spec())
            .config(QConfig {
                top_k: 0,
                ..QConfig::default()
            })
            .build()
            .err()
            .expect("top_k == 0 must be rejected");
        assert!(matches!(
            zero_k,
            QError::InvalidBuild { field: "top_k", .. }
        ));

        let bad_cost = QSystem::builder()
            .source(go_spec())
            .config(QConfig {
                min_edge_cost: 0.0,
                ..QConfig::default()
            })
            .build()
            .err()
            .expect("non-positive min_edge_cost must be rejected");
        assert!(matches!(
            bad_cost,
            QError::InvalidBuild {
                field: "min_edge_cost",
                ..
            }
        ));

        let empty = QSystem::builder()
            .build()
            .err()
            .expect("an empty catalog must be rejected");
        assert!(matches!(
            empty,
            QError::InvalidBuild {
                field: "catalog",
                ..
            }
        ));
    }

    #[test]
    fn build_surfaces_source_load_failures_with_context() {
        let err = QSystem::builder()
            .source(go_spec())
            .source(go_spec()) // duplicate source name
            .build()
            .err()
            .expect("duplicate source must fail to load");
        match err {
            QError::SourceLoad {
                source_name,
                source,
            } => {
                assert_eq!(source_name, "go");
                assert!(matches!(
                    source,
                    q_storage::StorageError::DuplicateSource(_)
                ));
            }
            other => panic!("expected SourceLoad, got {other:?}"),
        }
    }
}
