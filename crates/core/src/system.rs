//! The `QSystem` façade: view creation, source registration, feedback and
//! the typed, cached, batched query-serving path.
//!
//! Serving goes through the typed request/response API:
//! [`QSystem::query`] answers one [`QueryRequest`], [`QSystem::query_batch`]
//! answers a workload of them, and [`QSystem::query_shared`] is the `&self`
//! path for cache-bypassing callers behind a shared reference; all return
//! [`QueryOutcome`]s carrying the ranked view plus serving provenance.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use q_align::{
    AlignerConfig, AlignmentStats, ExhaustiveAligner, PreferentialAligner, ViewBasedAligner,
};
use q_graph::keyword::MatchTarget;
use q_graph::{
    approx_top_k, approx_top_k_detailed_fanned, exact_minimum_steiner, KeywordIndex, KeywordMatch,
    NodeId, QueryGraph, SearchGraph, ShardSet, SteinerConfig, SteinerScratch, SteinerStats,
};
use q_learn::{constraints_from_candidates, enforce_positive_costs, Mira};
use q_matchers::{AttributeAlignment, SchemaMatcher};
use q_storage::{AttributeId, Catalog, SourceId, SourceSpec, ValueIndex};

use crate::answer::{RankedQuery, RankedView, ViewId};
use crate::cache::{
    normalize_keywords, CostTerm, QueryCache, QueryKey, RevalidationModel, TreeCostModel,
};
use crate::config::{AlignmentStrategy, QConfig};
use crate::error::QError;
use crate::feedback::{Feedback, FeedbackOutcome, FeedbackRequest, FeedbackTarget};
use crate::request::{CachePolicy, CacheStatus, QueryOutcome, QueryRequest, SearchStrategy};
use crate::translate::{materialize_view, tree_to_query};

/// Report returned by [`QSystem::register_source`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistrationReport {
    /// Id assigned to the new source.
    pub source: SourceId,
    /// Alignments added to the search graph, merged across matchers.
    pub alignments: Vec<AttributeAlignment>,
    /// Per-matcher alignment-cost statistics (matcher name, stats).
    pub stats_per_matcher: Vec<(String, AlignmentStats)>,
    /// Views refreshed after incorporating the source.
    pub refreshed_views: Vec<ViewId>,
}

/// Options for [`QSystem::query_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOptions {
    /// Worker threads answering cache misses. `0` (the default) uses the
    /// machine's available parallelism. Results are deterministic regardless
    /// of the value — workers only change wall-clock time.
    pub workers: usize,
}

impl BatchOptions {
    /// Resolve the configured worker count against `pending` computations:
    /// `0` expands to the machine's available parallelism, the result is
    /// capped at `pending` (no idle workers) and clamped to at least 1 (a
    /// request for zero workers is a configuration mistake, not a reason to
    /// hang or panic).
    pub fn effective_workers(&self, pending: usize) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            w => w,
        }
        .min(pending)
        .max(1)
    }
}

/// Outcome of [`QSystem::query_batch`]: one [`QueryOutcome`] (or error) per
/// request, in request order, plus batch-level cache accounting.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, in the order the requests were given. A request
    /// that fails validation gets its error here without affecting the rest
    /// of the batch.
    pub outcomes: Vec<Result<QueryOutcome, QError>>,
    /// Requests served without a fresh computation: cache hits as the batch
    /// started, plus duplicates of an earlier in-batch request (answered
    /// once, shared).
    pub cache_hits: usize,
    /// Distinct computations the batch performed.
    pub cache_misses: usize,
    /// Worker threads actually used.
    pub workers: usize,
}

/// The Q data-integration system (Figure 1 of the paper).
pub struct QSystem {
    catalog: Catalog,
    graph: SearchGraph,
    keyword_index: KeywordIndex,
    value_index: ValueIndex,
    config: QConfig,
    matchers: Vec<Box<dyn SchemaMatcher + Send + Sync>>,
    views: Vec<RankedView>,
    mira: Mira,
    cache: QueryCache,
    /// Steiner scratch reused across sequential cache misses (batch workers
    /// carry their own, one per thread) — the generation-stamped buffers
    /// make starting the next search O(1), so they must not be rebuilt per
    /// query.
    scratch: SteinerScratch,
    /// Shard structure over the current catalog/graph/index. Topology
    /// mutators (`register_source`, `add_manual_association`,
    /// `add_alignments`) rebuild it eagerly before returning, so readers
    /// normally never pay for a rebuild; the serving paths still refresh
    /// lazily as a backstop (e.g. after direct `graph_mut` manipulation).
    /// Sharding never changes answers — see [`q_graph::shard`] — so
    /// staleness is a freshness concern, not a correctness one.
    shards: Option<ShardSet>,
}

impl QSystem {
    /// Build a Q system over an existing catalog. The initial search graph,
    /// keyword index and value index are constructed immediately
    /// (Section 2.1). No matchers are registered yet.
    pub fn new(catalog: Catalog, config: QConfig) -> Self {
        let graph = SearchGraph::from_catalog(&catalog);
        let keyword_index = KeywordIndex::build(&catalog);
        let value_index = ValueIndex::build(&catalog);
        QSystem {
            catalog,
            graph,
            keyword_index,
            value_index,
            config,
            matchers: Vec::new(),
            views: Vec::new(),
            mira: Mira::new(),
            cache: QueryCache::default(),
            scratch: SteinerScratch::default(),
            shards: None,
        }
    }

    /// Register a schema matcher (e.g. the metadata matcher or MAD). Matchers
    /// are consulted in registration order when new sources arrive.
    pub fn add_matcher(&mut self, matcher: Box<dyn SchemaMatcher + Send + Sync>) {
        self.matchers.push(matcher);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The catalog of registered sources.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current search graph.
    pub fn graph(&self) -> &SearchGraph {
        &self.graph
    }

    /// Mutable access to the search graph (used by experiment harnesses that
    /// manipulate weights directly).
    pub fn graph_mut(&mut self) -> &mut SearchGraph {
        &mut self.graph
    }

    /// The system configuration.
    pub fn config(&self) -> &QConfig {
        &self.config
    }

    /// The pre-built value index.
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// The shard structure over the current catalog/graph/index, rebuilding
    /// it first if a source or association arrived since the last build.
    pub fn shard_set(&mut self) -> &ShardSet {
        self.refresh_shards();
        self.shards.as_ref().expect("refresh_shards built a set")
    }

    /// Rebuild the shard set when the structures it mirrors have grown.
    /// Weight-only changes (feedback re-pricing) keep the set fresh.
    fn refresh_shards(&mut self) {
        let fresh = self
            .shards
            .as_ref()
            .is_some_and(|s| s.is_fresh(&self.catalog, &self.graph, &self.keyword_index));
        if !fresh {
            self.shards = Some(ShardSet::build(
                &self.catalog,
                &self.graph,
                &self.keyword_index,
                self.config.shards,
            ));
        }
    }

    /// A view by id.
    pub fn view(&self, id: ViewId) -> Option<&RankedView> {
        self.views.get(id)
    }

    /// All views.
    pub fn views(&self) -> &[RankedView] {
        &self.views
    }

    // ------------------------------------------------------------------
    // View creation & output (Section 2.2)
    // ------------------------------------------------------------------

    /// Create a persistent ranked view for a keyword query and materialise
    /// its current answers. A view with no reachable answers is still
    /// created (it simply has no queries yet); it will populate as new
    /// sources and alignments arrive.
    pub fn create_view(&mut self, keywords: &[&str]) -> Result<ViewId, QError> {
        let view = self.compute_view_reusing_scratch(keywords)?;
        self.views.push(view);
        Ok(self.views.len() - 1)
    }

    /// Recompute one view's definition and contents against the current
    /// search graph and weights.
    pub fn refresh_view(&mut self, id: ViewId) -> Result<(), QError> {
        let keywords: Vec<String> = self
            .views
            .get(id)
            .ok_or(QError::UnknownView(id))?
            .keywords
            .clone();
        let keyword_refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let view = self.compute_view_reusing_scratch(&keyword_refs)?;
        self.views[id] = view;
        Ok(())
    }

    /// Refresh every view; returns the refreshed ids.
    pub fn refresh_all_views(&mut self) -> Vec<ViewId> {
        let ids: Vec<ViewId> = (0..self.views.len()).collect();
        for id in &ids {
            // Keywords always re-resolve, so refresh cannot fail here.
            let _ = self.refresh_view(*id);
        }
        ids
    }

    /// [`QSystem::compute_view`] through the shared scratch — the feedback
    /// loop refreshes every persistent view per interaction, which must not
    /// rebuild the search buffers per view.
    fn compute_view_reusing_scratch(&mut self, keywords: &[&str]) -> Result<RankedView, QError> {
        self.refresh_shards();
        answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            &self.config,
            keywords,
            ServeParams::defaults(&self.config),
            false,
            self.shards.as_ref(),
            &mut self.scratch,
        )
        .map(|(view, _, _)| view)
    }

    // ------------------------------------------------------------------
    // Typed query serving
    // ------------------------------------------------------------------

    /// Answer one typed [`QueryRequest`].
    ///
    /// The request's [`CachePolicy`] decides how the weight-epoch-keyed
    /// answer cache participates: `Cached` serves repeats under unchanged
    /// weights from the cache (any re-pricing or topology change bumps the
    /// graph's epoch and forces a recomputation), `Bypass` recomputes
    /// without touching the cache, `Refresh` recomputes and overwrites the
    /// cached entry. Per-request `top_k` / [`SearchStrategy`] / cost-budget
    /// overrides are threaded down into the Steiner search — and into the
    /// cache key, so differently-parameterised requests never share an
    /// entry. Unlike [`QSystem::create_view`] this registers no persistent
    /// view.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryOutcome, QError> {
        request.validate()?;
        let epoch = self.graph.weight_epoch();
        let params = ServeParams::resolve(&self.config, request);
        let refs: Vec<&str> = request.keywords().iter().map(String::as_str).collect();
        // Bypass requests never touch the cache, so they skip key
        // construction entirely — this is the hot sequential baseline.
        let key = (request.cache() != CachePolicy::Bypass).then(|| {
            self.cache.sync_epoch(epoch, &self.graph);
            QueryKey {
                keywords: normalize_keywords(&refs),
                params: request.params_key(),
            }
        });
        if request.cache() == CachePolicy::Cached {
            let key = key.as_ref().expect("cached policy builds a key");
            if let Some(hit) = self.cache.get(key) {
                return Ok(QueryOutcome {
                    view: hit.view,
                    cache: if hit.revalidated {
                        CacheStatus::Revalidated
                    } else {
                        CacheStatus::Hit
                    },
                    weight_epoch: epoch,
                    steiner: None,
                    wall_time: Duration::ZERO,
                    snapshot: None,
                });
            }
        }

        self.refresh_shards();
        let start = Instant::now();
        let (view, stats, model) = answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            &self.config,
            &refs,
            params,
            request.cache() != CachePolicy::Bypass,
            self.shards.as_ref(),
            &mut self.scratch,
        )?;
        let wall_time = start.elapsed();
        let view = Arc::new(view);
        let cache = match request.cache() {
            CachePolicy::Cached => {
                self.cache.insert(
                    key.expect("cached policy builds a key"),
                    Arc::clone(&view),
                    model.expect("cached policy builds a model"),
                );
                CacheStatus::Miss
            }
            CachePolicy::Refresh => {
                self.cache.insert(
                    key.expect("refresh policy builds a key"),
                    Arc::clone(&view),
                    model.expect("refresh policy builds a model"),
                );
                CacheStatus::Refreshed
            }
            CachePolicy::Bypass => CacheStatus::Bypassed,
        };
        Ok(QueryOutcome {
            view,
            cache,
            weight_epoch: epoch,
            steiner: Some(stats),
            wall_time,
            snapshot: None,
        })
    }

    /// Answer a workload of typed requests, filling the required
    /// computations across `std::thread::scope` workers.
    ///
    /// Outcomes come back in request order and are byte-identical to
    /// answering each request sequentially through [`QSystem::query`],
    /// regardless of worker count: each distinct `(keywords, overrides)`
    /// combination is computed exactly once by a pure function of the
    /// (immutable during the batch) graph, and written to its own slot.
    /// Requests that fail validation receive their error in their slot
    /// without affecting the rest of the batch.
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
        options: &BatchOptions,
    ) -> BatchOutcome {
        let epoch = self.graph.weight_epoch();
        self.cache.sync_epoch(epoch, &self.graph);
        self.refresh_shards();

        // Resolve each request against the cache; collect the distinct
        // computations (first occurrence wins, duplicates share it).
        let mut outcomes: Vec<Option<Result<QueryOutcome, QError>>> = vec![None; requests.len()];
        let mut miss_of: Vec<Option<usize>> = vec![None; requests.len()];
        let mut first_miss: HashMap<QueryKey, usize> = HashMap::new();
        // Per distinct computation: requester index, key, params, whether
        // any requester wants the result cached.
        let mut miss_requester: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<QueryKey> = Vec::new();
        let mut miss_params: Vec<ServeParams> = Vec::new();
        let mut miss_cache_it: Vec<bool> = Vec::new();
        let mut cache_hits = 0usize;
        for (i, request) in requests.iter().enumerate() {
            if let Err(e) = request.validate() {
                outcomes[i] = Some(Err(e));
                continue;
            }
            let refs: Vec<&str> = request.keywords().iter().map(String::as_str).collect();
            let key = QueryKey {
                keywords: normalize_keywords(&refs),
                params: request.params_key(),
            };
            if let Some(&first) = first_miss.get(&key) {
                // Duplicate of an earlier in-batch computation: answered
                // once, and the cache's own counters see only the first
                // occurrence.
                miss_of[i] = Some(first);
                miss_cache_it[first] |= request.cache() != CachePolicy::Bypass;
                cache_hits += 1;
                continue;
            }
            if request.cache() == CachePolicy::Cached {
                if let Some(hit) = self.cache.get(&key) {
                    outcomes[i] = Some(Ok(QueryOutcome {
                        view: hit.view,
                        cache: if hit.revalidated {
                            CacheStatus::Revalidated
                        } else {
                            CacheStatus::Hit
                        },
                        weight_epoch: epoch,
                        steiner: None,
                        wall_time: Duration::ZERO,
                        snapshot: None,
                    }));
                    cache_hits += 1;
                    continue;
                }
            }
            first_miss.insert(key.clone(), miss_requester.len());
            miss_of[i] = Some(miss_requester.len());
            miss_requester.push(i);
            miss_keys.push(key);
            miss_params.push(ServeParams::resolve(&self.config, request));
            miss_cache_it.push(request.cache() != CachePolicy::Bypass);
        }

        let workers = options.effective_workers(miss_requester.len());

        // Fan the computations out over scoped workers on a strided
        // schedule; each worker reuses one Steiner scratch across its
        // queries and returns `(miss index, result)` pairs, so no slot is
        // written twice and the merged outcome is independent of scheduling.
        // A fully-warm batch skips the scope entirely.
        let catalog = &self.catalog;
        let graph = &self.graph;
        let keyword_index = &self.keyword_index;
        let config = &self.config;
        let shards = self.shards.as_ref();
        type Computed = Result<(RankedView, SteinerStats, Option<RevalidationModel>), QError>;
        let mut computed: Vec<Option<(Computed, Duration)>> = vec![None; miss_requester.len()];
        if !miss_requester.is_empty() {
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let miss_requester = &miss_requester;
                    let miss_params = &miss_params;
                    let miss_cache_it = &miss_cache_it;
                    let requests = &requests;
                    handles.push(s.spawn(move || {
                        let mut scratch = SteinerScratch::default();
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < miss_requester.len() {
                            let request = &requests[miss_requester[i]];
                            let refs: Vec<&str> =
                                request.keywords().iter().map(String::as_str).collect();
                            let start = Instant::now();
                            let result = answer_keywords(
                                catalog,
                                graph,
                                keyword_index,
                                config,
                                &refs,
                                miss_params[i],
                                miss_cache_it[i],
                                shards,
                                &mut scratch,
                            );
                            out.push((i, (result, start.elapsed())));
                            i += workers;
                        }
                        out
                    }));
                }
                for handle in handles {
                    for (i, result) in handle.join().expect("batch worker panicked") {
                        computed[i] = Some(result);
                    }
                }
            });
        }

        // Cache the fresh views and resolve every slot in request order.
        type Shared = (
            Result<(Arc<RankedView>, SteinerStats, Option<RevalidationModel>), QError>,
            Duration,
        );
        let computed: Vec<Shared> = computed
            .into_iter()
            .map(|slot| {
                let (result, elapsed) = slot.expect("every miss computed");
                (
                    result.map(|(view, stats, model)| (Arc::new(view), stats, model)),
                    elapsed,
                )
            })
            .collect();
        for (m, (result, _)) in computed.iter().enumerate() {
            // A model exists exactly when some requester wants the result
            // cached (`miss_cache_it` was passed as `build_model`).
            if let (Ok((view, _, Some(model))), true) = (result, miss_cache_it[m]) {
                self.cache
                    .insert(miss_keys[m].clone(), Arc::clone(view), model.clone());
            }
        }
        let outcomes = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(r) => r,
                None => {
                    let m = miss_of[i].expect("slot is hit, error or miss");
                    let (result, elapsed) = &computed[m];
                    result.clone().map(|(view, stats, _)| {
                        if miss_requester[m] == i {
                            // The requester that triggered the computation.
                            let cache = match requests[i].cache() {
                                CachePolicy::Cached => CacheStatus::Miss,
                                CachePolicy::Refresh => CacheStatus::Refreshed,
                                CachePolicy::Bypass => CacheStatus::Bypassed,
                            };
                            QueryOutcome {
                                view,
                                cache,
                                weight_epoch: epoch,
                                steiner: Some(stats),
                                wall_time: *elapsed,
                                snapshot: None,
                            }
                        } else {
                            // In-batch duplicate: shares the computation.
                            QueryOutcome {
                                view,
                                cache: CacheStatus::Hit,
                                weight_epoch: epoch,
                                steiner: None,
                                wall_time: Duration::ZERO,
                                snapshot: None,
                            }
                        }
                    })
                }
            })
            .collect();
        BatchOutcome {
            outcomes,
            cache_hits,
            cache_misses: miss_requester.len(),
            workers,
        }
    }

    /// Answer one typed [`QueryRequest`] through a *shared* reference: the
    /// `&self` serving path for callers that hold the system behind a read
    /// lock (e.g. the lock-coupled baseline the live-ingestion bench
    /// compares against). Because the answer cache needs `&mut self`, the
    /// request's policy must be [`CachePolicy::Bypass`] — anything else is
    /// rejected as [`QError::InvalidRequest`] rather than silently served
    /// uncached. Answers are byte-identical to [`QSystem::query`] with the
    /// same request.
    pub fn query_shared(&self, request: &QueryRequest) -> Result<QueryOutcome, QError> {
        request.validate()?;
        if request.cache() != CachePolicy::Bypass {
            return Err(QError::InvalidRequest {
                field: "cache",
                reason: "query_shared serves through `&self` and cannot touch the answer \
                         cache — use `CachePolicy::Bypass` (or `QSystem::query`)"
                    .into(),
            });
        }
        let refs: Vec<&str> = request.keywords().iter().map(String::as_str).collect();
        // `&self` cannot rebuild a stale shard set, so serve sharded only
        // while it is provably fresh — the answers are identical either way.
        let shards = self
            .shards
            .as_ref()
            .filter(|s| s.is_fresh(&self.catalog, &self.graph, &self.keyword_index));
        let start = Instant::now();
        let (view, stats, _) = answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            &self.config,
            &refs,
            ServeParams::resolve(&self.config, request),
            false,
            shards,
            &mut SteinerScratch::default(),
        )?;
        Ok(QueryOutcome {
            view: Arc::new(view),
            cache: CacheStatus::Bypassed,
            weight_epoch: self.graph.weight_epoch(),
            steiner: Some(stats),
            wall_time: start.elapsed(),
            snapshot: None,
        })
    }

    /// The answer cache and its statistics.
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Replace the answer cache with an empty one holding `capacity` views
    /// (clamped to at least 1). Cached entries and counters are dropped;
    /// subsequent queries repopulate under the current weight epoch.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache = QueryCache::with_capacity(capacity);
    }

    /// Search-graph nodes matched by a view's keywords (value matches map to
    /// their attribute node). These are the start nodes of the α-cost
    /// neighbourhood used by ViewBasedAligner.
    pub fn view_nodes(&self, id: ViewId) -> Vec<NodeId> {
        let Some(view) = self.views.get(id) else {
            return Vec::new();
        };
        let mut nodes = Vec::new();
        for keyword in &view.keywords {
            for m in self
                .keyword_index
                .matches(keyword, &self.config.match_config)
            {
                let node = match m.target {
                    MatchTarget::Relation(r) => self.graph.relation_node(r),
                    MatchTarget::Attribute(a) => self.graph.attribute_node(a),
                    MatchTarget::Value { attribute, .. } => self.graph.attribute_node(attribute),
                };
                if let Some(n) = node {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
        }
        nodes
    }

    // ------------------------------------------------------------------
    // Search graph maintenance: new sources (Section 3)
    // ------------------------------------------------------------------

    /// Register a new data source: load it into the catalog, extend the
    /// search graph and indexes, run the configured matchers through the
    /// configured alignment strategy, add the resulting association edges,
    /// and refresh every view.
    pub fn register_source(&mut self, spec: &SourceSpec) -> Result<RegistrationReport, QError> {
        let source = spec
            .load_into(&mut self.catalog)
            .map_err(|source| QError::SourceLoad {
                source_name: spec.name.clone(),
                source,
            })?;
        self.graph.add_source(&self.catalog, source);
        if let Some(src) = self.catalog.source(source) {
            for rel in src.relations.clone() {
                self.keyword_index.add_relation(&self.catalog, rel);
                self.value_index.index_relation(&self.catalog, rel);
            }
        }

        let mut report = RegistrationReport {
            source,
            alignments: Vec::new(),
            stats_per_matcher: Vec::new(),
            refreshed_views: Vec::new(),
        };

        let matcher_count = self.matchers.len();
        for m in 0..matcher_count {
            let (alignments, stats) = self.run_strategy(source, m);
            let name = self.matchers[m].name().to_string();
            for a in &alignments {
                self.graph.add_association(
                    a.new_attribute,
                    a.existing_attribute,
                    &name,
                    a.confidence,
                );
            }
            report.alignments.extend(alignments);
            report.stats_per_matcher.push((name, stats));
        }

        report.refreshed_views = self.refresh_all_views();
        // Rebuild the shard set on the writer path: the registration already
        // holds exclusive access, so paying here keeps the next reader's
        // query at pure serving latency instead of charging it the rebuild.
        self.refresh_shards();
        Ok(report)
    }

    fn run_strategy(
        &self,
        source: SourceId,
        matcher_index: usize,
    ) -> (Vec<AttributeAlignment>, AlignmentStats) {
        let matcher = self.matchers[matcher_index].as_ref();
        let aligner_config = AlignerConfig {
            top_y: self.config.top_y,
            ..AlignerConfig::default()
        };
        match self.config.strategy {
            AlignmentStrategy::Exhaustive => {
                let outcome = ExhaustiveAligner.align(
                    &self.catalog,
                    matcher,
                    source,
                    Some(&self.value_index),
                    &aligner_config,
                );
                (outcome.alignments, outcome.stats)
            }
            AlignmentStrategy::ViewBased => {
                // Align within the neighbourhood of every existing view; if
                // there are no views yet, fall back to exhaustive matching so
                // the source is still incorporated.
                if self.views.is_empty() {
                    let outcome = ExhaustiveAligner.align(
                        &self.catalog,
                        matcher,
                        source,
                        Some(&self.value_index),
                        &aligner_config,
                    );
                    return (outcome.alignments, outcome.stats);
                }
                let mut alignments = Vec::new();
                let mut stats = AlignmentStats::default();
                for (view_id, view) in self.views.iter().enumerate() {
                    // A view with no answers yet has no α bound: any
                    // alignment reachable from its keyword nodes could give
                    // it its first results, so the neighbourhood is unbounded
                    // (but still restricted to the keywords' component).
                    let alpha = view.alpha().unwrap_or(f64::INFINITY);
                    let nodes = self.view_nodes(view_id);
                    let outcome = ViewBasedAligner::new(alpha).align(
                        &self.catalog,
                        &self.graph,
                        matcher,
                        source,
                        &nodes,
                        Some(&self.value_index),
                        &aligner_config,
                    );
                    alignments.extend(outcome.alignments);
                    stats.merge(&outcome.stats);
                }
                (
                    q_matchers::keep_top_y_per_attribute(alignments, self.config.top_y),
                    stats,
                )
            }
            AlignmentStrategy::Preferential { limit } => {
                let outcome = PreferentialAligner::new(limit).align(
                    &self.catalog,
                    matcher,
                    source,
                    |r| self.graph.relation_feature_weight(r),
                    Some(&self.value_index),
                    &aligner_config,
                );
                (outcome.alignments, outcome.stats)
            }
        }
    }

    /// Add a hand-coded (or externally computed) association edge between two
    /// attributes.
    pub fn add_manual_association(&mut self, a: AttributeId, b: AttributeId, confidence: f64) {
        self.graph.add_association(a, b, "manual", confidence);
        self.refresh_shards();
    }

    /// Add a batch of matcher alignments to the search graph under the given
    /// matcher name (used when driving matchers outside `register_source`,
    /// e.g. the Section 5.2 experiments that align a fixed set of sources).
    pub fn add_alignments(&mut self, alignments: &[AttributeAlignment], matcher_name: &str) {
        for a in alignments {
            self.graph.add_association(
                a.new_attribute,
                a.existing_attribute,
                matcher_name,
                a.confidence,
            );
        }
        self.refresh_shards();
    }

    // ------------------------------------------------------------------
    // User feedback & corrections (Section 4, Algorithm 4)
    // ------------------------------------------------------------------

    /// Apply one typed [`FeedbackRequest`]: resolve its target to a
    /// persistent view (a [`FeedbackTarget::Keywords`] target reuses the
    /// existing view with those keywords, creating one when none exists),
    /// run the MIRA update, and refresh every view.
    pub fn apply_feedback(&mut self, request: &FeedbackRequest) -> Result<FeedbackOutcome, QError> {
        let view_id = match request.target() {
            FeedbackTarget::View(id) => *id,
            FeedbackTarget::Keywords(keywords) => {
                match self.views.iter().position(|v| &v.keywords == keywords) {
                    Some(id) => id,
                    None => {
                        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
                        self.create_view(&refs)?
                    }
                }
            }
        };
        let view = self
            .views
            .get(view_id)
            .ok_or(QError::UnknownView(view_id))?;
        let outcome = learn_feedback(
            &mut self.graph,
            &self.keyword_index,
            &self.config,
            &mut self.mira,
            view,
            view_id,
            request.feedback(),
        )?;
        self.refresh_all_views();
        Ok(outcome)
    }

    /// Apply one piece of user feedback to a view: generalise the annotated
    /// answer to its originating query tree, build margin constraints against
    /// the current K-best trees, update the weights with MIRA, keep edge
    /// costs positive, and refresh every view.
    ///
    /// Thin wrapper over [`QSystem::apply_feedback`] with a
    /// [`FeedbackTarget::View`] target.
    pub fn feedback(
        &mut self,
        view_id: ViewId,
        feedback: Feedback,
    ) -> Result<FeedbackOutcome, QError> {
        self.apply_feedback(&FeedbackRequest::on_view(view_id, feedback))
    }
}

/// The MIRA learning step shared by [`QSystem::apply_feedback`] and
/// [`LiveServer::feedback`](crate::LiveServer::feedback): generalise the
/// annotated answers of `view` to their originating query trees, build
/// margin constraints against the current K-best list, update the weights,
/// and keep every edge cost positive. Mutates `graph` (weights only — the
/// topology is untouched, so this is always a pure re-pricing) and `mira`;
/// the caller decides what to do with the re-priced graph (refresh views, or
/// publish it as the next snapshot).
///
/// `view_label` is only used to label [`QError::UnknownAnswer`] — the live
/// path, which has no persistent views, passes the id its caller targeted.
pub(crate) fn learn_feedback(
    graph: &mut SearchGraph,
    keyword_index: &KeywordIndex,
    config: &QConfig,
    mira: &mut Mira,
    view: &RankedView,
    view_label: ViewId,
    feedback: Feedback,
) -> Result<FeedbackOutcome, QError> {
    if view.queries.is_empty() {
        return Err(QError::NoQueryTrees);
    }

    // Resolve the feedback to a target query and the candidate set.
    let resolve = |answer: usize| -> Result<usize, QError> {
        view.answers
            .get(answer)
            .map(|a| a.query_index)
            .ok_or(QError::UnknownAnswer {
                view: view_label,
                answer,
            })
    };
    let (target_query, candidate_queries): (usize, Vec<usize>) = match feedback {
        Feedback::Correct { answer } => {
            let t = resolve(answer)?;
            (t, (0..view.queries.len()).collect())
        }
        Feedback::Invalid { answer } => {
            let bad = resolve(answer)?;
            let target = (0..view.queries.len()).find(|q| *q != bad);
            match target {
                Some(t) => (t, vec![bad]),
                None => return Err(QError::NoQueryTrees),
            }
        }
        Feedback::Prefer { better, worse } => (resolve(better)?, vec![resolve(worse)?]),
    };

    // Rebuild the query graph (deterministic, so edge ids line up with
    // the stored trees) and recompute the K-best list under the current
    // weights, per Algorithm 4.
    let keywords: Vec<&str> = view.keywords.iter().map(String::as_str).collect();
    let query_graph = QueryGraph::build(graph, keyword_index, &keywords, &config.match_config);
    let steiner = SteinerConfig {
        k: config.top_k,
        ..config.steiner
    };
    let mut candidates = approx_top_k(&query_graph, &query_graph.terminals(), &steiner);
    for q in candidate_queries {
        candidates.push(view.queries[q].tree.clone());
    }
    let target_tree = view.queries[target_query].tree.clone();

    let constraints = constraints_from_candidates(&target_tree, &candidates, |e| {
        query_graph.edge_features(e).clone()
    });
    let weights_before = graph.weights().clone();
    let mut weights = weights_before.clone();
    let summary = mira.update(&mut weights, &constraints);
    graph.set_weights(weights);
    let bump = enforce_positive_costs(graph, config.min_edge_cost);
    // Surface the weight delta of this re-pricing (MIRA step plus
    // positivity repair): the answer cache revalidates cached trees
    // against the new prices instead of cold-starting.
    let repriced_features = graph.weights().changed_features(&weights_before).len();

    Ok(FeedbackOutcome {
        target_query,
        constraints: constraints.len(),
        initially_violated: summary.initially_violated,
        remaining_violations: summary.remaining_violations,
        default_weight_bump: bump,
        repriced_features,
    })
}

/// The per-request serving parameters after merging a [`QueryRequest`]'s
/// overrides with the system [`QConfig`]. Copyable so batch workers can
/// carry one per pending computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ServeParams {
    top_k: usize,
    strategy: SearchStrategy,
    max_cost: f64,
}

impl ServeParams {
    /// The config-default parameters (what the deprecated slice-taking
    /// methods and the persistent-view path serve with).
    pub(crate) fn defaults(config: &QConfig) -> Self {
        ServeParams {
            top_k: config.top_k,
            strategy: SearchStrategy::Approx {
                max_roots: config.steiner.max_roots,
            },
            max_cost: config.steiner.max_cost,
        }
    }

    /// Merge a request's overrides over the config defaults.
    pub(crate) fn resolve(config: &QConfig, request: &QueryRequest) -> Self {
        let mut params = ServeParams::defaults(config);
        if let Some(top_k) = request.top_k_override() {
            params.top_k = top_k;
        }
        if let Some(strategy) = request.strategy_override() {
            params.strategy = strategy;
        }
        if let Some(budget) = request.cost_budget_override() {
            params.max_cost = budget;
        }
        params
    }

    /// Merge a cache key's recorded overrides over the config defaults: the
    /// re-validation lane recomputes a parked entry exactly as the request
    /// that priced it would be served today.
    pub(crate) fn resolve_key(config: &QConfig, key: &crate::request::QueryParamsKey) -> Self {
        let mut params = ServeParams::defaults(config);
        if let Some(top_k) = key.top_k {
            params.top_k = top_k;
        }
        if let Some(strategy) = key.strategy {
            params.strategy = strategy;
        }
        if let Some(bits) = key.budget_bits {
            params.max_cost = f64::from_bits(bits);
        }
        params
    }
}

/// Answer one keyword query against a frozen snapshot of the system: build
/// the query graph, run the requested Steiner search (into the caller's
/// scratch buffers), translate trees to conjunctive queries and materialise
/// the ranked view. Pure in its inputs — the batch path calls this from
/// worker threads holding only shared references.
///
/// When `shards` is present (and fresh against `keyword_index`), keyword
/// matching fans across the per-shard postings partitions and the
/// per-terminal backward Dijkstras fan across `config.shard_workers`
/// threads; both fan-outs are byte-identical to the unsharded sequential
/// path, so `shards` affects wall-clock and memory accounting only, never
/// the answer.
///
/// When `build_model` is set (the answer is destined for the cache), it also
/// returns the [`RevalidationModel`] the cache needs to re-price the answer
/// on a later weight-epoch delta: per-tree cost terms (base edges by id —
/// the graph stays authoritative for their features — and copies of the
/// query-local edge features, which die with the query graph), the effective
/// cost budget, and whether the strategy is revalidatable at all.
#[allow(clippy::too_many_arguments)]
pub(crate) fn answer_keywords(
    catalog: &Catalog,
    graph: &SearchGraph,
    keyword_index: &KeywordIndex,
    config: &QConfig,
    keywords: &[&str],
    params: ServeParams,
    build_model: bool,
    shards: Option<&ShardSet>,
    scratch: &mut SteinerScratch,
) -> Result<(RankedView, SteinerStats, Option<RevalidationModel>), QError> {
    let match_lists: Vec<Vec<KeywordMatch>> = keywords
        .iter()
        .map(|keyword| match shards {
            Some(set) => set.keyword_matches(keyword_index, keyword, &config.match_config),
            None => keyword_index.matches(keyword, &config.match_config),
        })
        .collect();
    let query_graph = QueryGraph::build_with_matches(graph, keywords, match_lists);
    let terminals = query_graph.terminals();
    let (trees, stats) = match params.strategy {
        SearchStrategy::Approx { max_roots } => {
            let steiner = SteinerConfig {
                k: params.top_k,
                max_roots,
                max_cost: params.max_cost,
            };
            let workers = if shards.is_some() {
                config.shard_workers
            } else {
                1
            };
            approx_top_k_detailed_fanned(&query_graph, &terminals, &steiner, scratch, workers)
        }
        SearchStrategy::Exact => {
            let found = exact_minimum_steiner(&query_graph, &terminals);
            let candidates = usize::from(found.is_some());
            let trees: Vec<_> = found
                .into_iter()
                .filter(|t| t.cost <= params.max_cost + 1e-9)
                .collect();
            let stats = SteinerStats {
                terminals: terminals.len(),
                candidates_generated: candidates,
                // A found-but-too-expensive tree must read as "over budget",
                // not as "terminals unconnected".
                trees_over_budget: candidates - trees.len(),
                trees_returned: trees.len(),
                ..SteinerStats::default()
            };
            (trees, stats)
        }
    };
    let mut queries: Vec<RankedQuery> = Vec::new();
    for tree in trees {
        if let Some(query) = tree_to_query(catalog, &query_graph, &tree) {
            queries.push(RankedQuery {
                cost: tree.cost,
                tree,
                query,
            });
        }
    }
    queries.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    // Cost models in final rank order: term order mirrors the sorted edge
    // list so a re-priced sum is bit-identical to this computation's. Only
    // built when the answer will enter the cache — the bypass path (the hot
    // sequential baseline) would throw the feature-vector clones away.
    let model = build_model.then(|| {
        let models: Vec<TreeCostModel> = queries
            .iter()
            .map(|rq| {
                let terms = rq
                    .tree
                    .edges
                    .iter()
                    .map(|e| {
                        if e.index() < graph.edge_count() {
                            CostTerm::Base(*e)
                        } else {
                            let edge = query_graph.edge(*e);
                            if edge.kind.is_fixed_zero() {
                                CostTerm::Local(q_graph::FeatureVector::empty())
                            } else {
                                CostTerm::Local(edge.features.clone())
                            }
                        }
                    })
                    .collect();
                TreeCostModel::new(terms)
            })
            .collect();
        RevalidationModel {
            trees: models,
            budget: params.max_cost,
            revalidatable: matches!(params.strategy, SearchStrategy::Approx { .. }),
            top_k: params.top_k,
        }
    });
    let (columns, column_sources, answers) = materialize_view(
        catalog,
        graph,
        &queries,
        config.column_merge_threshold,
        config.max_answers,
    )
    .map_err(|source| QError::ViewMaterialization {
        keywords: keywords.iter().map(|s| s.to_string()).collect(),
        source,
    })?;
    Ok((
        RankedView {
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            columns,
            column_sources,
            queries,
            answers,
        },
        stats,
        model,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_matchers::{MadMatcher, MetadataMatcher};
    use q_storage::{RelationSpec, Value};

    fn base_specs() -> Vec<SourceSpec> {
        vec![
            SourceSpec::new("go").relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"])
                    .row(["GO:3", "insulin secretion"]),
            ),
            SourceSpec::new("interpro")
                .relation(
                    RelationSpec::new("interpro2go", &["go_id", "entry_ac"])
                        .row(["GO:1", "IPR01"])
                        .row(["GO:2", "IPR02"])
                        .row(["GO:3", "IPR03"]),
                )
                .relation(
                    RelationSpec::new("entry", &["entry_ac", "name"])
                        .row(["IPR01", "Kringle domain"])
                        .row(["IPR02", "Cytokine receptor"])
                        .row(["IPR03", "Insulin family"]),
                )
                .foreign_key("interpro2go.entry_ac", "entry.entry_ac"),
        ]
    }

    fn new_pub_source() -> SourceSpec {
        SourceSpec::new("pubdb").relation(
            RelationSpec::new("pub", &["pub_id", "entry_ac", "title"])
                .row(["P1", "IPR01", "Kringle structure determination"])
                .row(["P2", "IPR02", "Cytokine signalling review"]),
        )
    }

    fn system() -> QSystem {
        let catalog = q_storage::loader::load_catalog(&base_specs()).expect("base catalog loads");
        let mut q = QSystem::new(catalog, QConfig::default());
        q.add_matcher(Box::new(MetadataMatcher::new()));
        q.add_matcher(Box::new(MadMatcher::new()));
        q
    }

    #[test]
    fn create_view_produces_ranked_answers_with_provenance() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(!view.queries.is_empty());
        assert!(!view.answers.is_empty());
        assert!(view.alpha().unwrap() > 0.0);
        // The InterPro entry IPR01 (or its name) is reachable through the
        // GO:1 association, so the join across sources shows up in the view.
        let found = view.answers.iter().any(|a| {
            a.values.iter().flatten().any(
                |v| matches!(v, Value::Text(s) if s.contains("Kringle") || s.contains("IPR01")),
            )
        });
        assert!(found, "answers: {:?}", view.answers);
    }

    #[test]
    fn view_without_matches_is_created_empty() {
        let mut q = system();
        let view_id = q.create_view(&["qqqq", "zzzz"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(view.queries.is_empty());
        assert!(view.answers.is_empty());
        assert_eq!(view.alpha(), None);
    }

    #[test]
    fn register_source_adds_alignments_and_refreshes_views() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);
        let view_id = q.create_view(&["plasma membrane", "title"]).unwrap();
        // Before the publication source arrives, "title" matches nothing.
        assert!(q.view(view_id).unwrap().answers.is_empty());

        let report = q.register_source(&new_pub_source()).unwrap();
        assert!(!report.alignments.is_empty());
        assert_eq!(report.stats_per_matcher.len(), 2);
        assert!(report.refreshed_views.contains(&view_id));
        // The new source's entry_ac should align with entry.entry_ac.
        let pub_entry_ac = q.catalog().resolve_qualified("pub.entry_ac").unwrap();
        let entry_ac = q.catalog().resolve_qualified("entry.entry_ac").unwrap();
        assert!(q
            .graph()
            .association_between(pub_entry_ac, entry_ac)
            .is_some());
        // And the refreshed view now reaches publication titles.
        let view = q.view(view_id).unwrap();
        let found = view.answers.iter().any(|a| {
            a.values
                .iter()
                .flatten()
                .any(|v| matches!(v, Value::Text(s) if s.contains("Kringle structure")))
        });
        assert!(found, "answers: {:?}", view.answers);
    }

    #[test]
    fn exhaustive_strategy_counts_more_comparisons_than_view_based() {
        let mut exhaustive = QSystem::new(
            q_storage::loader::load_catalog(&base_specs()).unwrap(),
            QConfig {
                strategy: AlignmentStrategy::Exhaustive,
                ..QConfig::default()
            },
        );
        exhaustive.add_matcher(Box::new(MetadataMatcher::new()));
        let acc = exhaustive
            .catalog()
            .resolve_qualified("go_term.acc")
            .unwrap();
        let go_id = exhaustive
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        exhaustive.add_manual_association(acc, go_id, 0.95);
        exhaustive
            .create_view(&["plasma membrane", "entry"])
            .unwrap();
        let ex_report = exhaustive.register_source(&new_pub_source()).unwrap();

        let mut view_based = QSystem::new(
            q_storage::loader::load_catalog(&base_specs()).unwrap(),
            QConfig {
                strategy: AlignmentStrategy::ViewBased,
                ..QConfig::default()
            },
        );
        view_based.add_matcher(Box::new(MetadataMatcher::new()));
        let acc = view_based
            .catalog()
            .resolve_qualified("go_term.acc")
            .unwrap();
        let go_id = view_based
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        view_based.add_manual_association(acc, go_id, 0.95);
        view_based
            .create_view(&["plasma membrane", "entry"])
            .unwrap();
        let vb_report = view_based.register_source(&new_pub_source()).unwrap();

        let ex_comparisons = ex_report.stats_per_matcher[0].1.attribute_comparisons;
        let vb_comparisons = vb_report.stats_per_matcher[0].1.attribute_comparisons;
        assert!(
            vb_comparisons <= ex_comparisons,
            "view-based ({vb_comparisons}) should not exceed exhaustive ({ex_comparisons})"
        );
    }

    #[test]
    fn feedback_demotes_the_tree_of_an_invalid_answer() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        let entry_name = q.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = q.catalog().resolve_qualified("go_term.name").unwrap();
        // One good association and one bad one.
        q.add_manual_association(acc, go_id, 0.9);
        q.graph_mut()
            .add_association(term_name, entry_name, "metadata", 0.9);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(view.queries.len() >= 2, "need alternative trees");

        // Mark the best answer correct; weights must change such that its
        // query stays cheapest and all views refresh without error.
        let outcome = q
            .feedback(view_id, Feedback::Correct { answer: 0 })
            .unwrap();
        assert!(outcome.constraints > 0);
        let view = q.view(view_id).unwrap();
        assert!(!view.queries.is_empty());
        // All edge costs remain positive after learning.
        assert!(q.graph().min_learnable_edge_cost().unwrap() > 0.0);
    }

    #[test]
    fn feedback_on_missing_answer_errors() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.9);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let err = q
            .feedback(view_id, Feedback::Correct { answer: 10_000 })
            .unwrap_err();
        assert!(matches!(err, QError::UnknownAnswer { .. }));
        assert!(matches!(
            q.feedback(99, Feedback::Correct { answer: 0 }).unwrap_err(),
            QError::UnknownView(99)
        ));
    }

    #[test]
    fn cached_query_hits_on_normalized_repeats() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);

        let o1 = q
            .query(&QueryRequest::new(["plasma membrane", "entry"]))
            .unwrap();
        assert!(!o1.view.answers.is_empty());
        assert_eq!(o1.cache, CacheStatus::Miss);
        assert!(o1.steiner.is_some(), "a miss reports search stats");
        // Case / whitespace variants normalise to the same key: served from
        // the cache, same allocation.
        let o2 = q
            .query(&QueryRequest::new(["  Plasma Membrane ", "ENTRY"]))
            .unwrap();
        assert!(Arc::ptr_eq(&o1.view, &o2.view));
        assert_eq!(o2.cache, CacheStatus::Hit);
        assert!(o2.steiner.is_none(), "a hit ran no search");
        assert_eq!(o1.weight_epoch, o2.weight_epoch);
        assert_eq!(q.query_cache().hits(), 1);
        assert_eq!(q.query_cache().misses(), 1);
        // A different query is its own entry.
        let o3 = q.query(&QueryRequest::new(["kinase activity"])).unwrap();
        assert!(!Arc::ptr_eq(&o1.view, &o3.view));
        assert_eq!(q.query_cache().len(), 2);
        // A blank extra keyword adds an unreachable Steiner terminal and
        // empties the view — it must be a distinct cache entry, not a hit
        // on the two-keyword query.
        let o4 = q
            .query(&QueryRequest::new(["plasma membrane", "entry", "  "]))
            .unwrap();
        assert!(!Arc::ptr_eq(&o1.view, &o4.view));
        assert!(o4.view.answers.is_empty());
        assert_eq!(q.query_cache().len(), 3);
    }

    #[test]
    fn cache_policies_bypass_and_refresh_behave_as_documented() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);
        let keywords = ["plasma membrane", "entry"];

        // Bypass never touches the cache.
        let bypass = q
            .query(&QueryRequest::new(keywords).cache_policy(CachePolicy::Bypass))
            .unwrap();
        assert_eq!(bypass.cache, CacheStatus::Bypassed);
        assert!(q.query_cache().is_empty());
        assert_eq!(q.query_cache().misses(), 0);

        // A cached miss populates; a refresh recomputes and replaces the
        // entry (fresh allocation, same bytes under an unchanged epoch).
        let miss = q.query(&QueryRequest::new(keywords)).unwrap();
        assert_eq!(miss.cache, CacheStatus::Miss);
        let refreshed = q
            .query(&QueryRequest::new(keywords).cache_policy(CachePolicy::Refresh))
            .unwrap();
        assert_eq!(refreshed.cache, CacheStatus::Refreshed);
        assert!(!Arc::ptr_eq(&miss.view, &refreshed.view));
        assert_eq!(&*miss.view, &*refreshed.view);
        // The refreshed allocation is what the cache now serves.
        let hit = q.query(&QueryRequest::new(keywords)).unwrap();
        assert_eq!(hit.cache, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&refreshed.view, &hit.view));
    }

    #[test]
    fn per_request_overrides_change_answers_without_rebuilding() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        let entry_name = q.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = q.catalog().resolve_qualified("go_term.name").unwrap();
        q.add_manual_association(acc, go_id, 0.9);
        q.graph_mut()
            .add_association(term_name, entry_name, "metadata", 0.9);
        let keywords = ["plasma membrane", "entry"];

        let default = q.query(&QueryRequest::new(keywords)).unwrap();
        assert!(default.view.queries.len() >= 2, "need alternative trees");

        // top_k = 1 keeps only the best tree — on the same system instance.
        let top1 = q.query(&QueryRequest::new(keywords).top_k(1)).unwrap();
        assert_eq!(top1.view.queries.len(), 1);
        assert_eq!(top1.view.queries[0], default.view.queries[0]);

        // The exact strategy also ranks exactly one (provably cheapest) tree.
        let exact = q
            .query(&QueryRequest::new(keywords).strategy(SearchStrategy::Exact))
            .unwrap();
        assert_eq!(exact.view.queries.len(), 1);
        assert!(exact.view.queries[0].cost <= default.view.queries[0].cost + 1e-9);

        // A budget below the second tree's cost prunes the tail.
        let cutoff = default.view.queries[0].cost + 1e-6;
        let budgeted = q
            .query(&QueryRequest::new(keywords).cost_budget(cutoff))
            .unwrap();
        assert_eq!(budgeted.view.queries.len(), 1);
        assert!(budgeted.steiner.unwrap().trees_over_budget >= 1);

        // Differently-parameterised requests never share cache entries: the
        // default request still hits its own (unchanged) entry.
        let again = q.query(&QueryRequest::new(keywords)).unwrap();
        assert_eq!(again.cache, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&default.view, &again.view));

        // An exact-strategy tree dropped by the budget reads as "over
        // budget", not as "terminals unconnected".
        let starved = q
            .query(
                &QueryRequest::new(keywords)
                    .strategy(SearchStrategy::Exact)
                    .cost_budget(exact.view.queries[0].cost / 2.0),
            )
            .unwrap();
        assert!(starved.view.queries.is_empty());
        let stats = starved.steiner.unwrap();
        assert_eq!(stats.candidates_generated, 1);
        assert_eq!(stats.trees_over_budget, 1);
        assert_eq!(stats.trees_returned, 0);
    }

    #[test]
    fn invalid_requests_are_rejected_not_served() {
        let mut q = system();
        let err = q
            .query(&QueryRequest::new(["plasma membrane"]).top_k(0))
            .unwrap_err();
        assert!(matches!(err, QError::InvalidRequest { field: "top_k", .. }));
        let err = q
            .query(&QueryRequest::new(["plasma membrane"]).cost_budget(-1.0))
            .unwrap_err();
        assert!(matches!(
            err,
            QError::InvalidRequest {
                field: "cost_budget",
                ..
            }
        ));
        // Nothing was cached or counted.
        assert!(q.query_cache().is_empty());
        assert_eq!(q.query_cache().misses(), 0);
    }

    #[test]
    fn feedback_repricing_invalidates_the_cache_and_recomputes_costs() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        let entry_name = q.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = q.catalog().resolve_qualified("go_term.name").unwrap();
        q.add_manual_association(acc, go_id, 0.9);
        q.graph_mut()
            .add_association(term_name, entry_name, "metadata", 0.9);

        let keywords = ["plasma membrane", "entry"];
        let before = q.query(&QueryRequest::new(keywords)).unwrap();
        assert!(before.view.queries.len() >= 2, "need alternative trees");

        // MIRA re-prices association edges through a persistent view.
        let view_id = q.create_view(&keywords).unwrap();
        q.feedback(view_id, Feedback::Correct { answer: 0 })
            .unwrap();

        // The repeat must miss (epoch moved) and reflect the new costs: the
        // recomputed view equals the freshly computed persistent view, not
        // the stale cached one.
        let after = q.query(&QueryRequest::new(keywords)).unwrap();
        assert!(!Arc::ptr_eq(&before.view, &after.view), "stale cache hit");
        assert_eq!(after.cache, CacheStatus::Miss);
        assert!(
            after.weight_epoch > before.weight_epoch,
            "feedback must bump the weight epoch"
        );
        assert!(q.query_cache().invalidations() > 0);
        let fresh = q.view(view_id).unwrap();
        assert_eq!(&*after.view, fresh);
        let costs_before: Vec<f64> = before.view.queries.iter().map(|rq| rq.cost).collect();
        let costs_after: Vec<f64> = after.view.queries.iter().map(|rq| rq.cost).collect();
        assert_ne!(costs_before, costs_after, "feedback did not re-price");
    }

    #[test]
    fn batch_matches_sequential_and_counts_hits() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);

        let requests: Vec<QueryRequest> = [
            vec!["plasma membrane", "entry"],
            vec!["kinase activity"],
            vec!["plasma membrane", "entry"], // in-batch duplicate
            vec!["qqzzvv"],                   // matches nothing
        ]
        .iter()
        .map(|kws| QueryRequest::new(kws.iter().copied()))
        .collect();

        // Sequential reference on an identically prepared system.
        let mut q_seq = system();
        q_seq.add_manual_association(acc, go_id, 0.95);
        let sequential: Vec<Arc<RankedView>> = requests
            .iter()
            .map(|r| q_seq.query(r).unwrap().view)
            .collect();

        let batch = q.query_batch(&requests, &BatchOptions { workers: 3 });
        assert_eq!(batch.outcomes.len(), requests.len());
        assert_eq!(batch.cache_misses, 3, "three distinct queries");
        assert_eq!(batch.cache_hits, 1, "the in-batch duplicate");
        for (outcome, seq) in batch.outcomes.iter().zip(&sequential) {
            assert_eq!(&*outcome.as_ref().unwrap().view, &**seq);
        }
        // Duplicate slots share one computation; provenance says which one
        // triggered it.
        let first = batch.outcomes[0].as_ref().unwrap();
        let duplicate = batch.outcomes[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(&first.view, &duplicate.view));
        assert_eq!(first.cache, CacheStatus::Miss);
        assert_eq!(duplicate.cache, CacheStatus::Hit);
        assert!(first.steiner.is_some());
        assert!(duplicate.steiner.is_none());

        // A second batch under unchanged weights is all hits.
        let warm = q.query_batch(&requests, &BatchOptions::default());
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, requests.len());
        for (w, c) in warm.outcomes.iter().zip(&batch.outcomes) {
            let (w, c) = (w.as_ref().unwrap(), c.as_ref().unwrap());
            assert!(Arc::ptr_eq(&w.view, &c.view));
            assert_eq!(w.cache, CacheStatus::Hit);
        }
    }

    #[test]
    fn batch_isolates_invalid_requests_and_mixes_policies() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);

        let requests = vec![
            QueryRequest::new(["plasma membrane", "entry"]),
            QueryRequest::new(["kinase activity"]).top_k(0), // invalid
            QueryRequest::new(["kinase activity"]).cache_policy(CachePolicy::Bypass),
        ];
        let batch = q.query_batch(&requests, &BatchOptions { workers: 2 });
        assert!(batch.outcomes[0].is_ok());
        assert!(matches!(
            batch.outcomes[1],
            Err(QError::InvalidRequest { field: "top_k", .. })
        ));
        let bypass = batch.outcomes[2].as_ref().unwrap();
        assert_eq!(bypass.cache, CacheStatus::Bypassed);
        // The error slot counted as neither hit nor miss; the bypass request
        // computed but did not populate the cache.
        assert_eq!(batch.cache_misses, 2);
        assert_eq!(batch.cache_hits, 0);
        assert_eq!(q.query_cache().len(), 1, "only the cached request stored");
    }

    #[test]
    fn effective_workers_resolves_and_clamps() {
        // Explicit counts are capped by pending work and floored at 1.
        assert_eq!(BatchOptions { workers: 8 }.effective_workers(3), 3);
        assert_eq!(BatchOptions { workers: 2 }.effective_workers(10), 2);
        assert_eq!(BatchOptions { workers: 5 }.effective_workers(0), 1);
        // `0` = auto-detect; whatever the machine reports, the result is
        // at least 1 and never exceeds the pending count.
        let auto = BatchOptions::default().effective_workers(2);
        assert!((1..=2).contains(&auto));
    }

    #[test]
    fn view_nodes_map_keywords_to_graph_nodes() {
        let mut q = system();
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let nodes = q.view_nodes(view_id);
        assert!(!nodes.is_empty());
        let name_attr = q.catalog().resolve_qualified("go_term.name").unwrap();
        let name_node = q.graph().attribute_node(name_attr).unwrap();
        assert!(nodes.contains(&name_node));
    }
}
