//! The `QSystem` façade: view creation, source registration, feedback and
//! the cached, batched query-serving path.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use q_align::{
    AlignerConfig, AlignmentStats, ExhaustiveAligner, PreferentialAligner, ViewBasedAligner,
};
use q_graph::keyword::MatchTarget;
use q_graph::{
    approx_top_k, approx_top_k_with, KeywordIndex, NodeId, QueryGraph, SearchGraph, SteinerConfig,
    SteinerScratch,
};
use q_learn::{constraints_from_candidates, enforce_positive_costs, Mira};
use q_matchers::{AttributeAlignment, SchemaMatcher};
use q_storage::{AttributeId, Catalog, SourceId, SourceSpec, ValueIndex};

use crate::answer::{RankedQuery, RankedView, ViewId};
use crate::cache::{normalize_keywords, QueryCache};
use crate::config::{AlignmentStrategy, QConfig};
use crate::error::QError;
use crate::feedback::{Feedback, FeedbackOutcome};
use crate::translate::{materialize_view, tree_to_query};

/// Report returned by [`QSystem::register_source`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistrationReport {
    /// Id assigned to the new source.
    pub source: SourceId,
    /// Alignments added to the search graph, merged across matchers.
    pub alignments: Vec<AttributeAlignment>,
    /// Per-matcher alignment-cost statistics (matcher name, stats).
    pub stats_per_matcher: Vec<(String, AlignmentStats)>,
    /// Views refreshed after incorporating the source.
    pub refreshed_views: Vec<ViewId>,
}

/// Options for [`QSystem::run_queries_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOptions {
    /// Worker threads answering cache misses. `0` (the default) uses the
    /// machine's available parallelism. Results are deterministic regardless
    /// of the value — workers only change wall-clock time.
    pub workers: usize,
}

/// Outcome of [`QSystem::run_queries_batch`]: one result per workload query,
/// in workload order.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query ranked views, in the order the workload listed them.
    pub results: Vec<Result<Arc<RankedView>, QError>>,
    /// Queries served from the cache as the batch started (duplicates of an
    /// earlier in-batch query count here too: they are answered once).
    pub cache_hits: usize,
    /// Distinct queries that had to be computed.
    pub cache_misses: usize,
    /// Worker threads actually used.
    pub workers: usize,
}

/// The Q data-integration system (Figure 1 of the paper).
pub struct QSystem {
    catalog: Catalog,
    graph: SearchGraph,
    keyword_index: KeywordIndex,
    value_index: ValueIndex,
    config: QConfig,
    matchers: Vec<Box<dyn SchemaMatcher>>,
    views: Vec<RankedView>,
    mira: Mira,
    cache: QueryCache,
}

impl QSystem {
    /// Build a Q system over an existing catalog. The initial search graph,
    /// keyword index and value index are constructed immediately
    /// (Section 2.1). No matchers are registered yet.
    pub fn new(catalog: Catalog, config: QConfig) -> Self {
        let graph = SearchGraph::from_catalog(&catalog);
        let keyword_index = KeywordIndex::build(&catalog);
        let value_index = ValueIndex::build(&catalog);
        QSystem {
            catalog,
            graph,
            keyword_index,
            value_index,
            config,
            matchers: Vec::new(),
            views: Vec::new(),
            mira: Mira::new(),
            cache: QueryCache::default(),
        }
    }

    /// Register a schema matcher (e.g. the metadata matcher or MAD). Matchers
    /// are consulted in registration order when new sources arrive.
    pub fn add_matcher(&mut self, matcher: Box<dyn SchemaMatcher>) {
        self.matchers.push(matcher);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The catalog of registered sources.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current search graph.
    pub fn graph(&self) -> &SearchGraph {
        &self.graph
    }

    /// Mutable access to the search graph (used by experiment harnesses that
    /// manipulate weights directly).
    pub fn graph_mut(&mut self) -> &mut SearchGraph {
        &mut self.graph
    }

    /// The system configuration.
    pub fn config(&self) -> &QConfig {
        &self.config
    }

    /// The pre-built value index.
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// A view by id.
    pub fn view(&self, id: ViewId) -> Option<&RankedView> {
        self.views.get(id)
    }

    /// All views.
    pub fn views(&self) -> &[RankedView] {
        &self.views
    }

    // ------------------------------------------------------------------
    // View creation & output (Section 2.2)
    // ------------------------------------------------------------------

    /// Create a persistent ranked view for a keyword query and materialise
    /// its current answers. A view with no reachable answers is still
    /// created (it simply has no queries yet); it will populate as new
    /// sources and alignments arrive.
    pub fn create_view(&mut self, keywords: &[&str]) -> Result<ViewId, QError> {
        let view = self.compute_view(keywords)?;
        self.views.push(view);
        Ok(self.views.len() - 1)
    }

    /// Recompute one view's definition and contents against the current
    /// search graph and weights.
    pub fn refresh_view(&mut self, id: ViewId) -> Result<(), QError> {
        let keywords: Vec<String> = self
            .views
            .get(id)
            .ok_or(QError::UnknownView(id))?
            .keywords
            .clone();
        let keyword_refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let view = self.compute_view(&keyword_refs)?;
        self.views[id] = view;
        Ok(())
    }

    /// Refresh every view; returns the refreshed ids.
    pub fn refresh_all_views(&mut self) -> Vec<ViewId> {
        let ids: Vec<ViewId> = (0..self.views.len()).collect();
        for id in &ids {
            // Keywords always re-resolve, so refresh cannot fail here.
            let _ = self.refresh_view(*id);
        }
        ids
    }

    fn compute_view(&self, keywords: &[&str]) -> Result<RankedView, QError> {
        answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            &self.config,
            keywords,
            &mut SteinerScratch::default(),
        )
    }

    // ------------------------------------------------------------------
    // Cached, batched query serving
    // ------------------------------------------------------------------

    /// Answer a keyword query through the weight-epoch-keyed cache: a repeat
    /// of a query under unchanged weights returns the cached ranked view; any
    /// re-pricing or topology change bumps the graph's epoch and the query is
    /// recomputed. Unlike [`QSystem::create_view`] this registers no
    /// persistent view.
    pub fn run_query_cached(&mut self, keywords: &[&str]) -> Result<Arc<RankedView>, QError> {
        self.cache.sync_epoch(self.graph.weight_epoch());
        let key = normalize_keywords(keywords);
        if let Some(view) = self.cache.get(&key) {
            return Ok(view);
        }
        let view = Arc::new(self.compute_view(keywords)?);
        self.cache.insert(key, Arc::clone(&view));
        Ok(view)
    }

    /// Answer a workload of keyword queries, filling cache misses across
    /// `std::thread::scope` workers. Results come back in workload order and
    /// are byte-identical to answering each query sequentially, regardless of
    /// worker count: each distinct query is computed exactly once by a pure
    /// function of the (immutable during the batch) graph, and written to its
    /// own slot.
    pub fn run_queries_batch(
        &mut self,
        workload: &[Vec<String>],
        options: &BatchOptions,
    ) -> BatchReport {
        self.cache.sync_epoch(self.graph.weight_epoch());

        // Resolve each workload entry against the cache; collect the
        // distinct misses (first occurrence wins, duplicates share it).
        let keys: Vec<Vec<String>> = workload
            .iter()
            .map(|kws| {
                let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
                normalize_keywords(&refs)
            })
            .collect();
        let mut results: Vec<Option<Result<Arc<RankedView>, QError>>> = vec![None; workload.len()];
        let mut miss_queries: Vec<Vec<String>> = Vec::new();
        let mut miss_of: Vec<Option<usize>> = vec![None; workload.len()];
        let mut first_miss: HashMap<&[String], usize> = HashMap::new();
        let mut cache_hits = 0usize;
        for (i, key) in keys.iter().enumerate() {
            if let Some(&first) = first_miss.get(key.as_slice()) {
                // Duplicate of an earlier in-batch miss: computed once, and
                // the cache's own counters see only the first occurrence.
                miss_of[i] = Some(first);
                cache_hits += 1;
            } else if let Some(view) = self.cache.get(key) {
                results[i] = Some(Ok(view));
                cache_hits += 1;
            } else {
                first_miss.insert(key.as_slice(), miss_queries.len());
                miss_of[i] = Some(miss_queries.len());
                miss_queries.push(workload[i].clone());
            }
        }

        let workers = match options.workers {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            w => w,
        }
        .min(miss_queries.len())
        .max(1);

        // Fan the misses out over scoped workers on a strided schedule; each
        // worker reuses one Steiner scratch across its queries and returns
        // `(miss index, result)` pairs, so no slot is written twice and the
        // merged outcome is independent of scheduling. A fully-warm batch
        // skips the scope entirely.
        let catalog = &self.catalog;
        let graph = &self.graph;
        let keyword_index = &self.keyword_index;
        let config = &self.config;
        let mut computed: Vec<Option<Result<RankedView, QError>>> = vec![None; miss_queries.len()];
        if !miss_queries.is_empty() {
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let miss_queries = &miss_queries;
                    handles.push(s.spawn(move || {
                        let mut scratch = SteinerScratch::default();
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < miss_queries.len() {
                            let refs: Vec<&str> =
                                miss_queries[i].iter().map(String::as_str).collect();
                            out.push((
                                i,
                                answer_keywords(
                                    catalog,
                                    graph,
                                    keyword_index,
                                    config,
                                    &refs,
                                    &mut scratch,
                                ),
                            ));
                            i += workers;
                        }
                        out
                    }));
                }
                for handle in handles {
                    for (i, result) in handle.join().expect("batch worker panicked") {
                        computed[i] = Some(result);
                    }
                }
            });
        }

        // Cache the fresh views and resolve every slot in workload order.
        let computed: Vec<Result<Arc<RankedView>, QError>> = computed
            .into_iter()
            .map(|r| r.expect("every miss computed").map(Arc::new))
            .collect();
        for (m, result) in computed.iter().enumerate() {
            if let Ok(view) = result {
                let refs: Vec<&str> = miss_queries[m].iter().map(String::as_str).collect();
                self.cache
                    .insert(normalize_keywords(&refs), Arc::clone(view));
            }
        }
        let results = results
            .into_iter()
            .zip(miss_of)
            .map(|(slot, miss)| match slot {
                Some(r) => r,
                None => computed[miss.expect("slot is hit or miss")].clone(),
            })
            .collect();
        BatchReport {
            results,
            cache_hits,
            cache_misses: miss_queries.len(),
            workers,
        }
    }

    /// Answer a keyword query bypassing the cache: every call recomputes
    /// from scratch. This is the pre-cache serving behaviour, kept as the
    /// baseline the throughput experiment measures against.
    pub fn run_query_uncached(&self, keywords: &[&str]) -> Result<RankedView, QError> {
        self.compute_view(keywords)
    }

    /// The answer cache and its statistics.
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Search-graph nodes matched by a view's keywords (value matches map to
    /// their attribute node). These are the start nodes of the α-cost
    /// neighbourhood used by ViewBasedAligner.
    pub fn view_nodes(&self, id: ViewId) -> Vec<NodeId> {
        let Some(view) = self.views.get(id) else {
            return Vec::new();
        };
        let mut nodes = Vec::new();
        for keyword in &view.keywords {
            for m in self
                .keyword_index
                .matches(keyword, &self.config.match_config)
            {
                let node = match m.target {
                    MatchTarget::Relation(r) => self.graph.relation_node(r),
                    MatchTarget::Attribute(a) => self.graph.attribute_node(a),
                    MatchTarget::Value { attribute, .. } => self.graph.attribute_node(attribute),
                };
                if let Some(n) = node {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
        }
        nodes
    }

    // ------------------------------------------------------------------
    // Search graph maintenance: new sources (Section 3)
    // ------------------------------------------------------------------

    /// Register a new data source: load it into the catalog, extend the
    /// search graph and indexes, run the configured matchers through the
    /// configured alignment strategy, add the resulting association edges,
    /// and refresh every view.
    pub fn register_source(&mut self, spec: &SourceSpec) -> Result<RegistrationReport, QError> {
        let source = spec.load_into(&mut self.catalog)?;
        self.graph.add_source(&self.catalog, source);
        if let Some(src) = self.catalog.source(source) {
            for rel in src.relations.clone() {
                self.keyword_index.add_relation(&self.catalog, rel);
                self.value_index.index_relation(&self.catalog, rel);
            }
        }

        let mut report = RegistrationReport {
            source,
            alignments: Vec::new(),
            stats_per_matcher: Vec::new(),
            refreshed_views: Vec::new(),
        };

        let matcher_count = self.matchers.len();
        for m in 0..matcher_count {
            let (alignments, stats) = self.run_strategy(source, m);
            let name = self.matchers[m].name().to_string();
            for a in &alignments {
                self.graph.add_association(
                    a.new_attribute,
                    a.existing_attribute,
                    &name,
                    a.confidence,
                );
            }
            report.alignments.extend(alignments);
            report.stats_per_matcher.push((name, stats));
        }

        report.refreshed_views = self.refresh_all_views();
        Ok(report)
    }

    fn run_strategy(
        &self,
        source: SourceId,
        matcher_index: usize,
    ) -> (Vec<AttributeAlignment>, AlignmentStats) {
        let matcher = self.matchers[matcher_index].as_ref();
        let aligner_config = AlignerConfig {
            top_y: self.config.top_y,
            ..AlignerConfig::default()
        };
        match self.config.strategy {
            AlignmentStrategy::Exhaustive => {
                let outcome = ExhaustiveAligner.align(
                    &self.catalog,
                    matcher,
                    source,
                    Some(&self.value_index),
                    &aligner_config,
                );
                (outcome.alignments, outcome.stats)
            }
            AlignmentStrategy::ViewBased => {
                // Align within the neighbourhood of every existing view; if
                // there are no views yet, fall back to exhaustive matching so
                // the source is still incorporated.
                if self.views.is_empty() {
                    let outcome = ExhaustiveAligner.align(
                        &self.catalog,
                        matcher,
                        source,
                        Some(&self.value_index),
                        &aligner_config,
                    );
                    return (outcome.alignments, outcome.stats);
                }
                let mut alignments = Vec::new();
                let mut stats = AlignmentStats::default();
                for (view_id, view) in self.views.iter().enumerate() {
                    // A view with no answers yet has no α bound: any
                    // alignment reachable from its keyword nodes could give
                    // it its first results, so the neighbourhood is unbounded
                    // (but still restricted to the keywords' component).
                    let alpha = view.alpha().unwrap_or(f64::INFINITY);
                    let nodes = self.view_nodes(view_id);
                    let outcome = ViewBasedAligner::new(alpha).align(
                        &self.catalog,
                        &self.graph,
                        matcher,
                        source,
                        &nodes,
                        Some(&self.value_index),
                        &aligner_config,
                    );
                    alignments.extend(outcome.alignments);
                    stats.merge(&outcome.stats);
                }
                (
                    q_matchers::keep_top_y_per_attribute(alignments, self.config.top_y),
                    stats,
                )
            }
            AlignmentStrategy::Preferential { limit } => {
                let outcome = PreferentialAligner::new(limit).align(
                    &self.catalog,
                    matcher,
                    source,
                    |r| self.graph.relation_feature_weight(r),
                    Some(&self.value_index),
                    &aligner_config,
                );
                (outcome.alignments, outcome.stats)
            }
        }
    }

    /// Add a hand-coded (or externally computed) association edge between two
    /// attributes.
    pub fn add_manual_association(&mut self, a: AttributeId, b: AttributeId, confidence: f64) {
        self.graph.add_association(a, b, "manual", confidence);
    }

    /// Add a batch of matcher alignments to the search graph under the given
    /// matcher name (used when driving matchers outside `register_source`,
    /// e.g. the Section 5.2 experiments that align a fixed set of sources).
    pub fn add_alignments(&mut self, alignments: &[AttributeAlignment], matcher_name: &str) {
        for a in alignments {
            self.graph.add_association(
                a.new_attribute,
                a.existing_attribute,
                matcher_name,
                a.confidence,
            );
        }
    }

    // ------------------------------------------------------------------
    // User feedback & corrections (Section 4, Algorithm 4)
    // ------------------------------------------------------------------

    /// Apply one piece of user feedback to a view: generalise the annotated
    /// answer to its originating query tree, build margin constraints against
    /// the current K-best trees, update the weights with MIRA, keep edge
    /// costs positive, and refresh every view.
    pub fn feedback(
        &mut self,
        view_id: ViewId,
        feedback: Feedback,
    ) -> Result<FeedbackOutcome, QError> {
        let view = self
            .views
            .get(view_id)
            .ok_or(QError::UnknownView(view_id))?;
        if view.queries.is_empty() {
            return Err(QError::NoQueryTrees);
        }

        // Resolve the feedback to a target query and the candidate set.
        let resolve = |answer: usize| -> Result<usize, QError> {
            view.answers
                .get(answer)
                .map(|a| a.query_index)
                .ok_or(QError::UnknownAnswer {
                    view: view_id,
                    answer,
                })
        };
        let (target_query, candidate_queries): (usize, Vec<usize>) = match feedback {
            Feedback::Correct { answer } => {
                let t = resolve(answer)?;
                (t, (0..view.queries.len()).collect())
            }
            Feedback::Invalid { answer } => {
                let bad = resolve(answer)?;
                let target = (0..view.queries.len()).find(|q| *q != bad);
                match target {
                    Some(t) => (t, vec![bad]),
                    None => return Err(QError::NoQueryTrees),
                }
            }
            Feedback::Prefer { better, worse } => (resolve(better)?, vec![resolve(worse)?]),
        };

        // Rebuild the query graph (deterministic, so edge ids line up with
        // the stored trees) and recompute the K-best list under the current
        // weights, per Algorithm 4.
        let keywords: Vec<&str> = view.keywords.iter().map(String::as_str).collect();
        let query_graph = QueryGraph::build(
            &self.graph,
            &self.keyword_index,
            &keywords,
            &self.config.match_config,
        );
        let steiner = SteinerConfig {
            k: self.config.top_k,
            ..self.config.steiner
        };
        let mut candidates = approx_top_k(&query_graph, &query_graph.terminals(), &steiner);
        for q in candidate_queries {
            candidates.push(view.queries[q].tree.clone());
        }
        let target_tree = view.queries[target_query].tree.clone();

        let constraints = constraints_from_candidates(&target_tree, &candidates, |e| {
            query_graph.edge_features(e).clone()
        });
        let mut weights = self.graph.weights().clone();
        let summary = self.mira.update(&mut weights, &constraints);
        self.graph.set_weights(weights);
        let bump = enforce_positive_costs(&mut self.graph, self.config.min_edge_cost);

        self.refresh_all_views();
        Ok(FeedbackOutcome {
            target_query,
            constraints: constraints.len(),
            initially_violated: summary.initially_violated,
            remaining_violations: summary.remaining_violations,
            default_weight_bump: bump,
        })
    }
}

/// Answer one keyword query against a frozen snapshot of the system: build
/// the query graph, run the top-k Steiner search (into the caller's scratch
/// buffers), translate trees to conjunctive queries and materialise the
/// ranked view. Pure in its inputs — the batch path calls this from worker
/// threads holding only shared references.
fn answer_keywords(
    catalog: &Catalog,
    graph: &SearchGraph,
    keyword_index: &KeywordIndex,
    config: &QConfig,
    keywords: &[&str],
    scratch: &mut SteinerScratch,
) -> Result<RankedView, QError> {
    let query_graph = QueryGraph::build(graph, keyword_index, keywords, &config.match_config);
    let terminals = query_graph.terminals();
    let steiner = SteinerConfig {
        k: config.top_k,
        ..config.steiner
    };
    let trees = approx_top_k_with(&query_graph, &terminals, &steiner, scratch);
    let mut queries: Vec<RankedQuery> = Vec::new();
    for tree in trees {
        if let Some(query) = tree_to_query(catalog, &query_graph, &tree) {
            queries.push(RankedQuery {
                cost: tree.cost,
                tree,
                query,
            });
        }
    }
    queries.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
    let (columns, column_sources, answers) = materialize_view(
        catalog,
        graph,
        &queries,
        config.column_merge_threshold,
        config.max_answers,
    )?;
    Ok(RankedView {
        keywords: keywords.iter().map(|s| s.to_string()).collect(),
        columns,
        column_sources,
        queries,
        answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_matchers::{MadMatcher, MetadataMatcher};
    use q_storage::{RelationSpec, Value};

    fn base_specs() -> Vec<SourceSpec> {
        vec![
            SourceSpec::new("go").relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"])
                    .row(["GO:3", "insulin secretion"]),
            ),
            SourceSpec::new("interpro")
                .relation(
                    RelationSpec::new("interpro2go", &["go_id", "entry_ac"])
                        .row(["GO:1", "IPR01"])
                        .row(["GO:2", "IPR02"])
                        .row(["GO:3", "IPR03"]),
                )
                .relation(
                    RelationSpec::new("entry", &["entry_ac", "name"])
                        .row(["IPR01", "Kringle domain"])
                        .row(["IPR02", "Cytokine receptor"])
                        .row(["IPR03", "Insulin family"]),
                )
                .foreign_key("interpro2go.entry_ac", "entry.entry_ac"),
        ]
    }

    fn new_pub_source() -> SourceSpec {
        SourceSpec::new("pubdb").relation(
            RelationSpec::new("pub", &["pub_id", "entry_ac", "title"])
                .row(["P1", "IPR01", "Kringle structure determination"])
                .row(["P2", "IPR02", "Cytokine signalling review"]),
        )
    }

    fn system() -> QSystem {
        let catalog = q_storage::loader::load_catalog(&base_specs()).expect("base catalog loads");
        let mut q = QSystem::new(catalog, QConfig::default());
        q.add_matcher(Box::new(MetadataMatcher::new()));
        q.add_matcher(Box::new(MadMatcher::new()));
        q
    }

    #[test]
    fn create_view_produces_ranked_answers_with_provenance() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(!view.queries.is_empty());
        assert!(!view.answers.is_empty());
        assert!(view.alpha().unwrap() > 0.0);
        // The InterPro entry IPR01 (or its name) is reachable through the
        // GO:1 association, so the join across sources shows up in the view.
        let found = view.answers.iter().any(|a| {
            a.values.iter().flatten().any(
                |v| matches!(v, Value::Text(s) if s.contains("Kringle") || s.contains("IPR01")),
            )
        });
        assert!(found, "answers: {:?}", view.answers);
    }

    #[test]
    fn view_without_matches_is_created_empty() {
        let mut q = system();
        let view_id = q.create_view(&["qqqq", "zzzz"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(view.queries.is_empty());
        assert!(view.answers.is_empty());
        assert_eq!(view.alpha(), None);
    }

    #[test]
    fn register_source_adds_alignments_and_refreshes_views() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);
        let view_id = q.create_view(&["plasma membrane", "title"]).unwrap();
        // Before the publication source arrives, "title" matches nothing.
        assert!(q.view(view_id).unwrap().answers.is_empty());

        let report = q.register_source(&new_pub_source()).unwrap();
        assert!(!report.alignments.is_empty());
        assert_eq!(report.stats_per_matcher.len(), 2);
        assert!(report.refreshed_views.contains(&view_id));
        // The new source's entry_ac should align with entry.entry_ac.
        let pub_entry_ac = q.catalog().resolve_qualified("pub.entry_ac").unwrap();
        let entry_ac = q.catalog().resolve_qualified("entry.entry_ac").unwrap();
        assert!(q
            .graph()
            .association_between(pub_entry_ac, entry_ac)
            .is_some());
        // And the refreshed view now reaches publication titles.
        let view = q.view(view_id).unwrap();
        let found = view.answers.iter().any(|a| {
            a.values
                .iter()
                .flatten()
                .any(|v| matches!(v, Value::Text(s) if s.contains("Kringle structure")))
        });
        assert!(found, "answers: {:?}", view.answers);
    }

    #[test]
    fn exhaustive_strategy_counts_more_comparisons_than_view_based() {
        let mut exhaustive = QSystem::new(
            q_storage::loader::load_catalog(&base_specs()).unwrap(),
            QConfig {
                strategy: AlignmentStrategy::Exhaustive,
                ..QConfig::default()
            },
        );
        exhaustive.add_matcher(Box::new(MetadataMatcher::new()));
        let acc = exhaustive
            .catalog()
            .resolve_qualified("go_term.acc")
            .unwrap();
        let go_id = exhaustive
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        exhaustive.add_manual_association(acc, go_id, 0.95);
        exhaustive
            .create_view(&["plasma membrane", "entry"])
            .unwrap();
        let ex_report = exhaustive.register_source(&new_pub_source()).unwrap();

        let mut view_based = QSystem::new(
            q_storage::loader::load_catalog(&base_specs()).unwrap(),
            QConfig {
                strategy: AlignmentStrategy::ViewBased,
                ..QConfig::default()
            },
        );
        view_based.add_matcher(Box::new(MetadataMatcher::new()));
        let acc = view_based
            .catalog()
            .resolve_qualified("go_term.acc")
            .unwrap();
        let go_id = view_based
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        view_based.add_manual_association(acc, go_id, 0.95);
        view_based
            .create_view(&["plasma membrane", "entry"])
            .unwrap();
        let vb_report = view_based.register_source(&new_pub_source()).unwrap();

        let ex_comparisons = ex_report.stats_per_matcher[0].1.attribute_comparisons;
        let vb_comparisons = vb_report.stats_per_matcher[0].1.attribute_comparisons;
        assert!(
            vb_comparisons <= ex_comparisons,
            "view-based ({vb_comparisons}) should not exceed exhaustive ({ex_comparisons})"
        );
    }

    #[test]
    fn feedback_demotes_the_tree_of_an_invalid_answer() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        let entry_name = q.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = q.catalog().resolve_qualified("go_term.name").unwrap();
        // One good association and one bad one.
        q.add_manual_association(acc, go_id, 0.9);
        q.graph_mut()
            .add_association(term_name, entry_name, "metadata", 0.9);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let view = q.view(view_id).unwrap();
        assert!(view.queries.len() >= 2, "need alternative trees");

        // Mark the best answer correct; weights must change such that its
        // query stays cheapest and all views refresh without error.
        let outcome = q
            .feedback(view_id, Feedback::Correct { answer: 0 })
            .unwrap();
        assert!(outcome.constraints > 0);
        let view = q.view(view_id).unwrap();
        assert!(!view.queries.is_empty());
        // All edge costs remain positive after learning.
        assert!(q.graph().min_learnable_edge_cost().unwrap() > 0.0);
    }

    #[test]
    fn feedback_on_missing_answer_errors() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.9);
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let err = q
            .feedback(view_id, Feedback::Correct { answer: 10_000 })
            .unwrap_err();
        assert!(matches!(err, QError::UnknownAnswer { .. }));
        assert!(matches!(
            q.feedback(99, Feedback::Correct { answer: 0 }).unwrap_err(),
            QError::UnknownView(99)
        ));
    }

    #[test]
    fn cached_query_hits_on_normalized_repeats() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);

        let v1 = q.run_query_cached(&["plasma membrane", "entry"]).unwrap();
        assert!(!v1.answers.is_empty());
        // Case / whitespace variants normalise to the same key: served from
        // the cache, same allocation.
        let v2 = q
            .run_query_cached(&["  Plasma Membrane ", "ENTRY"])
            .unwrap();
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(q.query_cache().hits(), 1);
        assert_eq!(q.query_cache().misses(), 1);
        // A different query is its own entry.
        let v3 = q.run_query_cached(&["kinase activity"]).unwrap();
        assert!(!Arc::ptr_eq(&v1, &v3));
        assert_eq!(q.query_cache().len(), 2);
        // A blank extra keyword adds an unreachable Steiner terminal and
        // empties the view — it must be a distinct cache entry, not a hit
        // on the two-keyword query.
        let v4 = q
            .run_query_cached(&["plasma membrane", "entry", "  "])
            .unwrap();
        assert!(!Arc::ptr_eq(&v1, &v4));
        assert!(v4.answers.is_empty());
        assert_eq!(q.query_cache().len(), 3);
    }

    #[test]
    fn feedback_repricing_invalidates_the_cache_and_recomputes_costs() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        let entry_name = q.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = q.catalog().resolve_qualified("go_term.name").unwrap();
        q.add_manual_association(acc, go_id, 0.9);
        q.graph_mut()
            .add_association(term_name, entry_name, "metadata", 0.9);

        let keywords = ["plasma membrane", "entry"];
        let before = q.run_query_cached(&keywords).unwrap();
        assert!(before.queries.len() >= 2, "need alternative trees");

        // MIRA re-prices association edges through a persistent view.
        let view_id = q.create_view(&keywords).unwrap();
        q.feedback(view_id, Feedback::Correct { answer: 0 })
            .unwrap();

        // The repeat must miss (epoch moved) and reflect the new costs: the
        // recomputed view equals the freshly computed persistent view, not
        // the stale cached one.
        let after = q.run_query_cached(&keywords).unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "stale cache hit");
        assert!(q.query_cache().invalidations() > 0);
        let fresh = q.view(view_id).unwrap();
        assert_eq!(&*after, fresh);
        let costs_before: Vec<f64> = before.queries.iter().map(|rq| rq.cost).collect();
        let costs_after: Vec<f64> = after.queries.iter().map(|rq| rq.cost).collect();
        assert_ne!(costs_before, costs_after, "feedback did not re-price");
    }

    #[test]
    fn batch_matches_sequential_and_counts_hits() {
        let mut q = system();
        let acc = q.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = q.catalog().resolve_qualified("interpro2go.go_id").unwrap();
        q.add_manual_association(acc, go_id, 0.95);

        let workload: Vec<Vec<String>> = [
            vec!["plasma membrane", "entry"],
            vec!["kinase activity"],
            vec!["plasma membrane", "entry"], // in-batch duplicate
            vec!["qqzzvv"],                   // matches nothing
        ]
        .iter()
        .map(|kws| kws.iter().map(|s| s.to_string()).collect())
        .collect();

        // Sequential reference on an identically prepared system.
        let mut q_seq = system();
        q_seq.add_manual_association(acc, go_id, 0.95);
        let sequential: Vec<Arc<RankedView>> = workload
            .iter()
            .map(|kws| {
                let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
                q_seq.run_query_cached(&refs).unwrap()
            })
            .collect();

        let report = q.run_queries_batch(&workload, &BatchOptions { workers: 3 });
        assert_eq!(report.results.len(), workload.len());
        assert_eq!(report.cache_misses, 3, "three distinct queries");
        assert_eq!(report.cache_hits, 1, "the in-batch duplicate");
        for (batch, seq) in report.results.iter().zip(&sequential) {
            assert_eq!(&**batch.as_ref().unwrap(), &**seq);
        }
        // Duplicate slots share one computation.
        assert!(Arc::ptr_eq(
            report.results[0].as_ref().unwrap(),
            report.results[2].as_ref().unwrap()
        ));

        // A second batch under unchanged weights is all hits.
        let warm = q.run_queries_batch(&workload, &BatchOptions::default());
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, workload.len());
        for (w, c) in warm.results.iter().zip(&report.results) {
            assert!(Arc::ptr_eq(w.as_ref().unwrap(), c.as_ref().unwrap()));
        }
    }

    #[test]
    fn view_nodes_map_keywords_to_graph_nodes() {
        let mut q = system();
        let view_id = q.create_view(&["plasma membrane", "entry"]).unwrap();
        let nodes = q.view_nodes(view_id);
        assert!(!nodes.is_empty());
        let name_attr = q.catalog().resolve_qualified("go_term.name").unwrap();
        let name_node = q.graph().attribute_node(name_attr).unwrap();
        assert!(nodes.contains(&name_node));
    }
}
