//! Live-ingestion serving: snapshot-isolated concurrent reads while new
//! sources are incorporated end-to-end.
//!
//! The paper's headline capability is *automatically incorporating new
//! sources* into a running keyword-search integration system. A plain
//! [`QSystem`](crate::QSystem) does incorporate sources, but through
//! `&mut self` — registration and serving exclude each other, so every
//! topology change is a stop-the-world event for readers. This module
//! removes that coupling:
//!
//! * **[`GraphSnapshot`]** — one immutable, self-contained serving state:
//!   catalog + search graph (packed CSR) + keyword index, stamped with a
//!   snapshot id (the graph's weight epoch at publish). Readers answer
//!   queries against a snapshot without any lock; answers are a pure
//!   function of `(snapshot, request)`.
//! * **[`LiveServer`]** — holds the current snapshot behind an
//!   `RwLock<Arc<GraphSnapshot>>` (the lock is held only long enough to
//!   clone the `Arc`), a shared answer cache behind a `Mutex`, and a writer
//!   lane behind its own `Mutex`. [`LiveServer::query`] serves from the
//!   current snapshot through `&self`; [`LiveServer::ingest_source`]
//!   incorporates a source end-to-end — incremental catalog registration
//!   ([`SourceSpec::load_incremental`]), delta-grown CSR
//!   ([`q_graph::CsrDelta`] inside the graph's topology epilogue),
//!   keyword-index append, matcher scoring of only the new columns
//!   ([`SchemaMatcher::match_source`]) — and publishes the next snapshot
//!   atomically. Readers in flight keep their snapshot; new readers see the
//!   new one.
//!
//! # Epoch/publish protocol and the cache survival rule
//!
//! Publishing snapshot `N+1` syncs the shared cache *before* swapping the
//! current snapshot pointer:
//!
//! 1. The writer builds the next snapshot off to the side (readers are
//!    untouched).
//! 2. It summarises what changed into an [`IngestionDelta`] — the new
//!    relations and the *bridge seeds*, every new edge incident to the
//!    pre-existing graph with its cost — and calls
//!    [`QueryCache::sync_ingestion`], which prices the delta per entry
//!    (one multi-source Dijkstra from the bridge seeds,
//!    [`q_graph::DeltaPricer`]): an entry is **kept** when the cheapest
//!    bridge-crossing path into its keywords' match nodes is strictly above
//!    its displacement threshold, **dropped** when it carries no
//!    re-validation model, and **parked** otherwise.
//! 3. It swaps the snapshot pointer and deposits the parked entries with
//!    the background [`RevalidationLane`](crate::revalidate), which settles
//!    each one by fresh recompute — re-admitting identical bytes under
//!    their original snapshot, changed bytes under the new one — so the
//!    next hit serves a provably-fresh entry or misses normally, never a
//!    cold start caused purely by the bound's conservatism.
//!
//! A reader that computed an answer against snapshot `N` concurrently with
//! the publish cannot pollute the cache: inserts are guarded by the cache's
//! epoch (now `N+1`), so stale computations are served to their requester
//! and discarded. Every served answer is therefore byte-identical to the
//! sequential answer of *some published snapshot*, and
//! [`QueryOutcome::snapshot`] says which — the `live_ingest` stress test
//! replays exactly this claim against the publish log.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use q_graph::{KeywordIndex, SearchGraph, ShardSet, SteinerScratch};
use q_learn::Mira;
use q_matchers::{AttributeAlignment, SchemaMatcher};
use q_storage::{AttributeId, Catalog, RelationId, SourceId, SourceSpec};

use crate::answer::RankedView;
use crate::cache::{normalize_keywords, IngestionDelta, QueryCache, QueryKey, RevalidationModel};
use crate::config::QConfig;
use crate::error::QError;
use crate::feedback::{FeedbackOutcome, FeedbackRequest, FeedbackTarget};
use crate::request::{CachePolicy, CacheStatus, QueryOutcome, QueryRequest};
use crate::revalidate::{RevalidationLane, RevalidationStats};
use crate::snapstore::{PersistStats, SnapshotPersister};
use crate::system::{answer_keywords, learn_feedback, ServeParams};

/// One immutable published serving state: everything a reader needs to
/// answer a query, frozen at publish time. Cheap to share (`Arc`) and safe
/// to read from any number of threads.
#[derive(Debug)]
pub struct GraphSnapshot {
    id: u64,
    catalog: Catalog,
    graph: SearchGraph,
    keyword_index: KeywordIndex,
    /// Shard structure frozen with the snapshot: per-shard postings
    /// partitions and sub-CSRs, plus the byte accounting `/metrics`
    /// surfaces. Built once at publish time, always fresh by construction.
    shards: ShardSet,
}

impl GraphSnapshot {
    fn build(
        catalog: Catalog,
        graph: SearchGraph,
        keyword_index: KeywordIndex,
        shards: usize,
    ) -> Self {
        GraphSnapshot {
            id: graph.weight_epoch(),
            shards: ShardSet::build(&catalog, &graph, &keyword_index, shards),
            catalog,
            graph,
            keyword_index,
        }
    }

    /// Build a snapshot directly from a prepared catalog and search graph:
    /// the keyword index and shard structure are derived here, the id is
    /// stamped from the graph's weight epoch. This is the entry point for
    /// harnesses that assemble serving state out-of-band (e.g. the boot
    /// benchmark's synthetic corpus expansion) and then [`save`](Self::save)
    /// it or serve it via [`LiveServer::from_snapshot`].
    pub fn assemble(catalog: Catalog, graph: SearchGraph, shards: usize) -> GraphSnapshot {
        let keyword_index = KeywordIndex::build(&catalog);
        GraphSnapshot::build(catalog, graph, keyword_index, shards)
    }

    /// Snapshot id: the graph's weight epoch at publish time. Strictly
    /// increasing across publishes of one [`LiveServer`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Persist this snapshot to `path` in the versioned on-disk format
    /// (atomic: temp sibling + fsync + rename). The returned
    /// [`q_snap::SnapshotInfo`] reports per-section payload sizes.
    pub fn save(&self, path: &std::path::Path) -> Result<q_snap::SnapshotInfo, q_snap::SnapError> {
        q_snap::write_snapshot(
            path,
            &q_snap::SnapshotComponents {
                id: self.id,
                catalog: &self.catalog,
                graph: &self.graph,
                keyword: &self.keyword_index,
                shards: &self.shards,
            },
        )
    }

    /// Load a previously persisted snapshot, reconstructing the full
    /// serving state — catalog, search graph with packed CSR, keyword
    /// index, shard structure — without re-running matching or
    /// finalization. Every validation layer of the format (magic, version,
    /// checksums, decode invariants, cross-section consistency) runs before
    /// anything is assembled; any failure is a typed [`q_snap::SnapError`]
    /// and no partially-loaded snapshot escapes.
    pub fn load(
        path: &std::path::Path,
    ) -> Result<(GraphSnapshot, q_snap::SnapshotInfo), q_snap::SnapError> {
        let (parts, info) = q_snap::read_snapshot(path)?;
        // The id doubles as the cache epoch, and publishing stamps it from
        // the weight epoch — a file where they disagree was not produced by
        // `save`.
        if parts.id != parts.graph.weight_epoch() {
            return Err(q_snap::SnapError::Corrupt {
                context: "snapshot id disagrees with the graph's weight epoch",
            });
        }
        Ok((
            GraphSnapshot {
                id: parts.id,
                catalog: parts.catalog,
                graph: parts.graph,
                keyword_index: parts.keyword,
                shards: parts.shards,
            },
            info,
        ))
    }

    /// The catalog frozen into this snapshot.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The search graph frozen into this snapshot.
    pub fn graph(&self) -> &SearchGraph {
        &self.graph
    }

    /// The keyword index frozen into this snapshot.
    pub fn keyword_index(&self) -> &KeywordIndex {
        &self.keyword_index
    }

    /// The shard structure frozen into this snapshot.
    pub fn shard_set(&self) -> &ShardSet {
        &self.shards
    }

    /// Accounted heap bytes of the snapshot's packed search structures:
    /// every shard's interior sub-CSR and postings share plus the shared
    /// boundary section.
    pub fn snapshot_bytes(&self) -> u64 {
        self.shards.total_bytes()
    }

    /// Accounted heap bytes per shard (interior sub-CSR plus postings
    /// share), in shard order.
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.shards.shard_bytes()
    }

    /// The sequential reference answer of this snapshot for a request: a
    /// pure function of `(snapshot, request)`, computed fresh with no cache
    /// involvement. Concurrent serving is pinned against exactly this — the
    /// stress harness replays every observed outcome through it.
    pub fn answer(&self, config: &QConfig, request: &QueryRequest) -> Result<RankedView, QError> {
        request.validate()?;
        let refs: Vec<&str> = request.keywords().iter().map(String::as_str).collect();
        answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            config,
            &refs,
            ServeParams::resolve(config, request),
            false,
            Some(&self.shards),
            &mut SteinerScratch::default(),
        )
        .map(|(view, _, _)| view)
    }

    /// Recompute the answer a cache key describes against this snapshot,
    /// together with the re-validation model a re-admitted entry needs —
    /// the [`RevalidationLane`](crate::revalidate)'s ground-truth recompute.
    /// Cache keys hold normalized keywords, and normalization never changes
    /// the answer (that is what makes cache sharing across equivalent
    /// requests sound in the first place), so these are the bytes the
    /// original request would be served fresh.
    pub(crate) fn recompute_for_key(
        &self,
        config: &QConfig,
        key: &QueryKey,
        scratch: &mut SteinerScratch,
    ) -> Result<(RankedView, RevalidationModel), QError> {
        let refs: Vec<&str> = key.keywords.iter().map(String::as_str).collect();
        let (view, _, model) = answer_keywords(
            &self.catalog,
            &self.graph,
            &self.keyword_index,
            config,
            &refs,
            ServeParams::resolve_key(config, &key.params),
            true,
            Some(&self.shards),
            scratch,
        )?;
        Ok((view, model.expect("build_model always yields a model")))
    }
}

/// Report of one [`LiveServer::ingest_source`] publish.
#[derive(Debug)]
pub struct IngestReport {
    /// Id assigned to the new source.
    pub source: SourceId,
    /// The snapshot this ingestion published (readers switch to it).
    pub snapshot: Arc<GraphSnapshot>,
    /// Alignments the matchers proposed for the new columns, in the order
    /// their association edges were added.
    pub alignments: Vec<AttributeAlignment>,
    /// Cheapest new edge bridging the new source into the pre-existing
    /// graph ([`f64::INFINITY`] when unbridged) — the cheapest seed the
    /// per-entry reachability pricing started from.
    pub bridge_floor: f64,
    /// Cached entries the pricing proved safe at publish time.
    pub cache_kept: u64,
    /// Cached entries handed to the background re-validation lane (they
    /// miss until the lane re-admits them).
    pub cache_parked: u64,
    /// Cached entries dropped outright by the publish.
    pub cache_dropped: u64,
}

/// Point-in-time counters of a [`LiveServer`]'s shared answer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh computation.
    pub misses: u64,
    /// Entries dropped at publish/sync time.
    pub invalidations: u64,
    /// Entries carried across a publish by a survival rule.
    pub revalidations: u64,
    /// Live entries.
    pub len: usize,
}

struct WriterState {
    matchers: Vec<Box<dyn SchemaMatcher + Send>>,
    /// MIRA learner state for the network feedback lane — feedback is a
    /// writer-lane operation (it re-prices the graph and publishes), so the
    /// learner lives with the other writer state.
    mira: Mira,
}

/// Report of one [`LiveServer::feedback`] publish.
#[derive(Debug)]
pub struct LiveFeedbackReport {
    /// What the MIRA update did (constraints, violations, re-priced
    /// features).
    pub outcome: FeedbackOutcome,
    /// The re-priced snapshot this feedback published (readers switch to
    /// it).
    pub snapshot: Arc<GraphSnapshot>,
}

/// Snapshot-isolated serving engine: concurrent `&self` reads from an
/// immutable published [`GraphSnapshot`], a writer lane that incorporates
/// new sources without stopping them. See the module docs for the protocol.
pub struct LiveServer {
    config: QConfig,
    current: RwLock<Arc<GraphSnapshot>>,
    /// Shared with the re-validation lane's worker, which re-admits settled
    /// entries under this lock.
    cache: Arc<Mutex<QueryCache>>,
    writer: Mutex<WriterState>,
    /// Background re-validation lane: publishes deposit their parked cache
    /// entries here; the worker settles each by fresh recompute.
    revalidator: RevalidationLane,
    /// Background snapshot persistence lane ([`SnapshotPersister`]), off by
    /// default. Publishes deposit into its latest-only mailbox and never
    /// wait for the disk.
    persister: Option<SnapshotPersister>,
}

thread_local! {
    /// Per-thread Steiner scratch: readers answer many misses in a row, and
    /// the generation-stamped buffers make starting the next search O(1) —
    /// they must not be rebuilt per query (mirrors the batch workers).
    static SCRATCH: std::cell::RefCell<SteinerScratch> =
        std::cell::RefCell::new(SteinerScratch::default());
}

impl LiveServer {
    /// Build a live server over an initial catalog: the initial search
    /// graph and keyword index are constructed and published as snapshot
    /// zero's state. No matchers are registered yet.
    pub fn new(catalog: Catalog, config: QConfig) -> Self {
        let graph = SearchGraph::from_catalog(&catalog);
        let keyword_index = KeywordIndex::build(&catalog);
        let snapshot = GraphSnapshot::build(catalog, graph, keyword_index, config.shards);
        Self::from_snapshot(snapshot, config)
    }

    /// Build a live server directly over an existing snapshot — the
    /// boot-from-disk path: pair with [`GraphSnapshot::load`] to start
    /// serving the persisted state without re-running graph construction,
    /// matching or finalization. The snapshot's frozen shard structure is
    /// served as-is; later publishes shard per `config.shards` as usual.
    pub fn from_snapshot(snapshot: GraphSnapshot, config: QConfig) -> Self {
        let snapshot = Arc::new(snapshot);
        let mut cache = QueryCache::default();
        cache.sync_epoch(snapshot.graph.weight_epoch(), &snapshot.graph);
        let cache = Arc::new(Mutex::new(cache));
        LiveServer {
            revalidator: RevalidationLane::start(config, Arc::clone(&cache)),
            config,
            current: RwLock::new(snapshot),
            cache,
            writer: Mutex::new(WriterState {
                matchers: Vec::new(),
                mira: Mira::new(),
            }),
            persister: None,
        }
    }

    /// Turn on the background persistence lane: every publish (ingestion,
    /// association, feedback) deposits its snapshot for asynchronous
    /// persistence into `dir`, keeping the newest `keep_last` files. The
    /// currently published snapshot is deposited immediately, so a freshly
    /// built server persists its boot state without waiting for the first
    /// publish.
    pub fn enable_persistence(
        &mut self,
        dir: std::path::PathBuf,
        keep_last: usize,
    ) -> Result<(), q_snap::SnapError> {
        let persister = SnapshotPersister::start(dir, keep_last)?;
        persister.enqueue(self.snapshot());
        self.persister = Some(persister);
        Ok(())
    }

    /// Counters of the persistence lane (`None` while persistence is off).
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persister.as_ref().map(SnapshotPersister::stats)
    }

    /// Block until every deposited snapshot has been written. No-op while
    /// persistence is off.
    pub fn flush_persistence(&self) {
        if let Some(p) = &self.persister {
            p.flush();
        }
    }

    fn deposit_for_persistence(&self, snapshot: &Arc<GraphSnapshot>) {
        if let Some(p) = &self.persister {
            p.enqueue(Arc::clone(snapshot));
        }
    }

    /// Register a schema matcher consulted (in registration order) when new
    /// sources are ingested. `Send` because the writer lane may run from any
    /// thread.
    pub fn add_matcher(&mut self, matcher: Box<dyn SchemaMatcher + Send>) {
        self.writer
            .get_mut()
            .expect("writer lock poisoned")
            .matchers
            .push(matcher);
    }

    /// Replace the answer cache with an empty one holding `capacity` views.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        let snapshot = self.snapshot();
        let mut cache = QueryCache::with_capacity(capacity);
        cache.sync_epoch(snapshot.graph.weight_epoch(), &snapshot.graph);
        *self.cache.lock().expect("cache lock poisoned") = cache;
    }

    /// Counters of the background re-validation lane.
    pub fn revalidation_stats(&self) -> RevalidationStats {
        self.revalidator.stats()
    }

    /// Block until every parked cache entry has been settled by the
    /// re-validation lane.
    pub fn flush_revalidation(&self) {
        self.revalidator.flush();
    }

    /// The serving configuration.
    pub fn config(&self) -> &QConfig {
        &self.config
    }

    /// The currently published snapshot. The internal lock is held only for
    /// the `Arc` clone; the returned snapshot stays valid (and immutable)
    /// however many publishes happen after.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Counters of the shared answer cache.
    pub fn cache_stats(&self) -> LiveCacheStats {
        let cache = self.cache.lock().expect("cache lock poisoned");
        LiveCacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            invalidations: cache.invalidations(),
            revalidations: cache.revalidations(),
            len: cache.len(),
        }
    }

    /// Answer one typed request against the currently published snapshot,
    /// through `&self` — any number of readers serve concurrently, and none
    /// of them blocks on the writer lane.
    ///
    /// The returned [`QueryOutcome::snapshot`] names the snapshot the
    /// answer is a sequential answer of: the captured one for a fresh
    /// computation, the entry's original pricing snapshot for a cache hit
    /// (an entry surviving a publish keeps reporting its own snapshot).
    pub fn query(&self, request: &QueryRequest) -> Result<QueryOutcome, QError> {
        request.validate()?;
        let snapshot = self.snapshot();
        let refs: Vec<&str> = request.keywords().iter().map(String::as_str).collect();
        let key = (request.cache() != CachePolicy::Bypass).then(|| QueryKey {
            keywords: normalize_keywords(&refs),
            params: request.params_key(),
        });
        if request.cache() == CachePolicy::Cached {
            let key = key.as_ref().expect("cached policy builds a key");
            let hit = self.cache.lock().expect("cache lock poisoned").get(key);
            if let Some(hit) = hit {
                return Ok(QueryOutcome {
                    view: hit.view,
                    cache: if hit.revalidated {
                        CacheStatus::Revalidated
                    } else {
                        CacheStatus::Hit
                    },
                    weight_epoch: hit.snapshot,
                    steiner: None,
                    wall_time: std::time::Duration::ZERO,
                    snapshot: Some(hit.snapshot),
                });
            }
        }

        let start = Instant::now();
        let params = ServeParams::resolve(&self.config, request);
        let build_model = request.cache() != CachePolicy::Bypass;
        let (view, stats, model) = SCRATCH.with(|scratch| {
            answer_keywords(
                &snapshot.catalog,
                &snapshot.graph,
                &snapshot.keyword_index,
                &self.config,
                &refs,
                params,
                build_model,
                Some(&snapshot.shards),
                &mut scratch.borrow_mut(),
            )
        })?;
        let wall_time = start.elapsed();
        let view = Arc::new(view);
        let cache = match request.cache() {
            CachePolicy::Bypass => CacheStatus::Bypassed,
            policy => {
                // Insert only when the computed answer still belongs to the
                // current epoch: a publish that raced this computation has
                // already re-validated the cache for its own snapshot, and a
                // stale insert would undo that. The requester still gets its
                // (snapshot-consistent) answer either way.
                let mut cache = self.cache.lock().expect("cache lock poisoned");
                if cache.epoch() == snapshot.id {
                    cache.insert(
                        key.expect("non-bypass policy builds a key"),
                        Arc::clone(&view),
                        model.expect("non-bypass policy builds a model"),
                    );
                }
                if policy == CachePolicy::Refresh {
                    CacheStatus::Refreshed
                } else {
                    CacheStatus::Miss
                }
            }
        };
        Ok(QueryOutcome {
            view,
            cache,
            weight_epoch: snapshot.graph.weight_epoch(),
            steiner: Some(stats),
            wall_time,
            snapshot: Some(snapshot.id),
        })
    }

    /// Incorporate a new source end-to-end and publish the next snapshot,
    /// without stopping reads: incremental catalog registration, search
    /// graph growth (delta-merged CSR), keyword-index append, matcher
    /// scoring of only the new columns, cache survival, pointer swap.
    ///
    /// Writers serialize on the writer lane; readers never wait on it.
    pub fn ingest_source(&self, spec: &SourceSpec) -> Result<IngestReport, QError> {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();

        // Build the next snapshot off to the side.
        let (catalog, source) =
            spec.load_incremental(&base.catalog)
                .map_err(|source| QError::SourceLoad {
                    source_name: spec.name.clone(),
                    source,
                })?;
        let mut graph = base.graph.clone();
        let old_nodes = graph.node_count();
        let old_edges = graph.edge_count();
        graph.add_source(&catalog, source);
        let mut keyword_index = base.keyword_index.clone();
        let new_relations: Vec<RelationId> = catalog
            .source(source)
            .map(|s| s.relations.clone())
            .unwrap_or_default();
        for rel in &new_relations {
            keyword_index.add_relation(&catalog, *rel);
        }
        let mut alignments: Vec<AttributeAlignment> = Vec::new();
        for matcher in &writer.matchers {
            let proposed = matcher.match_source(&catalog, source, self.config.top_y);
            for a in &proposed {
                graph.add_association(
                    a.new_attribute,
                    a.existing_attribute,
                    matcher.name(),
                    a.confidence,
                );
            }
            alignments.extend(proposed);
        }

        // Every new edge touching the pre-existing graph seeds the
        // per-entry reachability pricing: any join tree the ingestion
        // enables for an old query crosses one of these bridges, so both
        // endpoints enter the multi-source Dijkstra at the bridge's cost.
        let bridge_seeds: Vec<(q_graph::NodeId, f64)> = graph.edges()[old_edges..]
            .iter()
            .filter(|e| e.a.index() < old_nodes || e.b.index() < old_nodes)
            .flat_map(|e| {
                let cost = graph.edge_cost(e.id);
                [(e.a, cost), (e.b, cost)]
            })
            .collect();
        let bridge_floor = bridge_seeds
            .iter()
            .map(|&(_, cost)| cost)
            .fold(f64::INFINITY, f64::min);

        let next = Arc::new(GraphSnapshot::build(
            catalog,
            graph,
            keyword_index,
            self.config.shards,
        ));
        let sync = {
            let delta = IngestionDelta {
                catalog: &next.catalog,
                keyword_index: &next.keyword_index,
                match_config: &self.config.match_config,
                new_relations: &new_relations,
                graph: &next.graph,
                bridge_seeds: &bridge_seeds,
                edge_count: next.graph.edge_count(),
            };
            // Sync the cache before the pointer swap: from this moment on,
            // stale in-flight computations fail the insert epoch guard.
            self.cache
                .lock()
                .expect("cache lock poisoned")
                .sync_ingestion(next.id, &delta)
        };
        *self.current.write().expect("snapshot lock poisoned") = Arc::clone(&next);
        let cache_parked = sync.parked.len() as u64;
        self.revalidator.enqueue(Arc::clone(&next), sync.parked);
        self.deposit_for_persistence(&next);
        drop(writer);

        Ok(IngestReport {
            source,
            snapshot: next,
            alignments,
            bridge_floor,
            cache_kept: sync.kept,
            cache_parked,
            cache_dropped: sync.dropped,
        })
    }

    /// Add a hand-coded association edge between two attributes and publish
    /// the resulting snapshot. A brand-new edge goes through the ingestion
    /// survival rule (it is a pure bridge publish: no new relations, floor =
    /// the edge's cost); an update merged into an existing edge is a
    /// re-pricing and goes through the epoch-delta revalidation rule.
    pub fn publish_association(
        &self,
        a: AttributeId,
        b: AttributeId,
        confidence: f64,
    ) -> Arc<GraphSnapshot> {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        let mut graph = base.graph.clone();
        let old_edges = graph.edge_count();
        let edge = graph.add_association(a, b, "manual", confidence);
        let grew = graph.edge_count() > old_edges;
        let next = Arc::new(GraphSnapshot::build(
            base.catalog.clone(),
            graph,
            base.keyword_index.clone(),
            self.config.shards,
        ));
        let parked = {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            if grew {
                // A pure bridge publish: the one new edge seeds the
                // per-entry pricing from both its endpoints.
                let cost = next.graph.edge_cost(edge);
                let e = &next.graph.edges()[edge.index()];
                let bridge_seeds = [(e.a, cost), (e.b, cost)];
                let delta = IngestionDelta {
                    catalog: &next.catalog,
                    keyword_index: &next.keyword_index,
                    match_config: &self.config.match_config,
                    new_relations: &[],
                    graph: &next.graph,
                    bridge_seeds: &bridge_seeds,
                    edge_count: next.graph.edge_count(),
                };
                cache.sync_ingestion(next.id, &delta).parked
            } else {
                // Merged matcher opinion: same topology, re-priced edge.
                // Entries whose costs the merge touched must drop — a live
                // hit reports the snapshot that priced it, so in-place
                // re-pricing (the QSystem sync_epoch rule) would serve
                // bytes the named snapshot never produced.
                cache.sync_repricing_publish(next.id, &next.graph);
                Vec::new()
            }
        };
        *self.current.write().expect("snapshot lock poisoned") = Arc::clone(&next);
        self.revalidator.enqueue(Arc::clone(&next), parked);
        self.deposit_for_persistence(&next);
        drop(writer);
        next
    }

    /// Apply user feedback to the live model and publish the re-priced
    /// snapshot, without stopping reads.
    ///
    /// Live serving has no persistent views, so the request must target a
    /// keyword query ([`FeedbackTarget::Keywords`]); the annotated answers
    /// are the current snapshot's sequential answer for those keywords —
    /// exactly the bytes a [`query`](Self::query) against this snapshot
    /// serves, so answer indices in the annotation line up with what the
    /// user saw. [`FeedbackTarget::View`] is rejected as an invalid request.
    ///
    /// The MIRA update re-prices association edges (same topology, new
    /// weights), so the publish runs the cache's re-pricing survival rule:
    /// entries whose costs moved drop, bit-identical ones survive.
    pub fn feedback(&self, request: &FeedbackRequest) -> Result<LiveFeedbackReport, QError> {
        let FeedbackTarget::Keywords(keywords) = request.target() else {
            return Err(QError::InvalidRequest {
                field: "target",
                reason: "live serving has no persistent views — target feedback by \
                         keywords"
                    .into(),
            });
        };
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();

        // The view being annotated: the snapshot's sequential answer.
        let query = QueryRequest::new(keywords.iter().cloned());
        let view = base.answer(&self.config, &query)?;

        let mut graph = base.graph.clone();
        let outcome = learn_feedback(
            &mut graph,
            &base.keyword_index,
            &self.config,
            &mut writer.mira,
            &view,
            0,
            request.feedback(),
        )?;
        let next = Arc::new(GraphSnapshot::build(
            base.catalog.clone(),
            graph,
            base.keyword_index.clone(),
            self.config.shards,
        ));
        // Weights-only publish: drop re-priced entries, keep bit-identical
        // ones. Sync before the pointer swap so stale in-flight inserts
        // fail the epoch guard.
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .sync_repricing_publish(next.id, &next.graph);
        *self.current.write().expect("snapshot lock poisoned") = Arc::clone(&next);
        self.deposit_for_persistence(&next);
        drop(writer);

        Ok(LiveFeedbackReport {
            outcome,
            snapshot: next,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Feedback;
    use crate::request::SearchStrategy;
    use q_matchers::MetadataMatcher;
    use q_storage::RelationSpec;

    fn base_specs() -> Vec<SourceSpec> {
        vec![
            SourceSpec::new("go").relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            ),
            SourceSpec::new("interpro")
                .relation(
                    RelationSpec::new("interpro2go", &["go_id", "entry_ac"])
                        .row(["GO:1", "IPR01"])
                        .row(["GO:2", "IPR02"]),
                )
                .relation(
                    RelationSpec::new("entry", &["entry_ac", "name"])
                        .row(["IPR01", "Kringle domain"])
                        .row(["IPR02", "Cytokine receptor"]),
                )
                .foreign_key("interpro2go.entry_ac", "entry.entry_ac"),
        ]
    }

    fn new_pub_source() -> SourceSpec {
        SourceSpec::new("pubdb").relation(
            RelationSpec::new("pub", &["pub_id", "entry_ac", "title"])
                .row(["P1", "IPR01", "Kringle structure determination"])
                .row(["P2", "IPR02", "Cytokine signalling review"]),
        )
    }

    fn server() -> LiveServer {
        let catalog = q_storage::loader::load_catalog(&base_specs()).expect("catalog loads");
        let mut server = LiveServer::new(catalog, QConfig::default());
        server.add_matcher(Box::new(MetadataMatcher::new()));
        server
    }

    #[test]
    fn serves_through_shared_references_with_snapshot_provenance() {
        let server = server();
        let snap = server.snapshot();
        let acc = snap.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        let published = server.publish_association(acc, go_id, 0.95);
        assert!(published.id() > snap.id());

        let request = QueryRequest::new(["plasma membrane", "entry"]);
        let miss = server.query(&request).unwrap();
        assert_eq!(miss.cache, CacheStatus::Miss);
        assert_eq!(miss.snapshot, Some(published.id()));
        assert!(!miss.view.answers.is_empty());
        // The outcome is byte-identical to the snapshot's sequential answer.
        let reference = published.answer(server.config(), &request).unwrap();
        assert_eq!(&*miss.view, &reference);

        let hit = server.query(&request).unwrap();
        assert_eq!(hit.cache, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&miss.view, &hit.view));
        assert_eq!(hit.snapshot, Some(published.id()));
        assert_eq!(server.cache_stats().hits, 1);
    }

    #[test]
    fn ingest_publishes_a_new_snapshot_without_touching_old_readers() {
        let server = server();
        let snap0 = server.snapshot();
        let acc = snap0.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap0
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        server.publish_association(acc, go_id, 0.95);
        let before = server.snapshot();
        let request = QueryRequest::new(["plasma membrane", "title"]);
        let empty = server.query(&request).unwrap();
        assert!(empty.view.answers.is_empty(), "no title column yet");

        let report = server.ingest_source(&new_pub_source()).unwrap();
        assert!(!report.alignments.is_empty(), "matcher scored new columns");
        assert!(report.bridge_floor.is_finite(), "source is bridged");
        assert!(report.snapshot.id() > before.id());
        assert_eq!(server.snapshot().id(), report.snapshot.id());
        // The new source's columns landed in the catalog/graph/index.
        assert!(report
            .snapshot
            .catalog()
            .resolve_qualified("pub.title")
            .is_some());

        // A reader holding the old snapshot still gets the old bytes.
        let stale = before.answer(server.config(), &request).unwrap();
        assert!(stale.answers.is_empty());
        // New queries see the publication titles.
        let fresh = server.query(&request).unwrap();
        assert_eq!(fresh.snapshot, Some(report.snapshot.id()));
        assert!(
            fresh
                .view
                .answers
                .iter()
                .any(|a| a.values.iter().flatten().any(
                    |v| matches!(v, q_storage::Value::Text(s) if s.contains("Kringle structure"))
                )),
            "answers: {:?}",
            fresh.view.answers
        );
    }

    #[test]
    fn ingest_applies_the_cache_survival_rule() {
        let server = server();
        let snap0 = server.snapshot();
        let acc = snap0.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap0
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        server.publish_association(acc, go_id, 0.95);
        // Warm two entries: one whose keywords the new source matches (it
        // must at least leave the cache for re-validation) and one with
        // keywords the new source cannot touch *and* a full ranked list
        // (may be kept outright if the pricing allows).
        let touched = QueryRequest::new(["entry ac", "title"]);
        let safe = QueryRequest::new(["plasma membrane"]).top_k(1);
        server.query(&touched).unwrap();
        let safe_before = server.query(&safe).unwrap();

        let report = server.ingest_source(&new_pub_source()).unwrap();
        assert!(
            report.cache_parked >= 1,
            "the touched entry cannot be proven safe at publish time"
        );
        // Settle the lane so the outcome below is deterministic. Whatever
        // each entry's fate was, a repeat request must be byte-consistent
        // with the sequential answer of the snapshot it reports.
        server.flush_revalidation();
        let after = server.query(&safe).unwrap();
        let snapshot_of = after.snapshot.expect("live serving stamps snapshots");
        if after.cache == CacheStatus::Revalidated {
            if snapshot_of == safe_before.snapshot.unwrap() {
                // Kept — at publish time or by the lane's byte-equal proof.
                assert!(Arc::ptr_eq(&safe_before.view, &after.view));
            } else {
                // Re-priced by the lane: fresh bytes under the new snapshot.
                assert_eq!(snapshot_of, report.snapshot.id());
                let reference = report.snapshot.answer(server.config(), &safe).unwrap();
                assert_eq!(&*after.view, &reference);
            }
        } else {
            assert_eq!(snapshot_of, report.snapshot.id());
            let reference = report.snapshot.answer(server.config(), &safe).unwrap();
            assert_eq!(&*after.view, &reference);
        }
        // The lane settled everything it was handed.
        let lane = server.revalidation_stats();
        assert_eq!(lane.depth, 0);
        assert_eq!(
            lane.kept + lane.repriced + lane.dropped,
            report.cache_parked
        );
    }

    #[test]
    fn bypass_and_exact_strategies_serve_from_the_snapshot_too() {
        let server = server();
        let snap = server.snapshot();
        let acc = snap.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        let published = server.publish_association(acc, go_id, 0.95);
        let request = QueryRequest::new(["plasma membrane", "entry"])
            .cache_policy(CachePolicy::Bypass)
            .strategy(SearchStrategy::Exact);
        let outcome = server.query(&request).unwrap();
        assert_eq!(outcome.cache, CacheStatus::Bypassed);
        assert_eq!(outcome.snapshot, Some(published.id()));
        assert_eq!(server.cache_stats().len, 0, "bypass never populates");
        let reference = published.answer(server.config(), &request).unwrap();
        assert_eq!(&*outcome.view, &reference);
    }

    #[test]
    fn merge_repricing_publish_never_serves_repriced_bytes_under_an_old_snapshot() {
        let server = server();
        let snap = server.snapshot();
        let acc = snap.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        let first = server.publish_association(acc, go_id, 0.5);

        // Two warm entries: one whose trees cross the association edge, one
        // (single-keyword, single-relation) that cannot.
        let crossing = QueryRequest::new(["plasma membrane", "entry"]);
        let local = QueryRequest::new(["kinase activity"]);
        let crossing_before = server.query(&crossing).unwrap();
        let local_before = server.query(&local).unwrap();
        assert!(!crossing_before.view.queries.is_empty());

        // Re-assert the same pair at a different confidence: the opinion
        // merges into the existing edge — same topology, new price.
        let second = server.publish_association(acc, go_id, 0.9);
        assert!(second.id() > first.id());
        assert_eq!(
            second.graph().edge_count(),
            first.graph().edge_count(),
            "fixture: the publish must be a merge, not a new edge"
        );

        // The touched entry dropped: recomputed against (and stamped with)
        // the new snapshot, byte-identical to its sequential answer.
        let crossing_after = server.query(&crossing).unwrap();
        assert_eq!(crossing_after.cache, CacheStatus::Miss);
        assert_eq!(crossing_after.snapshot, Some(second.id()));
        let reference = second.answer(server.config(), &crossing).unwrap();
        assert_eq!(&*crossing_after.view, &reference);
        assert_ne!(
            crossing_before.view.queries[0].cost.to_bits(),
            crossing_after.view.queries[0].cost.to_bits(),
            "fixture: the merge must actually re-price the crossing query"
        );

        // The untouched entry survived verbatim: same bytes, and still the
        // provenance of the snapshot that priced it — which still replays
        // exactly.
        let local_after = server.query(&local).unwrap();
        assert_eq!(local_after.cache, CacheStatus::Revalidated);
        assert!(Arc::ptr_eq(&local_before.view, &local_after.view));
        assert_eq!(local_after.snapshot, local_before.snapshot);
        let old_reference = first.answer(server.config(), &local).unwrap();
        assert_eq!(&*local_after.view, &old_reference);
    }

    #[test]
    fn feedback_republishes_a_repriced_snapshot() {
        let server = server();
        let snap = server.snapshot();
        let acc = snap.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        let entry_name = snap.catalog().resolve_qualified("entry.name").unwrap();
        let term_name = snap.catalog().resolve_qualified("go_term.name").unwrap();
        // One good association and one bad one, so the annotated view has
        // alternative trees to rank against.
        server.publish_association(acc, go_id, 0.9);
        server.publish_association(term_name, entry_name, 0.9);

        // Warm two cache entries: one whose trees cross the association
        // edges (its price will move) and one single-relation query that
        // cannot be touched by a weights-only publish.
        let crossing = QueryRequest::new(["plasma membrane", "entry"]);
        let local = QueryRequest::new(["kinase activity"]);
        let crossing_before = server.query(&crossing).unwrap();
        let local_before = server.query(&local).unwrap();
        assert!(
            crossing_before.view.queries.len() >= 2,
            "fixture: need alternative trees"
        );
        let before = server.snapshot();

        // Marking the top answer invalid forces its (currently cheapest)
        // query to cost more than the best alternative — the constraint is
        // violated by construction, so weights must move.
        let report = server
            .feedback(&FeedbackRequest::on_keywords(
                ["plasma membrane", "entry"],
                Feedback::Invalid { answer: 0 },
            ))
            .unwrap();
        assert!(report.outcome.constraints > 0);
        assert!(report.outcome.initially_violated > 0);
        assert!(report.outcome.repriced_features > 0);
        assert!(report.snapshot.id() > before.id());
        assert_eq!(server.snapshot().id(), report.snapshot.id());
        assert!(
            report.snapshot.graph().min_learnable_edge_cost().unwrap() > 0.0,
            "edge costs stay positive after learning"
        );

        // The re-priced entry dropped: a repeat is recomputed against (and
        // stamped with) the feedback snapshot, byte-identical to its
        // sequential answer.
        let crossing_after = server.query(&crossing).unwrap();
        assert_eq!(crossing_after.cache, CacheStatus::Miss);
        assert_eq!(crossing_after.snapshot, Some(report.snapshot.id()));
        let reference = report.snapshot.answer(server.config(), &crossing).unwrap();
        assert_eq!(&*crossing_after.view, &reference);

        // The untouched entry survived verbatim with its original
        // provenance.
        let local_after = server.query(&local).unwrap();
        assert_eq!(local_after.cache, CacheStatus::Revalidated);
        assert!(Arc::ptr_eq(&local_before.view, &local_after.view));
        assert_eq!(local_after.snapshot, local_before.snapshot);
    }

    #[test]
    fn feedback_rejects_view_targets_and_publishes_nothing_on_error() {
        let server = server();
        let before = server.snapshot();
        let err = server
            .feedback(&FeedbackRequest::on_view(
                0,
                Feedback::Correct { answer: 0 },
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            QError::InvalidRequest {
                field: "target",
                ..
            }
        ));

        // Annotating an answer the query does not have fails without
        // publishing.
        let snap = server.snapshot();
        let acc = snap.catalog().resolve_qualified("go_term.acc").unwrap();
        let go_id = snap
            .catalog()
            .resolve_qualified("interpro2go.go_id")
            .unwrap();
        let published = server.publish_association(acc, go_id, 0.9);
        let err = server
            .feedback(&FeedbackRequest::on_keywords(
                ["plasma membrane", "entry"],
                Feedback::Correct { answer: 10_000 },
            ))
            .unwrap_err();
        assert!(matches!(err, QError::UnknownAnswer { .. }));
        assert_eq!(server.snapshot().id(), published.id());
        assert!(server.snapshot().id() > before.id());
    }

    #[test]
    fn failed_ingest_publishes_nothing() {
        let server = server();
        let before = server.snapshot();
        let bad = SourceSpec::new("bad")
            .relation(RelationSpec::new("t", &["a"]))
            .foreign_key("t.a", "missing.b");
        let err = server.ingest_source(&bad).unwrap_err();
        assert!(matches!(err, QError::SourceLoad { .. }));
        let after = server.snapshot();
        assert_eq!(before.id(), after.id());
        assert!(after.catalog().source_by_name("bad").is_none());
    }
}
