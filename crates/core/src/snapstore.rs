//! On-disk snapshot store management: the background persistence lane and
//! the boot-time directory scan.
//!
//! Persistence must never slow publishing down — a publish is a pointer
//! swap, and disks are slow. The [`SnapshotPersister`] therefore runs a
//! single background thread fed through a **latest-only mailbox**: a
//! publish deposits its `Arc<GraphSnapshot>` into a one-slot mailbox and
//! returns immediately. If the writer thread is still busy with an earlier
//! snapshot when the next publish lands, the mailbox slot is *replaced* —
//! the superseded snapshot is simply never written (it is counted, not
//! queued), so a slow disk degrades snapshot freshness, never publish
//! latency, and the writer always catches up to the newest state in one
//! write.
//!
//! Snapshots are written as `snap-<id>.qsnap` (the id is the snapshot id,
//! strictly increasing across publishes) and retention keeps the newest `N`
//! files; [`latest_snapshot_path`] picks the highest id at boot.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use q_snap::SnapError;

use crate::live::GraphSnapshot;

/// File-name prefix of persisted snapshots.
const FILE_PREFIX: &str = "snap-";
/// File-name suffix of persisted snapshots.
const FILE_SUFFIX: &str = ".qsnap";

/// Snapshot file name for an id.
pub fn snapshot_file_name(id: u64) -> String {
    format!("{FILE_PREFIX}{id}{FILE_SUFFIX}")
}

fn parse_snapshot_id(file_name: &str) -> Option<u64> {
    file_name
        .strip_prefix(FILE_PREFIX)?
        .strip_suffix(FILE_SUFFIX)?
        .parse()
        .ok()
}

/// Path of the newest (highest-id) snapshot file in `dir`, if any. Foreign
/// files are ignored; a missing directory is simply "no snapshot".
pub fn latest_snapshot_path(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let id = parse_snapshot_id(name.to_str()?)?;
            Some((id, e.path()))
        })
        .max_by_key(|(id, _)| *id)
        .map(|(_, path)| path)
}

/// Point-in-time counters of a [`SnapshotPersister`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Snapshots written to disk.
    pub persisted: u64,
    /// Write attempts that failed (the lane keeps running).
    pub failed: u64,
    /// Snapshots replaced in the mailbox before being written — the
    /// catch-up rule skipping intermediate states under a slow disk.
    pub superseded: u64,
    /// Id of the newest successfully persisted snapshot (0 before the
    /// first write).
    pub last_persisted_id: u64,
}

#[derive(Default)]
struct Mailbox {
    next: Option<Arc<GraphSnapshot>>,
    in_flight: bool,
    shutdown: bool,
}

struct Shared {
    mailbox: Mutex<Mailbox>,
    /// Signals the worker (new deposit / shutdown) and flush waiters
    /// (write finished).
    signal: Condvar,
    persisted: AtomicU64,
    failed: AtomicU64,
    superseded: AtomicU64,
    last_persisted_id: AtomicU64,
}

/// Background snapshot persistence lane. See the module docs for the
/// mailbox protocol. Dropping the persister flushes any deposited snapshot
/// and joins the worker thread.
pub struct SnapshotPersister {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
    dir: PathBuf,
}

impl std::fmt::Debug for SnapshotPersister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPersister")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SnapshotPersister {
    /// Start the lane writing into `dir`, keeping the newest `keep_last`
    /// snapshot files (clamped to at least 1). The directory is created if
    /// missing.
    pub fn start(dir: PathBuf, keep_last: usize) -> Result<Self, SnapError> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapError::io("creating snapshot directory", e))?;
        let shared = Arc::new(Shared {
            mailbox: Mutex::new(Mailbox::default()),
            signal: Condvar::new(),
            persisted: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            superseded: AtomicU64::new(0),
            last_persisted_id: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker_dir = dir.clone();
        let keep_last = keep_last.max(1);
        let handle = std::thread::Builder::new()
            .name("snap-persist".into())
            .spawn(move || worker_loop(worker_shared, worker_dir, keep_last))
            .map_err(|e| SnapError::io("spawning persistence thread", e))?;
        Ok(SnapshotPersister {
            shared,
            handle: Some(handle),
            dir,
        })
    }

    /// The directory snapshots are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Deposit a snapshot for persistence and return immediately. An
    /// unwritten earlier deposit is superseded (counted, never written).
    pub fn enqueue(&self, snapshot: Arc<GraphSnapshot>) {
        let mut mailbox = self.shared.mailbox.lock().expect("persist lock poisoned");
        if mailbox.next.replace(snapshot).is_some() {
            self.shared.superseded.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.signal.notify_all();
    }

    /// Block until every deposited snapshot has been written (or failed).
    pub fn flush(&self) {
        let mut mailbox = self.shared.mailbox.lock().expect("persist lock poisoned");
        while mailbox.next.is_some() || mailbox.in_flight {
            mailbox = self
                .shared
                .signal
                .wait(mailbox)
                .expect("persist lock poisoned");
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            persisted: self.shared.persisted.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            superseded: self.shared.superseded.load(Ordering::Relaxed),
            last_persisted_id: self.shared.last_persisted_id.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SnapshotPersister {
    fn drop(&mut self) {
        {
            let mut mailbox = self.shared.mailbox.lock().expect("persist lock poisoned");
            mailbox.shutdown = true;
            self.shared.signal.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, dir: PathBuf, keep_last: usize) {
    loop {
        let snapshot = {
            let mut mailbox = shared.mailbox.lock().expect("persist lock poisoned");
            loop {
                if let Some(snapshot) = mailbox.next.take() {
                    mailbox.in_flight = true;
                    break snapshot;
                }
                if mailbox.shutdown {
                    return;
                }
                mailbox = shared.signal.wait(mailbox).expect("persist lock poisoned");
            }
        };
        let path = dir.join(snapshot_file_name(snapshot.id()));
        match snapshot.save(&path) {
            Ok(_) => {
                shared.persisted.fetch_add(1, Ordering::Relaxed);
                shared
                    .last_persisted_id
                    .store(snapshot.id(), Ordering::Relaxed);
                prune(&dir, keep_last);
            }
            Err(_) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut mailbox = shared.mailbox.lock().expect("persist lock poisoned");
        mailbox.in_flight = false;
        shared.signal.notify_all();
    }
}

/// Remove all but the newest `keep_last` snapshot files. Best effort:
/// retention failures never take the lane down.
fn prune(dir: &Path, keep_last: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut snapshots: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let id = parse_snapshot_id(name.to_str()?)?;
            Some((id, e.path()))
        })
        .collect();
    snapshots.sort_unstable_by_key(|(id, _)| std::cmp::Reverse(*id));
    for (_, path) in snapshots.into_iter().skip(keep_last) {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_round_trip_and_sort_by_id() {
        assert_eq!(snapshot_file_name(17), "snap-17.qsnap");
        assert_eq!(parse_snapshot_id("snap-17.qsnap"), Some(17));
        assert_eq!(parse_snapshot_id("snap-.qsnap"), None);
        assert_eq!(parse_snapshot_id("other-17.qsnap"), None);
        assert_eq!(parse_snapshot_id("snap-17.tmp"), None);
    }

    #[test]
    fn latest_picks_the_highest_id_and_ignores_foreign_files() {
        let dir = std::env::temp_dir().join(format!("q-snapstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(latest_snapshot_path(&dir), None, "missing dir is none");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_snapshot_path(&dir), None, "empty dir is none");
        for name in ["snap-3.qsnap", "snap-12.qsnap", "snap-9.qsnap", "junk.txt"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        assert_eq!(
            latest_snapshot_path(&dir),
            Some(dir.join("snap-12.qsnap")),
            "numeric id ordering, not lexicographic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
