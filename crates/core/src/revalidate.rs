//! Background re-validation lane: parked cache entries are re-priced off
//! the publish path, so conservatism never costs a reader a cold start.
//!
//! [`QueryCache::sync_ingestion`](crate::QueryCache::sync_ingestion) is a
//! cheap lower-bound test — entries it cannot *prove* safe are parked, not
//! dropped, because most of them are in fact untouched (the bound prices
//! the delta's reach, not the actual new top-k). The [`RevalidationLane`]
//! settles each parked entry with the ground truth: a fresh recompute of
//! the entry's request against the snapshot that parked it, off the writer
//! and reader paths, on a single background thread fed through the same
//! **latest-only mailbox** as the persistence lane
//! ([`SnapshotPersister`](crate::SnapshotPersister)). A publish deposits
//! its batch of parked entries and returns immediately; if a newer publish
//! lands before the worker drains the batch, the superseded batch is
//! discarded wholesale (counted as dropped — its snapshot is no longer
//! current, so its recomputes could never be re-admitted anyway).
//!
//! Per entry the worker recomputes, then re-admits under the cache lock
//! only if the cache epoch still names the batch's snapshot:
//!
//! * **kept** — the recompute found the same answer (same trees, same
//!   costs, same projected columns; view bytes are compared in search-graph
//!   terms because each publish renumbers query-graph terminal ids): the
//!   ingestion did not touch this answer after all. The original `Arc` goes
//!   back in under its *original* pricing snapshot, whose sequential answer
//!   it is byte-identical to.
//! * **repriced** — the answer changed: the fresh view is admitted under
//!   the batch's snapshot id. The next hit serves the new bytes warm.
//! * **dropped** — a newer publish won the race (or superseded the batch):
//!   the entry misses normally next time.
//!
//! Either way the byte contract holds: everything the cache serves is the
//! sequential answer of the snapshot stamped on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use q_graph::SteinerScratch;

use crate::cache::{ParkedEntry, QueryCache};
use crate::config::QConfig;
use crate::live::GraphSnapshot;

/// Point-in-time counters of a [`RevalidationLane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevalidationStats {
    /// Parked entries whose recompute found the same answer (same trees,
    /// costs and columns) — re-admitted under their original pricing
    /// snapshot.
    pub kept: u64,
    /// Parked entries whose recompute differed — re-admitted with the fresh
    /// bytes under the parking snapshot.
    pub repriced: u64,
    /// Parked entries discarded: superseded by a newer publish, beaten to
    /// the cache by one, or failing recompute.
    pub dropped: u64,
    /// Parked entries deposited but not yet settled.
    pub depth: u64,
}

struct Batch {
    snapshot: Arc<GraphSnapshot>,
    entries: Vec<ParkedEntry>,
}

#[derive(Default)]
struct Mailbox {
    next: Option<Batch>,
    in_flight: bool,
    shutdown: bool,
}

struct Shared {
    mailbox: Mutex<Mailbox>,
    /// Signals the worker (new deposit / shutdown) and flush waiters (batch
    /// settled).
    signal: Condvar,
    kept: AtomicU64,
    repriced: AtomicU64,
    dropped: AtomicU64,
    depth: AtomicU64,
}

/// Background re-validation lane. See the module docs for the protocol.
/// Dropping the lane settles any deposited batch and joins the worker.
pub(crate) struct RevalidationLane {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RevalidationLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevalidationLane")
            .field("stats", &self.stats())
            .finish()
    }
}

impl RevalidationLane {
    /// Start the lane re-admitting into `cache`, recomputing with `config`.
    pub(crate) fn start(config: QConfig, cache: Arc<Mutex<QueryCache>>) -> Self {
        let shared = Arc::new(Shared {
            mailbox: Mutex::new(Mailbox::default()),
            signal: Condvar::new(),
            kept: AtomicU64::new(0),
            repriced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            depth: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("q-revalidate".into())
            .spawn(move || worker_loop(worker_shared, config, cache))
            .expect("spawning re-validation thread");
        RevalidationLane {
            shared,
            handle: Some(handle),
        }
    }

    /// Deposit a publish's parked entries for re-validation against the
    /// snapshot that parked them, and return immediately. An unsettled
    /// earlier batch is superseded wholesale (counted as dropped — its
    /// snapshot is no longer the cache epoch).
    pub(crate) fn enqueue(&self, snapshot: Arc<GraphSnapshot>, entries: Vec<ParkedEntry>) {
        if entries.is_empty() {
            return;
        }
        let mut mailbox = self
            .shared
            .mailbox
            .lock()
            .expect("revalidate lock poisoned");
        self.shared
            .depth
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        if let Some(old) = mailbox.next.replace(Batch { snapshot, entries }) {
            let n = old.entries.len() as u64;
            self.shared.dropped.fetch_add(n, Ordering::Relaxed);
            self.shared.depth.fetch_sub(n, Ordering::Relaxed);
        }
        self.shared.signal.notify_all();
    }

    /// Block until every deposited entry has been settled.
    pub(crate) fn flush(&self) {
        let mut mailbox = self
            .shared
            .mailbox
            .lock()
            .expect("revalidate lock poisoned");
        while mailbox.next.is_some() || mailbox.in_flight {
            mailbox = self
                .shared
                .signal
                .wait(mailbox)
                .expect("revalidate lock poisoned");
        }
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> RevalidationStats {
        RevalidationStats {
            kept: self.shared.kept.load(Ordering::Relaxed),
            repriced: self.shared.repriced.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            depth: self.shared.depth.load(Ordering::Relaxed),
        }
    }
}

impl Drop for RevalidationLane {
    fn drop(&mut self) {
        {
            let mut mailbox = self
                .shared
                .mailbox
                .lock()
                .expect("revalidate lock poisoned");
            mailbox.shutdown = true;
            self.shared.signal.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, config: QConfig, cache: Arc<Mutex<QueryCache>>) {
    let mut scratch = SteinerScratch::default();
    loop {
        let batch = {
            let mut mailbox = shared.mailbox.lock().expect("revalidate lock poisoned");
            loop {
                if let Some(batch) = mailbox.next.take() {
                    mailbox.in_flight = true;
                    break batch;
                }
                if mailbox.shutdown {
                    return;
                }
                mailbox = shared
                    .signal
                    .wait(mailbox)
                    .expect("revalidate lock poisoned");
            }
        };
        for parked in batch.entries {
            let counter = settle(&config, &batch.snapshot, &cache, parked, &mut scratch);
            counter(&shared).fetch_add(1, Ordering::Relaxed);
            shared.depth.fetch_sub(1, Ordering::Relaxed);
        }
        let mut mailbox = shared.mailbox.lock().expect("revalidate lock poisoned");
        mailbox.in_flight = false;
        shared.signal.notify_all();
    }
}

/// Settle one parked entry: recompute outside the cache lock, then re-admit
/// under it only if the batch's snapshot is still the cache epoch. Returns
/// which outcome counter to bump.
fn settle(
    config: &QConfig,
    snapshot: &Arc<GraphSnapshot>,
    cache: &Mutex<QueryCache>,
    parked: ParkedEntry,
    scratch: &mut SteinerScratch,
) -> fn(&Shared) -> &AtomicU64 {
    let Ok((view, model)) = snapshot.recompute_for_key(config, &parked.key, scratch) else {
        return |s| &s.dropped;
    };
    // Compare in search-graph terms, not view bytes: every publish appends
    // nodes, which renumbers the query-graph terminal ids baked into a
    // view's trees even when the answer itself is untouched. The cost
    // models (search-graph edge ids + local feature vectors) and the
    // projected columns are renumbering-stable; equal means the recompute
    // found the same trees at the same costs projecting the same columns.
    let identical = model.trees == parked.model.trees
        && view.columns == parked.view.columns
        && view.column_sources == parked.view.column_sources;
    let mut cache = cache.lock().expect("cache lock poisoned");
    if cache.epoch() != snapshot.id() {
        // A newer publish re-synced the cache while we recomputed: this
        // verdict is against a superseded snapshot, so it cannot be
        // re-admitted.
        return |s| &s.dropped;
    }
    if identical {
        // The ingestion did not touch this answer: the original bytes (and
        // Arc) go back in under their original pricing snapshot.
        cache.reinsert_revalidated(parked.key, parked.view, model, parked.snapshot);
        |s| &s.kept
    } else {
        // The answer really did change: serve the fresh bytes warm, stamped
        // with the snapshot they are the sequential answer of.
        let id = snapshot.id();
        cache.reinsert_revalidated(parked.key, Arc::new(view), model, id);
        |s| &s.repriced
    }
}
