//! Ranked views, ranked queries and answers with provenance (Section 2.2).

use serde::{Deserialize, Serialize};

use q_graph::SteinerTree;
use q_storage::{AttributeId, ConjunctiveQuery, Value};

/// Identifier of a persistent view within a [`QSystem`](crate::QSystem).
pub type ViewId = usize;

/// One ranked conjunctive query of a view: the Steiner tree it came from, the
/// executable query, and its cost (the `e` term output by each union branch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedQuery {
    /// The Steiner tree over the query graph that produced this query.
    pub tree: SteinerTree,
    /// The executable conjunctive query.
    pub query: ConjunctiveQuery,
    /// Cost of the tree (lower ranks higher).
    pub cost: f64,
}

/// A single answer row with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// Values aligned to the view's output schema (None = this query does not
    /// produce that column).
    pub values: Vec<Option<Value>>,
    /// Index into [`RankedView::queries`] of the originating query.
    pub query_index: usize,
    /// Cost of the originating query (duplicated for convenient ranking).
    pub cost: f64,
}

/// A persistent keyword-query view: its definition (ranked queries) and its
/// current materialised contents.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankedView {
    /// The user's keywords.
    pub keywords: Vec<String>,
    /// Unified output schema: one label per column. Labels are qualified
    /// attribute names; compatible attributes from different queries share a
    /// column (Section 2.2's disjoint union construction).
    pub columns: Vec<String>,
    /// The attribute each column label was first derived from.
    pub column_sources: Vec<AttributeId>,
    /// Top-k ranked queries in increasing cost order.
    pub queries: Vec<RankedQuery>,
    /// Materialised answers in increasing cost order.
    pub answers: Vec<Answer>,
}

impl RankedView {
    /// Cost of the k-th (worst) ranked query — the α used by
    /// ViewBasedAligner's pruning. `None` when the view has no queries.
    pub fn alpha(&self) -> Option<f64> {
        self.queries
            .iter()
            .map(|q| q.cost)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.max(c))))
    }

    /// The best (lowest-cost) query, if any.
    pub fn best_query(&self) -> Option<&RankedQuery> {
        self.queries.first()
    }

    /// Number of materialised answers.
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }

    /// Answers produced by one particular ranked query.
    pub fn answers_of_query(&self, query_index: usize) -> impl Iterator<Item = &Answer> {
        self.answers
            .iter()
            .filter(move |a| a.query_index == query_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_graph::{EdgeId, NodeId};

    fn query(cost: f64) -> RankedQuery {
        RankedQuery {
            tree: SteinerTree {
                edges: vec![EdgeId(0)],
                nodes: vec![NodeId(0)],
                cost,
            },
            query: ConjunctiveQuery::new(),
            cost,
        }
    }

    #[test]
    fn alpha_is_the_worst_query_cost() {
        let view = RankedView {
            queries: vec![query(1.0), query(2.5), query(2.0)],
            ..RankedView::default()
        };
        assert_eq!(view.alpha(), Some(2.5));
        assert_eq!(view.best_query().unwrap().cost, 1.0);
        assert_eq!(RankedView::default().alpha(), None);
    }

    #[test]
    fn answers_filter_by_query_index() {
        let view = RankedView {
            answers: vec![
                Answer {
                    values: vec![],
                    query_index: 0,
                    cost: 1.0,
                },
                Answer {
                    values: vec![],
                    query_index: 1,
                    cost: 2.0,
                },
                Answer {
                    values: vec![],
                    query_index: 0,
                    cost: 1.0,
                },
            ],
            ..RankedView::default()
        };
        assert_eq!(view.answers_of_query(0).count(), 2);
        assert_eq!(view.answers_of_query(1).count(), 1);
        assert_eq!(view.answer_count(), 3);
    }
}
