//! Translation from Steiner trees to conjunctive queries, and construction of
//! the disjoint-union view output (Section 2.2).

use std::collections::{HashMap, HashSet};

use q_graph::{EdgeKind, Node, QueryGraph, SearchGraph, SteinerTree};
use q_storage::{exec, AttrRef, AttributeId, Catalog, ConjunctiveQuery, RelationId, StorageError};

use crate::answer::{Answer, RankedQuery};

/// Convert a Steiner tree over the query graph into an executable
/// conjunctive query.
///
/// Every relation node in the tree — or reachable from a tree node through a
/// zero-cost edge (an attribute's or value's relation) — becomes a query
/// atom; foreign-key and association edges become equality joins; keyword
/// edges become selection predicates; and the tree's attributes form the
/// select list. Returns `None` for degenerate trees that touch no relation.
pub fn tree_to_query(
    catalog: &Catalog,
    query_graph: &QueryGraph<'_>,
    tree: &SteinerTree,
) -> Option<ConjunctiveQuery> {
    // ------------------------------------------------------------------
    // Atoms.
    // ------------------------------------------------------------------
    let mut relations: Vec<RelationId> = Vec::new();
    let add_relation = |r: RelationId, relations: &mut Vec<RelationId>| {
        if !relations.contains(&r) {
            relations.push(r);
        }
    };
    let relation_of_attr =
        |a: AttributeId| -> Option<RelationId> { catalog.attribute(a).map(|attr| attr.relation) };

    for node_id in &tree.nodes {
        match query_graph.node(*node_id) {
            Node::Relation(r) => add_relation(*r, &mut relations),
            Node::Attribute(a) => {
                if let Some(r) = relation_of_attr(*a) {
                    add_relation(r, &mut relations);
                }
            }
            Node::Value { attribute, .. } => {
                if let Some(r) = relation_of_attr(*attribute) {
                    add_relation(r, &mut relations);
                }
            }
            Node::Keyword(_) => {}
        }
    }
    if relations.is_empty() {
        return None;
    }

    let mut query = ConjunctiveQuery::new();
    let mut atom_of: HashMap<RelationId, usize> = HashMap::new();
    for r in &relations {
        let atom = query.add_atom(*r);
        atom_of.insert(*r, atom);
    }
    let attr_ref = |query_atoms: &HashMap<RelationId, usize>, a: AttributeId| -> Option<AttrRef> {
        let rel = relation_of_attr(a)?;
        query_atoms.get(&rel).map(|atom| AttrRef::new(*atom, a))
    };

    // ------------------------------------------------------------------
    // Joins and selections from the tree's edges.
    // ------------------------------------------------------------------
    let mut selected: Vec<AttributeId> = Vec::new();
    let add_select = |a: AttributeId, selected: &mut Vec<AttributeId>| {
        if !selected.contains(&a) {
            selected.push(a);
        }
    };

    for edge_id in &tree.edges {
        let edge = query_graph.edge(*edge_id);
        match edge.kind {
            EdgeKind::ForeignKey => {
                let (ra, rb) = (
                    query_graph.node(edge.a).as_relation(),
                    query_graph.node(edge.b).as_relation(),
                );
                let (Some(ra), Some(rb)) = (ra, rb) else {
                    continue;
                };
                // Find the declared foreign key connecting these relations.
                let fk = catalog.foreign_keys().iter().find(|fk| {
                    let fr = relation_of_attr(fk.from);
                    let tr = relation_of_attr(fk.to);
                    (fr == Some(ra) && tr == Some(rb)) || (fr == Some(rb) && tr == Some(ra))
                });
                if let Some(fk) = fk {
                    if let (Some(l), Some(r)) =
                        (attr_ref(&atom_of, fk.from), attr_ref(&atom_of, fk.to))
                    {
                        query.add_join(l, r);
                        add_select(fk.from, &mut selected);
                        add_select(fk.to, &mut selected);
                    }
                }
            }
            EdgeKind::Association => {
                let (na, nb) = (
                    query_graph.node(edge.a).as_attribute(),
                    query_graph.node(edge.b).as_attribute(),
                );
                let (Some(a), Some(b)) = (na, nb) else {
                    continue;
                };
                if let (Some(l), Some(r)) = (attr_ref(&atom_of, a), attr_ref(&atom_of, b)) {
                    query.add_join(l, r);
                    add_select(a, &mut selected);
                    add_select(b, &mut selected);
                }
            }
            EdgeKind::KeywordMatch => {
                // keyword -> schema element: the element is relevant (its
                // attribute joins the output) but the keyword does not
                // constrain the data — only value matches do.
                let (_kw, target) = keyword_and_target(query_graph, edge.a, edge.b);
                if let Some(Node::Attribute(a)) = target {
                    add_select(*a, &mut selected);
                }
            }
            EdgeKind::KeywordValue => {
                // keyword -> value node: exact selection on the stored value.
                let (kw, target) = keyword_and_target(query_graph, edge.a, edge.b);
                if let (Some(_kw), Some(Node::Value { attribute, value })) = (kw, target) {
                    if let Some(r) = attr_ref(&atom_of, *attribute) {
                        query.add_selection(r, value, true);
                        add_select(*attribute, &mut selected);
                    }
                }
            }
            EdgeKind::AttributeRelation | EdgeKind::ValueAttribute => {}
        }
    }

    // ------------------------------------------------------------------
    // Select list: tree attributes, plus a fallback so it is never empty.
    // ------------------------------------------------------------------
    for node_id in &tree.nodes {
        if let Node::Attribute(a) = query_graph.node(*node_id) {
            add_select(*a, &mut selected);
        }
    }
    if selected.is_empty() {
        let first_rel = catalog.relation(relations[0])?;
        selected.push(*first_rel.attributes.first()?);
    }
    for a in &selected {
        if let Some(r) = attr_ref(&atom_of, *a) {
            query.add_select(r);
        }
    }
    Some(query)
}

fn keyword_and_target<'g>(
    qg: &'g QueryGraph<'_>,
    a: q_graph::NodeId,
    b: q_graph::NodeId,
) -> (Option<String>, Option<&'g Node>) {
    let na = qg.node(a);
    let nb = qg.node(b);
    match (na, nb) {
        (Node::Keyword(k), other) => (Some(k.clone()), Some(other)),
        (other, Node::Keyword(k)) => (Some(k.clone()), Some(other)),
        _ => (None, None),
    }
}

/// A materialised view's `(column labels, column source attributes, answers)`.
pub type MaterializedView = (Vec<String>, Vec<AttributeId>, Vec<Answer>);

/// Build the unified output schema and materialise the answers of a view's
/// ranked queries (the disjoint / outer union of Section 2.2).
///
/// Returns `(column labels, column source attributes, answers)`. Conceptually
/// compatible attributes — connected in the search graph by an association
/// edge cheaper than `column_merge_threshold` — share an output column.
pub fn materialize_view(
    catalog: &Catalog,
    graph: &SearchGraph,
    queries: &[RankedQuery],
    column_merge_threshold: f64,
    max_answers: usize,
) -> Result<MaterializedView, StorageError> {
    // Cheap association lookup: attribute -> (aligned attribute, cost).
    let mut aligned: HashMap<AttributeId, Vec<(AttributeId, f64)>> = HashMap::new();
    for (edge, a, b) in graph.association_edges() {
        let cost = graph.edge_cost(edge);
        aligned.entry(a).or_default().push((b, cost));
        aligned.entry(b).or_default().push((a, cost));
    }

    let mut columns: Vec<String> = Vec::new();
    let mut column_sources: Vec<AttributeId> = Vec::new();
    let mut answers: Vec<Answer> = Vec::new();

    // Ranked queries normally arrive in increasing cost order, which makes
    // the final sort below a stable no-op: the kept answers are exactly the
    // first `max_answers` pushed. While that monotonicity holds, a query
    // whose rows could only land past the cap can skip execution entirely
    // (its column contributions are still recorded — they shape the unified
    // schema). A caller passing unsorted queries gets the untruncated
    // behaviour back.
    let mut monotone = true;
    let mut prev_cost = f64::NEG_INFINITY;

    for (query_index, ranked) in queries.iter().enumerate() {
        let select_attrs: Vec<AttributeId> =
            ranked.query.select.iter().map(|s| s.attribute).collect();
        let own_labels: HashSet<String> = select_attrs
            .iter()
            .map(|a| catalog.qualified_name(*a))
            .collect();

        // Column index for each output attribute of this query.
        let mut mapping: Vec<usize> = Vec::with_capacity(select_attrs.len());
        for attr in &select_attrs {
            let label = catalog.qualified_name(*attr);
            // Exact label already present?
            if let Some(pos) = columns.iter().position(|c| *c == label) {
                mapping.push(pos);
                continue;
            }
            // A compatible attribute already defines a column, and this query
            // does not itself output that attribute -> reuse its column.
            let mut merged: Option<usize> = None;
            if let Some(cands) = aligned.get(attr) {
                for (other, cost) in cands {
                    if *cost > column_merge_threshold {
                        continue;
                    }
                    let other_label = catalog.qualified_name(*other);
                    if own_labels.contains(&other_label) {
                        continue;
                    }
                    if let Some(pos) = columns.iter().position(|c| *c == other_label) {
                        merged = Some(pos);
                        break;
                    }
                }
            }
            match merged {
                Some(pos) => mapping.push(pos),
                None => {
                    columns.push(label);
                    column_sources.push(*attr);
                    mapping.push(columns.len() - 1);
                }
            }
        }

        // Execute and align rows into the unified schema. Under monotone
        // costs only the first `max_answers - answers.len()` rows can
        // survive the cap (stable sort keeps earlier-pushed rows on ties),
        // so the executor is told to stop projecting there.
        monotone = monotone && ranked.cost >= prev_cost;
        prev_cost = ranked.cost.max(prev_cost);
        let quota = if monotone {
            let remaining = max_answers.saturating_sub(answers.len());
            if remaining == 0 {
                continue;
            }
            Some(remaining)
        } else {
            None
        };
        let result = exec::execute_limited(catalog, &ranked.query, quota)?;
        for row in result.rows {
            let mut values: Vec<Option<q_storage::Value>> = vec![None; columns.len()];
            for (i, v) in row.into_iter().enumerate() {
                let col = mapping[i];
                if col >= values.len() {
                    values.resize(col + 1, None);
                }
                values[col] = Some(v);
            }
            answers.push(Answer {
                values,
                query_index,
                cost: ranked.cost,
            });
        }
    }

    // Union branches are already in increasing cost order; enforce it anyway
    // and bound the materialised size.
    answers.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    answers.truncate(max_answers);
    // Normalise row widths (columns added by later queries).
    let width = columns.len();
    for a in &mut answers {
        a.values.resize(width, None);
    }
    Ok((columns, column_sources, answers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use q_graph::keyword::MatchConfig;
    use q_graph::{approx_top_k, KeywordIndex, SteinerConfig};
    use q_storage::{RelationSpec, SourceSpec, Value};

    fn setup() -> (Catalog, SearchGraph, KeywordIndex) {
        let mut cat = Catalog::new();
        SourceSpec::new("go")
            .relation(
                RelationSpec::new("go_term", &["acc", "name"])
                    .row(["GO:1", "plasma membrane"])
                    .row(["GO:2", "kinase activity"]),
            )
            .load_into(&mut cat)
            .unwrap();
        SourceSpec::new("interpro")
            .relation(
                RelationSpec::new("interpro2go", &["go_id", "entry_ac"])
                    .row(["GO:1", "IPR01"])
                    .row(["GO:2", "IPR02"]),
            )
            .relation(
                RelationSpec::new("entry", &["entry_ac", "name"])
                    .row(["IPR01", "Kringle domain"])
                    .row(["IPR02", "Cytokine"]),
            )
            .foreign_key("interpro2go.entry_ac", "entry.entry_ac")
            .load_into(&mut cat)
            .unwrap();
        let mut graph = SearchGraph::from_catalog(&cat);
        // Matcher-proposed association linking the GO accession columns.
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();
        graph.add_association(acc, go_id, "mad", 0.95);
        let index = KeywordIndex::build(&cat);
        (cat, graph, index)
    }

    fn best_query(
        cat: &Catalog,
        graph: &SearchGraph,
        index: &KeywordIndex,
        keywords: &[&str],
    ) -> RankedQuery {
        let qg = QueryGraph::build(graph, index, keywords, &MatchConfig::default());
        let trees = approx_top_k(
            &qg,
            &qg.terminals(),
            &SteinerConfig {
                k: 5,
                ..SteinerConfig::default()
            },
        );
        let tree = trees.into_iter().next().expect("a tree exists");
        let query = tree_to_query(cat, &qg, &tree).expect("query is translatable");
        RankedQuery {
            cost: tree.cost,
            tree,
            query,
        }
    }

    #[test]
    fn value_keyword_becomes_exact_selection() {
        let (cat, graph, index) = setup();
        let ranked = best_query(&cat, &graph, &index, &["plasma membrane", "entry_ac"]);
        assert!(ranked
            .query
            .selections
            .iter()
            .any(|s| s.exact && s.term == "plasma membrane"));
    }

    #[test]
    fn association_edges_become_joins() {
        let (cat, graph, index) = setup();
        // Connecting "plasma membrane" (a go_term value) to entry names must
        // traverse the association and the FK edge.
        let ranked = best_query(&cat, &graph, &index, &["plasma membrane", "entry"]);
        assert!(ranked.query.atoms.len() >= 2);
        assert!(!ranked.query.joins.is_empty());
        let rs = exec::execute(&cat, &ranked.query).unwrap();
        // GO:1 -> IPR01 -> Kringle domain
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn degenerate_keyword_only_tree_translates_to_none() {
        let (cat, graph, index) = setup();
        let qg = QueryGraph::build(&graph, &index, &["zzzz"], &MatchConfig::default());
        let tree = SteinerTree {
            edges: vec![],
            nodes: qg.terminals(),
            cost: 0.0,
        };
        assert!(tree_to_query(&cat, &qg, &tree).is_none());
    }

    #[test]
    fn materialize_unions_queries_and_aligns_columns() {
        let (cat, graph, index) = setup();
        let q1 = best_query(&cat, &graph, &index, &["plasma membrane", "entry"]);
        let q2 = best_query(&cat, &graph, &index, &["kinase activity", "entry"]);
        let (columns, sources, answers) =
            materialize_view(&cat, &graph, &[q1, q2], 2.0, 100).unwrap();
        assert!(!columns.is_empty());
        assert_eq!(columns.len(), sources.len());
        assert!(!answers.is_empty());
        // Every answer row has exactly one value per column.
        for a in &answers {
            assert_eq!(a.values.len(), columns.len());
        }
        // Answers are sorted by cost.
        for w in answers.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }

    #[test]
    fn compatible_columns_are_merged_across_queries() {
        let (cat, graph, _index) = setup();
        // Hand-built queries: the first outputs go_term.acc, the second
        // outputs interpro2go.go_id. The two attributes are associated in the
        // search graph, so the second query's output must reuse the first's
        // column instead of adding a new one (Section 2.2).
        let go_term = cat.relation_by_name("go_term").unwrap().id;
        let i2g = cat.relation_by_name("interpro2go").unwrap().id;
        let acc = cat.resolve_qualified("go_term.acc").unwrap();
        let go_id = cat.resolve_qualified("interpro2go.go_id").unwrap();

        let mut query1 = ConjunctiveQuery::new();
        let a0 = query1.add_atom(go_term);
        query1.add_select(AttrRef::new(a0, acc));
        let mut query2 = ConjunctiveQuery::new();
        let a0 = query2.add_atom(i2g);
        query2.add_select(AttrRef::new(a0, go_id));

        let dummy_tree = |cost: f64| SteinerTree {
            edges: vec![],
            nodes: vec![],
            cost,
        };
        let ranked = vec![
            RankedQuery {
                tree: dummy_tree(1.0),
                query: query1,
                cost: 1.0,
            },
            RankedQuery {
                tree: dummy_tree(2.0),
                query: query2,
                cost: 2.0,
            },
        ];
        let (columns, _, answers) = materialize_view(&cat, &graph, &ranked, 2.0, 100).unwrap();
        assert_eq!(columns, vec!["go_term.acc".to_string()]);
        // Both queries' rows land in the shared column.
        assert!(answers.iter().any(|a| a.query_index == 0));
        assert!(answers.iter().any(|a| a.query_index == 1));
        assert!(answers.iter().all(|a| a.values.len() == 1));
    }

    #[test]
    fn max_answers_truncates_output() {
        let (cat, graph, index) = setup();
        let q1 = best_query(&cat, &graph, &index, &["go", "entry"]);
        let (_, _, answers) = materialize_view(&cat, &graph, &[q1], 2.0, 1).unwrap();
        assert!(answers.len() <= 1);
    }

    #[test]
    fn answers_preserve_provenance_and_values() {
        let (cat, graph, index) = setup();
        let q1 = best_query(&cat, &graph, &index, &["plasma membrane", "entry"]);
        let (columns, _, answers) = materialize_view(&cat, &graph, &[q1], 2.0, 100).unwrap();
        assert_eq!(answers[0].query_index, 0);
        // The join across sources surfaces the InterPro entry (accession or
        // name) somewhere in the row.
        let found = answers.iter().any(|a| {
            a.values.iter().flatten().any(|v| match v {
                Value::Text(s) => s.contains("Kringle") || s.contains("IPR01"),
                _ => false,
            })
        });
        assert!(found, "columns: {columns:?}, answers: {answers:?}");
    }
}
